"""Aviation-specific complex event detectors.

The ATM use case needs more than sector capacity: deviations from the
vertical plan and holding behaviour are the bread-and-butter alerts of a
controller's toolset.

- :class:`LevelBustDetector` — an aircraft in level flight departs its
  established altitude by more than a threshold without a sustained
  climb/descent clearance profile.
- :class:`HoldingPatternDetector` — an aircraft accumulates heading
  change (full circles) while staying inside a small area: the racetrack
  holding signature.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

from repro.geo.bbox import BBox
from repro.geo.geodesy import haversine_m
from repro.model.events import ComplexEvent, EventSeverity
from repro.model.reports import PositionReport


class LevelBustDetector:
    """Departure from established level flight.

    An aircraft is *established* at a level after holding altitude within
    ``level_band_m`` for ``establish_s`` seconds. Leaving the band starts
    an *excursion*: when the deviation reaches ``bust_threshold_m``
    within ``grace_s`` of leaving, a ``level_bust`` alarm fires (once per
    ``refractory_s``) and the detector re-establishes at the new
    altitude. A drift too slow to reach the threshold inside the grace
    window re-establishes silently.

    Without flight-plan data, a departure from an established level and
    a *cleared* level change are observationally identical — a real
    deployment would join these alarms against clearances; here every
    sufficiently fast departure alerts, which is the conservative choice
    for a safety monitor.
    """

    def __init__(
        self,
        level_band_m: float = 60.0,
        establish_s: float = 120.0,
        bust_threshold_m: float = 90.0,
        grace_s: float = 120.0,
        refractory_s: float = 600.0,
    ) -> None:
        if level_band_m <= 0 or bust_threshold_m <= level_band_m:
            raise ValueError("bust threshold must exceed the level band")
        if grace_s <= 0:
            raise ValueError("grace_s must be positive")
        self.level_band_m = level_band_m
        self.establish_s = establish_s
        self.bust_threshold_m = bust_threshold_m
        self.grace_s = grace_s
        self.refractory_s = refractory_s
        self._level: dict[str, float] = {}
        self._candidate: dict[str, tuple[float, float]] = {}  # (alt, since_t)
        self._excursion_start: dict[str, float] = {}
        self._last_alert: dict[str, float] = {}

    def process(self, report: PositionReport) -> list[ComplexEvent]:
        """Feed one (3D) report; returns any level-bust events."""
        if report.alt is None:
            return []
        entity = report.entity_id
        established = self._level.get(entity)

        if established is None:
            self._track_candidate(entity, report)
            return []

        deviation = report.alt - established
        if abs(deviation) <= self.level_band_m:
            self._excursion_start.pop(entity, None)
            return []

        excursion_start = self._excursion_start.setdefault(entity, report.t)
        elapsed = report.t - excursion_start

        if abs(deviation) >= self.bust_threshold_m and elapsed <= self.grace_s:
            self._reset_to(entity, report)
            last = self._last_alert.get(entity)
            if last is not None and report.t - last < self.refractory_s:
                return []
            self._last_alert[entity] = report.t
            return [
                ComplexEvent(
                    event_type="level_bust",
                    entity_ids=(entity,),
                    t_start=excursion_start,
                    t_end=report.t,
                    severity=EventSeverity.ALARM,
                    attributes={
                        "established_alt_m": established,
                        "deviation_m": deviation,
                    },
                )
            ]
        if elapsed > self.grace_s:
            # Slow drift: a level change, not a bust.
            self._reset_to(entity, report)
        return []

    def _reset_to(self, entity: str, report: PositionReport) -> None:
        self._level.pop(entity, None)
        self._excursion_start.pop(entity, None)
        self._candidate[entity] = (report.alt or 0.0, report.t)

    def _track_candidate(self, entity: str, report: PositionReport) -> None:
        candidate = self._candidate.get(entity)
        if candidate is None or abs(report.alt - candidate[0]) > self.level_band_m:
            self._candidate[entity] = (report.alt, report.t)
            return
        if report.t - candidate[1] >= self.establish_s:
            self._level[entity] = candidate[0]
            del self._candidate[entity]

    def established_level(self, entity_id: str) -> float | None:
        """The entity's currently established level, if any."""
        return self._level.get(entity_id)


class HoldingPatternDetector:
    """Racetrack holding: large accumulated turn inside a small area.

    Keeps a sliding window of recent reports per aircraft. A
    ``holding_pattern`` event fires when, within the window, the
    accumulated |heading change| exceeds ``min_total_turn_deg`` (≥ one
    full circuit) while the covered area stays within ``radius_m``.
    """

    def __init__(
        self,
        window_s: float = 900.0,
        min_total_turn_deg: float = 360.0,
        radius_m: float = 12_000.0,
        refractory_s: float = 900.0,
    ) -> None:
        if min_total_turn_deg <= 0 or radius_m <= 0:
            raise ValueError("thresholds must be positive")
        self.window_s = window_s
        self.min_total_turn_deg = min_total_turn_deg
        self.radius_m = radius_m
        self.refractory_s = refractory_s
        self._window: dict[str, deque[PositionReport]] = defaultdict(deque)
        self._last_alert: dict[str, float] = {}

    def process(self, report: PositionReport) -> list[ComplexEvent]:
        """Feed one report; returns any holding-pattern events."""
        if report.heading is None:
            return []
        window = self._window[report.entity_id]
        window.append(report)
        while window and report.t - window[0].t > self.window_s:
            window.popleft()
        if len(window) < 8:
            return []

        total_turn = 0.0
        reports = list(window)
        for a, b in zip(reports, reports[1:]):
            delta = (b.heading - a.heading + 540.0) % 360.0 - 180.0  # type: ignore[operator]
            total_turn += abs(delta)
        if total_turn < self.min_total_turn_deg:
            return []

        box = BBox.from_points((r.lon, r.lat) for r in reports)
        diagonal = haversine_m(box.min_lon, box.min_lat, box.max_lon, box.max_lat)
        if diagonal > 2.0 * self.radius_m:
            return []

        last = self._last_alert.get(report.entity_id)
        if last is not None and report.t - last < self.refractory_s:
            return []
        self._last_alert[report.entity_id] = report.t
        return [
            ComplexEvent(
                event_type="holding_pattern",
                entity_ids=(report.entity_id,),
                t_start=reports[0].t,
                t_end=report.t,
                severity=EventSeverity.ADVISORY,
                attributes={
                    "total_turn_deg": total_turn,
                    "area_diagonal_m": diagonal,
                },
            )
        ]

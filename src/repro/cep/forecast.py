"""Event forecasting: predicting pattern completion before it happens.

The forecaster treats the recognition NFA as a Markov chain. From a
training simple-event stream it learns the empirical distribution of
event types per key-step; combining that with the automaton's structure
gives, for every NFA state, the probability of reaching an accept state
within the next ``h`` events. At runtime, a key whose most advanced run
sits in state ``s`` is forecast to complete the pattern when
``P_h(s) >= threshold``.

This is the automaton-based event forecasting approach datAcron pursued
(cf. Wayeb): forecasts become earlier but less precise as the horizon
``h`` grows — exactly the trade-off experiment E6 charts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.cep.nfa import PatternEngine
from repro.model.events import SimpleEvent


@dataclass(frozen=True, slots=True)
class EventForecast:
    """A forecast that a pattern will complete for a key.

    Attributes:
        pattern_name: The target pattern.
        key: The run key (entity or pair).
        t: Forecast emission time.
        probability: Estimated completion probability within the horizon.
        horizon_events: The look-ahead horizon, in events.
        state: The NFA state the forecast was issued from.
        expected_by: Wall-time estimate of the horizon's end: ``t +
            horizon_events × mean per-key inter-event interval`` learned
            from the training stream (``None`` when the training stream
            had no measurable cadence).
    """

    pattern_name: str
    key: Any
    t: float
    probability: float
    horizon_events: int
    state: int
    expected_by: float | None = None


class PatternForecaster:
    """Forecasts completions of one :class:`PatternEngine`'s pattern.

    Args:
        engine: The engine whose NFA (and live runs) are consulted.
        horizon_events: Look-ahead, counted in events per key.
        threshold: Minimum completion probability to emit a forecast.
        refractory_events: Per-key suppression after a forecast so a
            persisting partial match emits one forecast, not a stream.
    """

    def __init__(
        self,
        engine: PatternEngine,
        horizon_events: int = 5,
        threshold: float = 0.5,
        refractory_events: int = 10,
    ) -> None:
        if horizon_events <= 0:
            raise ValueError("horizon_events must be positive")
        if not (0.0 < threshold <= 1.0):
            raise ValueError("threshold must be in (0, 1]")
        self.engine = engine
        self.horizon_events = horizon_events
        self.threshold = threshold
        self.refractory_events = refractory_events
        self._type_probs: dict[str, float] = {}
        self._reach: np.ndarray | None = None
        self._since_forecast: dict[Any, int] = {}
        #: Mean per-key inter-event interval learned by :meth:`fit`.
        self.mean_interevent_s: float | None = None

    # -- training -----------------------------------------------------------

    def fit(self, training_events: Iterable[SimpleEvent]) -> PatternForecaster:
        """Learn event-type frequencies, per-key cadence, and precompute
        reach probabilities."""
        counts: Counter[str] = Counter()
        last_t: dict[Any, float] = {}
        gaps: list[float] = []
        for event in training_events:
            counts[event.event_type] += 1
            key = self.engine.key_fn(event)
            previous = last_t.get(key)
            if previous is not None and event.t > previous:
                gaps.append(event.t - previous)
            last_t[key] = event.t
        total = sum(counts.values())
        if total == 0:
            raise ValueError("training stream is empty")
        self._type_probs = {etype: c / total for etype, c in counts.items()}
        self.mean_interevent_s = (sum(gaps) / len(gaps)) if gaps else None
        self._reach = self._reach_probabilities()
        return self

    def _atom_prob(self, event_type: str) -> float:
        """P(next event matches the atom), ignoring guards (upper bound)."""
        return self._type_probs.get(event_type, 0.0)

    def _reach_probabilities(self) -> np.ndarray:
        """``reach[k][s]`` = P(accept within k events | state s).

        One DP step: from state ``s`` the next event (i) matches a
        forbidden atom → dead; (ii) matches an outgoing edge → jump to the
        target (accept counts immediately); (iii) otherwise stay in ``s``.
        Outgoing edges are treated as disjoint by event type, which holds
        for all patterns shipped here.
        """
        nfa = self.engine.nfa
        n = nfa.n_states
        horizon = self.horizon_events
        reach = np.zeros((horizon + 1, n))
        accepts = nfa.accepts
        for k in range(1, horizon + 1):
            for state in range(n):
                if state in accepts:
                    reach[k, state] = 1.0
                    continue
                p_dead = sum(
                    self._atom_prob(atom.event_type)
                    for atom in nfa.forbidden.get(state, ())
                )
                p_move = 0.0
                value = 0.0
                for atom, target in nfa.transitions.get(state, ()):
                    p = self._atom_prob(atom.event_type)
                    p_move += p
                    value += p * (1.0 if target in accepts else reach[k - 1, target])
                p_stay = max(0.0, 1.0 - p_dead - p_move)
                value += p_stay * reach[k - 1, state]
                reach[k, state] = min(1.0, value)
        return reach

    # -- runtime -------------------------------------------------------------

    def process(self, event: SimpleEvent) -> list[EventForecast]:
        """Feed one event to the engine, then forecast from the live runs.

        Returns forecasts (not matches; read matches from the engine's
        return value if needed — this method discards them by design, the
        typical deployment runs engine and forecaster on the same stream).
        """
        self.engine.process(event)
        return self.forecast_for_key(self.engine.key_fn(event), event.t)

    def forecast_for_key(self, key: Any, now: float) -> list[EventForecast]:
        """Forecast from a key's current most-advanced run, if any."""
        if self._reach is None:
            raise RuntimeError("fit() must be called before forecasting")
        states = self.engine.partial_states(key)
        if not states:
            self._since_forecast.pop(key, None)
            return []
        since = self._since_forecast.get(key)
        if since is not None and since < self.refractory_events:
            self._since_forecast[key] = since + 1
            return []
        best_state = max(states, key=lambda s: self._reach[self.horizon_events, s])
        probability = float(self._reach[self.horizon_events, best_state])
        if probability < self.threshold:
            return []
        self._since_forecast[key] = 0
        expected_by = (
            now + self.horizon_events * self.mean_interevent_s
            if self.mean_interevent_s is not None
            else None
        )
        return [
            EventForecast(
                pattern_name=self.engine.name,
                key=key,
                t=now,
                probability=probability,
                horizon_events=self.horizon_events,
                state=best_state,
                expected_by=expected_by,
            )
        ]

    def completion_probability(self, state: int) -> float:
        """P(accept within the horizon) from an NFA state (introspection)."""
        if self._reach is None:
            raise RuntimeError("fit() must be called before forecasting")
        return float(self._reach[self.horizon_events, state])

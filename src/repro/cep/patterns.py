"""Pattern algebra for complex event recognition.

Patterns compose over :class:`SimpleEvent` streams:

- :class:`Atom` — one event of a given type, optionally guarded by a
  predicate over the event and the partial match so far.
- :class:`Seq` — components in temporal order (skip-till-next-match:
  irrelevant events in between are ignored).
- :class:`Or` — either branch.
- :class:`Iter` — an atom repeated between ``min_count`` and
  ``max_count`` times.
- :class:`Neg` — a sequence component that must *not* occur between its
  neighbours (evaluated when the following component matches).

A pattern plus a time window compiles to an NFA (:mod:`repro.cep.nfa`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.model.events import SimpleEvent

Guard = Callable[[SimpleEvent, "MatchContext"], bool]


@dataclass
class MatchContext:
    """The events captured so far by a partial match, in order."""

    events: tuple[SimpleEvent, ...] = ()

    def extended(self, event: SimpleEvent) -> MatchContext:
        """A new context with one more captured event."""
        return MatchContext(events=self.events + (event,))

    @property
    def first(self) -> SimpleEvent | None:
        """First captured event, if any."""
        return self.events[0] if self.events else None

    @property
    def last(self) -> SimpleEvent | None:
        """Most recent captured event, if any."""
        return self.events[-1] if self.events else None


class Pattern:
    """Base class for pattern expressions."""

    def then(self, other: Pattern) -> Seq:
        """``self`` followed by ``other`` (flattens nested sequences)."""
        left = list(self.parts) if isinstance(self, Seq) else [self]
        right = list(other.parts) if isinstance(other, Seq) else [other]
        return Seq(tuple(left + right))

    def __or__(self, other: Pattern) -> Or:
        return Or((self, other))


@dataclass(frozen=True)
class Atom(Pattern):
    """One event of ``event_type`` satisfying the optional guard."""

    event_type: str
    guard: Guard | None = None
    label: str = ""

    def matches(self, event: SimpleEvent, context: MatchContext) -> bool:
        """Whether this atom accepts the event given the partial match."""
        if event.event_type != self.event_type:
            return False
        if self.guard is not None and not self.guard(event, context):
            return False
        return True


@dataclass(frozen=True)
class Seq(Pattern):
    """Components in temporal order with skip-till-next-match semantics."""

    parts: tuple[Pattern, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("Seq needs at least two parts")


@dataclass(frozen=True)
class Or(Pattern):
    """Either branch matches."""

    branches: tuple[Pattern, ...]

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise ValueError("Or needs at least two branches")


@dataclass(frozen=True)
class Iter(Pattern):
    """An atom repeated ``min_count``..``max_count`` times (contiguous in
    match order, skip-till-next-match between repetitions)."""

    atom: Atom
    min_count: int = 1
    max_count: int = 16

    def __post_init__(self) -> None:
        if self.min_count < 1 or self.max_count < self.min_count:
            raise ValueError("invalid Iter bounds")


@dataclass(frozen=True)
class Neg(Pattern):
    """Negated component inside a :class:`Seq`.

    ``Seq((a, Neg(b), c))`` matches an ``a ... c`` pair with no ``b``
    between them. A ``Neg`` may only appear between two positive
    components (or before the final component).
    """

    atom: Atom

"""Pattern compilation to NFAs and the recognition engine.

Semantics: *skip-till-next-match*. A run waits in its current state;
events that match an outgoing transition advance it (one run per matching
transition), events matching a forbidden (negated) atom kill it, all other
events are skipped. Runs older than the pattern window are pruned. A run
reaching an accept state emits a :class:`PatternMatch` and terminates.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.cep.patterns import Atom, Iter, MatchContext, Neg, Or, Pattern, Seq
from repro.model.events import ComplexEvent, EventSeverity, SimpleEvent


@dataclass(frozen=True, slots=True)
class PatternMatch:
    """One completed pattern match."""

    pattern_name: str
    key: Any
    events: tuple[SimpleEvent, ...]

    @property
    def t_start(self) -> float:
        """Time of the first contributing event."""
        return self.events[0].t

    @property
    def t_end(self) -> float:
        """Time of the completing event (detection-time basis)."""
        return self.events[-1].t

    def to_complex_event(self, severity: EventSeverity = EventSeverity.WARNING) -> ComplexEvent:
        """Convert the match to the system-wide complex-event type."""
        entity_ids = tuple(dict.fromkeys(e.entity_id for e in self.events))
        return ComplexEvent(
            event_type=self.pattern_name,
            entity_ids=entity_ids,
            t_start=self.t_start,
            t_end=self.t_end,
            severity=severity,
            contributing=self.events,
        )


class NFA:
    """A compiled pattern automaton.

    States are integers; 0 is the start state. ``transitions[s]`` is the
    list of ``(atom, target)`` edges out of ``s``; ``forbidden[s]`` lists
    atoms that kill a run waiting in ``s``; ``accepts`` are the final
    states.
    """

    def __init__(self) -> None:
        self._counter = itertools.count(1)
        self.transitions: dict[int, list[tuple[Atom, int]]] = {0: []}
        self.forbidden: dict[int, list[Atom]] = {}
        self.accepts: set[int] = set()

    def new_state(self) -> int:
        """Allocate a fresh state."""
        state = next(self._counter)
        self.transitions[state] = []
        return state

    def add_edge(self, source: int, atom: Atom, target: int) -> None:
        """Add a transition edge."""
        self.transitions[source].append((atom, target))

    def add_forbidden(self, state: int, atom: Atom) -> None:
        """Mark an atom as killing runs waiting in ``state``."""
        self.forbidden.setdefault(state, []).append(atom)

    @property
    def n_states(self) -> int:
        """Number of states (including start)."""
        return len(self.transitions)

    @classmethod
    def compile(cls, pattern: Pattern) -> NFA:
        """Compile a pattern expression into an automaton."""
        nfa = cls()
        exits = nfa._compile(pattern, {0})
        nfa.accepts = exits
        return nfa

    def _compile(self, pattern: Pattern, entries: set[int]) -> set[int]:
        if isinstance(pattern, Atom):
            target = self.new_state()
            for entry in entries:
                self.add_edge(entry, pattern, target)
            return {target}
        if isinstance(pattern, Seq):
            return self._compile_seq(pattern, entries)
        if isinstance(pattern, Or):
            exits: set[int] = set()
            for branch in pattern.branches:
                exits |= self._compile(branch, entries)
            return exits
        if isinstance(pattern, Iter):
            return self._compile_iter(pattern, entries)
        if isinstance(pattern, Neg):
            raise ValueError("Neg may only appear inside a Seq")
        raise TypeError(f"unknown pattern type: {type(pattern).__name__}")

    def _compile_seq(self, pattern: Seq, entries: set[int]) -> set[int]:
        current = entries
        pending_neg: list[Atom] = []
        compiled_positive = False
        for part in pattern.parts:
            if isinstance(part, Neg):
                if not compiled_positive:
                    raise ValueError("Seq cannot start with a Neg component")
                pending_neg.append(part.atom)
                continue
            if pending_neg:
                for state in current:
                    for atom in pending_neg:
                        self.add_forbidden(state, atom)
                pending_neg = []
            current = self._compile(part, current)
            compiled_positive = True
        if pending_neg:
            raise ValueError("Seq cannot end with a Neg component")
        return current

    def _compile_iter(self, pattern: Iter, entries: set[int]) -> set[int]:
        current = entries
        exits: set[int] = set()
        for i in range(pattern.max_count):
            current = self._compile(pattern.atom, current)
            if i + 1 >= pattern.min_count:
                exits |= current
        return exits


@dataclass
class _Run:
    state: int
    context: MatchContext
    t_start: float


class PatternEngine:
    """Runs one compiled pattern over a keyed simple-event stream.

    Args:
        pattern: The pattern expression.
        window_s: Maximum allowed span between a match's first and last
            events; runs exceeding it are pruned.
        key_fn: Partitioning key for runs (default: the entity id).
        name: The emitted matches' ``pattern_name``.
    """

    def __init__(
        self,
        pattern: Pattern,
        window_s: float,
        key_fn: Callable[[SimpleEvent], Any] | None = None,
        name: str = "pattern",
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.nfa = NFA.compile(pattern)
        self.window_s = window_s
        self.key_fn = key_fn or (lambda event: event.entity_id)
        self.name = name
        self._runs: dict[Any, list[_Run]] = {}

    def process(self, event: SimpleEvent) -> list[PatternMatch]:
        """Feed one event (event-time order); returns completed matches."""
        key = self.key_fn(event)
        runs = self._runs.setdefault(key, [])
        matches: list[PatternMatch] = []
        survivors: list[_Run] = []

        # Existing runs: prune, kill, advance.
        for run in runs:
            if event.t - run.t_start > self.window_s:
                continue  # window expired
            if any(atom.matches(event, run.context) for atom in self.nfa.forbidden.get(run.state, ())):
                continue  # negation violated
            advanced = False
            for atom, target in self.nfa.transitions[run.state]:
                if atom.matches(event, run.context):
                    new_run = _Run(
                        state=target,
                        context=run.context.extended(event),
                        t_start=run.t_start,
                    )
                    if target in self.nfa.accepts:
                        matches.append(
                            PatternMatch(
                                pattern_name=self.name, key=key, events=new_run.context.events
                            )
                        )
                    else:
                        survivors.append(new_run)
                    advanced = True
            if not advanced:
                survivors.append(run)  # skip-till-next-match: keep waiting

        # New run from the start state.
        for atom, target in self.nfa.transitions[0]:
            if atom.matches(event, MatchContext()):
                context = MatchContext((event,))
                if target in self.nfa.accepts:
                    matches.append(
                        PatternMatch(pattern_name=self.name, key=key, events=context.events)
                    )
                else:
                    survivors.append(_Run(state=target, context=context, t_start=event.t))

        self._runs[key] = survivors
        return matches

    def process_all(self, events: Iterable[SimpleEvent]) -> list[PatternMatch]:
        """Batch helper: feed many events, collect all matches."""
        out: list[PatternMatch] = []
        for event in events:
            out.extend(self.process(event))
        return out

    def snapshot(self) -> dict:
        """Capture all live partial matches for a checkpoint.

        The compiled automaton itself is immutable configuration and is
        rebuilt from the pattern on restart; only the runs are state.
        """
        return copy.deepcopy(self._runs)

    def restore(self, state: dict) -> None:
        """Reinstate runs captured by :meth:`snapshot`."""
        self._runs = copy.deepcopy(state)

    def active_runs(self, key: Any) -> int:
        """Number of live partial matches for a key (introspection)."""
        return len(self._runs.get(key, ()))

    def partial_states(self, key: Any) -> list[int]:
        """Current NFA states of a key's live runs (forecasting input)."""
        return [run.state for run in self._runs.get(key, ())]

"""Domain-level complex event detectors.

Each detector consumes the report stream (and/or the simple-event stream)
in event-time order and emits :class:`ComplexEvent` instances for the
phenomena the paper names: potential collisions, rendezvous/transshipment
behaviour, loitering, and sector capacity demand. All detectors apply a
per-subject refractory period so a persisting condition raises one event
per episode, not one per report.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.geo.cpa import cpa_tcpa
from repro.geo.geodesy import haversine_m, haversine_m_arrays
from repro.geo.polygon import Polygon
from repro.model.events import ComplexEvent, EventSeverity, SimpleEvent
from repro.model.reports import PositionReport

#: Below this many live candidates the scalar distance loop beats the
#: numpy round-trip; at or above it, distances are computed in one
#: vectorised kernel call.
_VECTOR_MIN_CANDIDATES = 16

#: Conservative metres per degree of latitude. Great-circle distance is
#: bounded below by the meridian arc, ``EARTH_RADIUS_M * |Δlat_rad|`` ≈
#: ``111194.93 m/deg``; using a floor a little under that keeps the
#: bound strict through floating-point rounding, so a pair rejected on
#: latitude separation alone is provably outside any radius the exact
#: haversine would have admitted.
_METERS_PER_DEG_LAT_FLOOR = 111194.0


def _pair_key(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class CollisionRiskDetector:
    """Potential-collision detection via CPA/TCPA on current kinematics.

    On each report, nearby entities (those with a fresh latest position
    within ``candidate_radius_m``) are checked: if the projected closest
    point of approach is under ``cpa_threshold_m`` within
    ``tcpa_threshold_s``, a ``collision_risk`` event is raised for the
    pair (once per ``refractory_s``).

    With ``vertical_threshold_m`` set (aviation), the horizontal and
    vertical separations at CPA are thresholded independently — ATM
    separation standards style (e.g. 5 NM / 1000 ft): a pair conflicts
    only when *both* components are lost.
    """

    def __init__(
        self,
        cpa_threshold_m: float = 1_000.0,
        tcpa_threshold_s: float = 1_200.0,
        candidate_radius_m: float = 20_000.0,
        staleness_s: float = 120.0,
        refractory_s: float = 600.0,
        vertical_threshold_m: float | None = None,
    ) -> None:
        if cpa_threshold_m <= 0 or tcpa_threshold_s <= 0:
            raise ValueError("thresholds must be positive")
        if vertical_threshold_m is not None and vertical_threshold_m <= 0:
            raise ValueError("vertical_threshold_m must be positive")
        self.cpa_threshold_m = cpa_threshold_m
        self.tcpa_threshold_s = tcpa_threshold_s
        self.candidate_radius_m = candidate_radius_m
        self.staleness_s = staleness_s
        self.refractory_s = refractory_s
        self.vertical_threshold_m = vertical_threshold_m
        self._latest: dict[str, PositionReport] = {}
        self._last_alert: dict[tuple[str, str], float] = {}

    def process(self, report: PositionReport) -> list[ComplexEvent]:
        """Feed one report; returns any collision-risk events raised."""
        events: list[ComplexEvent] = []
        if report.speed is not None and report.heading is not None:
            for other in self._candidates(report):
                event = self._check_pair(report, other)
                if event is not None:
                    events.append(event)
        self._latest[report.entity_id] = report
        return events

    def note_position(self, report: PositionReport) -> None:
        """Track a position without running pair checks.

        For callers that already proved :meth:`process` would raise no
        event for this report (no kinematics, or no candidate could pass
        the freshness/latitude prefilter): the only state effect of
        :meth:`process` is then the latest-position write, which this
        performs verbatim.
        """
        self._latest[report.entity_id] = report

    def _candidates(self, report: PositionReport) -> list[PositionReport]:
        """Fresh, kinematics-bearing entities within the candidate radius.

        Preserves insertion (= first-seen) order. With enough live
        entities the distance prefilter runs through the vectorised
        haversine kernel in one call instead of one scalar call per
        entity.
        """
        radius = self.candidate_radius_m
        others = [
            other
            for other_id, other in self._latest.items()
            if other_id != report.entity_id
            and report.t - other.t <= self.staleness_s
            and other.speed is not None
            and other.heading is not None
            and abs(report.lat - other.lat) * _METERS_PER_DEG_LAT_FLOOR <= radius
        ]
        if len(others) >= _VECTOR_MIN_CANDIDATES:
            lons = np.fromiter((o.lon for o in others), dtype=np.float64, count=len(others))
            lats = np.fromiter((o.lat for o in others), dtype=np.float64, count=len(others))
            distances = haversine_m_arrays(report.lon, report.lat, lons, lats)
            return [o for o, d in zip(others, distances) if d <= self.candidate_radius_m]
        return [
            o
            for o in others
            if haversine_m(report.lon, report.lat, o.lon, o.lat) <= self.candidate_radius_m
        ]

    def _check_pair(
        self, report: PositionReport, other: PositionReport
    ) -> ComplexEvent | None:
        result = cpa_tcpa(
            report.lon, report.lat, report.speed or 0.0, report.heading or 0.0,
            other.lon, other.lat, other.speed or 0.0, other.heading or 0.0,
            alt1=report.alt, alt2=other.alt,
            vrate1_mps=report.vertical_rate or 0.0,
            vrate2_mps=other.vertical_rate or 0.0,
        )
        if self.vertical_threshold_m is not None and result.vertical_m is not None:
            # Independent horizontal/vertical separation (ATM style).
            if result.horizontal_m > self.cpa_threshold_m:
                return None
            if result.vertical_m > self.vertical_threshold_m:
                return None
        elif result.distance_m > self.cpa_threshold_m:
            return None
        if result.tcpa_s > self.tcpa_threshold_s:
            return None
        pair = _pair_key(report.entity_id, other.entity_id)
        last = self._last_alert.get(pair)
        if last is not None and report.t - last < self.refractory_s:
            return None
        self._last_alert[pair] = report.t
        severity = (
            EventSeverity.ALARM if result.tcpa_s < self.tcpa_threshold_s / 3.0
            else EventSeverity.WARNING
        )
        return ComplexEvent(
            event_type="collision_risk",
            entity_ids=pair,
            t_start=report.t,
            t_end=report.t,
            severity=severity,
            attributes={
                "cpa_m": result.distance_m,
                "tcpa_s": result.tcpa_s,
                "current_distance_m": result.current_distance_m,
            },
        )


class RendezvousDetector:
    """Two entities stopped together: the transshipment signature.

    Tracks which entities are stopped (from ``stop_begin``/``stop_end``
    simple events) and where; when two stopped entities have been within
    ``radius_m`` of each other for at least ``min_duration_s``, a
    ``rendezvous`` event fires for the pair (once per episode).
    """

    def __init__(self, radius_m: float = 500.0, min_duration_s: float = 600.0) -> None:
        if radius_m <= 0 or min_duration_s <= 0:
            raise ValueError("thresholds must be positive")
        self.radius_m = radius_m
        self.min_duration_s = min_duration_s
        self._stopped_since: dict[str, SimpleEvent] = {}
        self._pair_since: dict[tuple[str, str], float] = {}
        self._alerted: set[tuple[str, str]] = set()

    def process(self, event: SimpleEvent) -> list[ComplexEvent]:
        """Feed one simple event; returns any rendezvous events raised."""
        if event.event_type == "stop_begin":
            self._stopped_since[event.entity_id] = event
        elif event.event_type == "stop_end":
            self._stopped_since.pop(event.entity_id, None)
            for pair in [p for p in self._pair_since if event.entity_id in p]:
                del self._pair_since[pair]
                self._alerted.discard(pair)
            return []
        else:
            return []

        out: list[ComplexEvent] = []
        me = self._stopped_since.get(event.entity_id)
        if me is None:
            return out
        for other_id, other in self._stopped_since.items():
            if other_id == event.entity_id:
                continue
            distance = haversine_m(me.lon, me.lat, other.lon, other.lat)
            pair = _pair_key(event.entity_id, other_id)
            if distance <= self.radius_m:
                self._pair_since.setdefault(pair, max(me.t, other.t))
        out.extend(self._mature_pairs(event.t))
        return out

    def tick(self, now: float) -> list[ComplexEvent]:
        """Time-driven check: emits pairs whose co-stop matured by ``now``.

        Call periodically (e.g. once per report) because stop events alone
        do not advance time for already-stopped pairs.
        """
        return self._mature_pairs(now)

    def _mature_pairs(self, now: float) -> list[ComplexEvent]:
        out: list[ComplexEvent] = []
        for pair, since in self._pair_since.items():
            if pair in self._alerted:
                continue
            if now - since >= self.min_duration_s:
                self._alerted.add(pair)
                a = self._stopped_since.get(pair[0])
                out.append(
                    ComplexEvent(
                        event_type="rendezvous",
                        entity_ids=pair,
                        t_start=since,
                        t_end=now,
                        severity=EventSeverity.WARNING,
                        attributes={"duration_s": now - since},
                    )
                )
        return out


#: Compact a loitering window's backing lists once this many expired
#: records accumulate at the front (and they are at least half the list).
_LOITER_COMPACT_MIN = 256


class LoiteringDetector:
    """An entity dwelling slowly inside a small area for a long time.

    Keeps a sliding window of recent positions per entity; when the
    window spans at least ``min_duration_s``, fits inside a circle of
    ``radius_m`` and the average speed stays below ``max_speed_mps``, a
    ``loitering`` event fires (once per ``refractory_s``).

    The window is stored column-wise: parallel ``t``/``lon``/``lat``
    lists per entity with a logical start index, compacted periodically.
    Entities that are actually moving are dismissed by a *blocking pair*
    shortcut: when the window's latitude span alone exceeds the diagonal
    budget, the latest-starting suffix whose latitude span still exceeds
    it is located, and every report until that suffix's head expires from
    the window is skipped without touching the window again — the
    diagonal check would provably reject each of them (the meridian arc
    ``Δlat · _METERS_PER_DEG_LAT_FLOOR`` is a strict lower bound on the
    haversine diagonal). Bounds, diagonal, duration and travelled
    distance are computed with the same expressions, fold order and
    floats as a naive whole-window rescan, so decisions and event
    payloads are bit-identical to it.
    """

    def __init__(
        self,
        radius_m: float = 1_000.0,
        min_duration_s: float = 900.0,
        max_speed_mps: float = 1.5,
        refractory_s: float = 1800.0,
    ) -> None:
        self.radius_m = radius_m
        self.min_duration_s = min_duration_s
        self.max_speed_mps = max_speed_mps
        self.refractory_s = refractory_s
        self._t: dict[str, list[float]] = {}
        self._lon: dict[str, list[float]] = {}
        self._lat: dict[str, list[float]] = {}
        self._start: dict[str, int] = {}
        self._block_until: dict[str, float] = {}
        self._last_alert: dict[str, float] = {}

    def process(self, report: PositionReport) -> list[ComplexEvent]:
        """Feed one report; returns any loitering events raised."""
        eid = report.entity_id
        tl = self._t.get(eid)
        if tl is None:
            tl = self._t[eid] = []
            lonl = self._lon[eid] = []
            latl = self._lat[eid] = []
            self._start[eid] = 0
        else:
            lonl = self._lon[eid]
            latl = self._lat[eid]
        t = report.t
        tl.append(t)
        lonl.append(report.lon)
        latl.append(report.lat)
        dur = self.min_duration_s
        start = self._start[eid]
        while t - tl[start] > dur:
            start += 1
        if start >= _LOITER_COMPACT_MIN and start * 2 >= len(tl):
            del tl[:start]
            del lonl[:start]
            del latl[:start]
            start = 0
        self._start[eid] = start
        span = t - tl[start]
        if span < dur * 0.95:
            return []
        event = self._evaluate(eid, tl, lonl, latl, start, t, span)
        return [] if event is None else [event]

    def process_positions(
        self,
        entity_id: str,
        ts: list[float],
        lons: list[float],
        lats: list[float],
    ) -> list[tuple[int, ComplexEvent]]:
        """Feed one entity's in-order positions; sparse ``(index, event)`` list.

        Exact bulk equivalent of one :meth:`process` call per position —
        same state evolution, bit-identical events — with the per-entity
        window columns and config gates hoisted out of the per-record
        path. Events are returned tagged with the index of the position
        that raised them so a caller interleaving several detectors can
        reconstruct per-record emission order.
        """
        eid = entity_id
        tl = self._t.get(eid)
        if tl is None:
            tl = self._t[eid] = []
            lonl = self._lon[eid] = []
            latl = self._lat[eid] = []
            self._start[eid] = 0
        else:
            lonl = self._lon[eid]
            latl = self._lat[eid]
        dur = self.min_duration_s
        # Same two floats, same product as the scalar gate.
        near = dur * 0.95
        refractory = self.refractory_s
        last_alert = self._last_alert
        block_until = self._block_until
        start = self._start[eid]
        t_append = tl.append
        lon_append = lonl.append
        lat_append = latl.append
        out: list[tuple[int, ComplexEvent]] = []
        for k, t in enumerate(ts):
            t_append(t)
            lon_append(lons[k])
            lat_append(lats[k])
            while t - tl[start] > dur:
                start += 1
            if start >= _LOITER_COMPACT_MIN and start * 2 >= len(tl):
                del tl[:start]
                del lonl[:start]
                del latl[:start]
                start = 0
            span = t - tl[start]
            if span < near:
                continue
            # The refractory and block gates are re-checked (and the
            # block state maintained) inside _evaluate; testing them
            # here first just skips the call for suppressed records.
            last = last_alert.get(eid)
            if last is not None and t - last < refractory:
                continue
            block = block_until.get(eid)
            if block is not None and t <= block:
                continue
            event = self._evaluate(eid, tl, lonl, latl, start, t, span)
            if event is not None:
                out.append((k, event))
        self._start[eid] = start
        return out

    def _evaluate(
        self,
        eid: str,
        tl: list[float],
        lonl: list[float],
        latl: list[float],
        start: int,
        t: float,
        span: float,
    ) -> ComplexEvent | None:
        """Window-qualified alert decision (refractory/block/geometry)."""
        last = self._last_alert.get(eid)
        if last is not None and t - last < self.refractory_s:
            return None
        block = self._block_until.get(eid)
        if block is not None and t <= block:
            return None

        lat_w = latl[start:]
        min_lat = min(lat_w)
        max_lat = max(lat_w)
        two_r = 2.0 * self.radius_m
        if (max_lat - min_lat) * _METERS_PER_DEG_LAT_FLOOR > two_r:
            # Moving entity: find the latest-starting suffix whose
            # latitude span alone blows the budget and skip every report
            # until its head leaves the window.
            run_min = run_max = lat_w[-1]
            blk = start
            for k in range(len(lat_w) - 2, -1, -1):
                v = lat_w[k]
                if v < run_min:
                    run_min = v
                elif v > run_max:
                    run_max = v
                if (run_max - run_min) * _METERS_PER_DEG_LAT_FLOOR > two_r:
                    blk = start + k
                    break
            self._block_until[eid] = tl[blk] + self.min_duration_s
            return None

        lon_w = lonl[start:]
        min_lon = min(lon_w)
        max_lon = max(lon_w)
        diagonal = haversine_m(min_lon, min_lat, max_lon, max_lat)
        if diagonal > two_r:
            return None
        duration = span
        travelled = 0.0
        px = lon_w[0]
        py = lat_w[0]
        for k in range(1, len(lon_w)):
            qx = lon_w[k]
            qy = lat_w[k]
            travelled += haversine_m(px, py, qx, qy)
            px = qx
            py = qy
        if duration <= 0 or travelled / duration > self.max_speed_mps:
            return None

        self._last_alert[eid] = t
        return ComplexEvent(
            event_type="loitering",
            entity_ids=(eid,),
            t_start=tl[start],
            t_end=t,
            severity=EventSeverity.WARNING,
            attributes={"area_diagonal_m": diagonal, "duration_s": duration},
        )


class CapacityDemandDetector:
    """Sector capacity demand: too many entities in a sector per window.

    Counts distinct entities present in each sector over tumbling windows;
    when a window's count exceeds the sector's capacity, a
    ``capacity_overload`` event fires at window close. This is the
    aviation "hotspot / capacity demand" phenomenon from the paper.
    """

    def __init__(
        self,
        sectors: list[Polygon],
        capacity: int = 10,
        window_s: float = 600.0,
    ) -> None:
        if capacity <= 0 or window_s <= 0:
            raise ValueError("capacity and window must be positive")
        self.sectors = sectors
        self.capacity = capacity
        self.window_s = window_s
        self._current_window: int | None = None
        self._present: dict[str, set[str]] = defaultdict(set)

    def process(self, report: PositionReport) -> list[ComplexEvent]:
        """Feed one report; emits overload events when a window closes."""
        window_idx = int(report.t // self.window_s)
        out: list[ComplexEvent] = []
        if self._current_window is not None and window_idx != self._current_window:
            out = self._close_window(self._current_window)
        self._current_window = window_idx
        for sector in self.sectors:
            if sector.contains(report.lon, report.lat):
                self._present[sector.name].add(report.entity_id)
        return out

    def flush(self) -> list[ComplexEvent]:
        """Close the final window at end of stream."""
        if self._current_window is None:
            return []
        out = self._close_window(self._current_window)
        self._current_window = None
        return out

    def _close_window(self, window_idx: int) -> list[ComplexEvent]:
        t_start = window_idx * self.window_s
        t_end = t_start + self.window_s
        out: list[ComplexEvent] = []
        for sector_name, entities in self._present.items():
            if len(entities) > self.capacity:
                out.append(
                    ComplexEvent(
                        event_type="capacity_overload",
                        entity_ids=tuple(sorted(entities)),
                        t_start=t_start,
                        t_end=t_end,
                        severity=EventSeverity.WARNING,
                        attributes={
                            "sector": sector_name,
                            "count": len(entities),
                            "capacity": self.capacity,
                        },
                    )
                )
        self._present.clear()
        return out

"""Complex event recognition and forecasting.

"Recognition and forecasting of complex events and patterns due to the
movement of entities (e.g. prediction of potential collision, capacity
demand, hot spots / paths)":

- :mod:`repro.cep.simple` — derives simple events from the report stream
  (zone entry/exit, stop begin/end, speed anomaly, gaps, pairwise
  proximity).
- :mod:`repro.cep.patterns` — the pattern algebra: atoms with guards,
  sequence, disjunction, iteration, negation, time windows.
- :mod:`repro.cep.nfa` — pattern compilation to NFAs and the runtime
  engine (skip-till-next-match, per-key runs, window pruning).
- :mod:`repro.cep.detectors` — domain detectors: collision risk
  (CPA/TCPA), rendezvous, loitering, zone events, sector capacity demand.
- :mod:`repro.cep.forecast` — event forecasting: per-state completion
  probabilities learned from history (Markov over NFA states), and
  kinematic collision forecasting.
- :mod:`repro.cep.evaluation` — precision/recall scoring of detections
  against scripted ground truth (experiment E6).
"""

from repro.cep.simple import SimpleEventConfig, SimpleEventExtractor
from repro.cep.patterns import Atom, Seq, Or, Iter, Neg, Pattern
from repro.cep.nfa import NFA, PatternEngine, PatternMatch
from repro.cep.detectors import (
    CollisionRiskDetector,
    RendezvousDetector,
    LoiteringDetector,
    CapacityDemandDetector,
)
from repro.cep.aviation import LevelBustDetector, HoldingPatternDetector
from repro.cep.demand_forecast import SectorDemandForecaster, SectorDemand
from repro.cep.hotspot_stream import StreamingHotspotDetector
from repro.cep.forecast import PatternForecaster, EventForecast
from repro.cep.evaluation import match_events, DetectionScore
from repro.cep import library

__all__ = [
    "SimpleEventConfig",
    "SimpleEventExtractor",
    "Atom",
    "Seq",
    "Or",
    "Iter",
    "Neg",
    "Pattern",
    "NFA",
    "PatternEngine",
    "PatternMatch",
    "CollisionRiskDetector",
    "RendezvousDetector",
    "LoiteringDetector",
    "CapacityDemandDetector",
    "LevelBustDetector",
    "HoldingPatternDetector",
    "SectorDemandForecaster",
    "SectorDemand",
    "StreamingHotspotDetector",
    "PatternForecaster",
    "EventForecast",
    "match_events",
    "DetectionScore",
    "library",
]

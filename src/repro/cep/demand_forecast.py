"""Sector capacity-demand forecasting.

The paper names "prediction of ... capacity demand" as a target complex
event. Detection (``CapacityDemandDetector``) tells a controller the
sector is *already* overloaded; what ATM actually needs is the forecast:
"sector S will hold 12 aircraft in 20 minutes".

The forecaster combines the two layers this library already has:

1. per-flight future-location prediction (any :class:`Predictor`) from
   each aircraft's live track history;
2. point-in-sector counting of the predicted positions.

Forecast occupancy above a sector's capacity raises a
``capacity_demand_forecast`` event *ahead of time* — the predictive
counterpart of the detector's reactive alarm.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.geo.polygon import Polygon
from repro.forecasting.base import Predictor
from repro.model.events import ComplexEvent, EventSeverity
from repro.model.reports import PositionReport
from repro.model.trajectory import Trajectory


@dataclass(frozen=True, slots=True)
class SectorDemand:
    """Forecast occupancy of one sector at one future time.

    Attributes:
        sector: Sector name.
        t_forecast: The future instant the forecast refers to.
        expected_count: Aircraft predicted inside the sector.
        entities: Which aircraft are predicted inside.
    """

    sector: str
    t_forecast: float
    expected_count: int
    entities: tuple[str, ...]


class SectorDemandForecaster:
    """Forecasts per-sector occupancy from live track histories.

    Args:
        sectors: The airspace sectors.
        predictor: The future-location model applied per aircraft.
        capacity: Demand above this raises a forecast event.
        min_history_s: Aircraft with shorter histories are skipped (the
            predictor would extrapolate noise).
    """

    def __init__(
        self,
        sectors: Sequence[Polygon],
        predictor: Predictor,
        capacity: int = 10,
        min_history_s: float = 120.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sectors = list(sectors)
        self.predictor = predictor
        self.capacity = capacity
        self.min_history_s = min_history_s
        self._tracks: dict[str, list[PositionReport]] = defaultdict(list)

    def observe(self, report: PositionReport) -> None:
        """Accumulate one live report into the entity's track buffer."""
        track = self._tracks[report.entity_id]
        if track and report.t <= track[-1].t:
            return  # ignore out-of-order for the live picture
        track.append(report)

    def observe_all(self, reports: Iterable[PositionReport]) -> None:
        """Accumulate many reports."""
        for report in reports:
            self.observe(report)

    def active_entities(self, now: float, staleness_s: float = 300.0) -> list[str]:
        """Entities with a fresh-enough last report to forecast from."""
        return [
            entity_id
            for entity_id, track in self._tracks.items()
            if track and now - track[-1].t <= staleness_s
        ]

    def forecast(self, now: float, horizon_s: float) -> list[SectorDemand]:
        """Predict per-sector occupancy at ``now + horizon_s``.

        Every active aircraft's history is run through the predictor; the
        predicted positions are counted per sector. Sectors with zero
        forecast occupancy are omitted.
        """
        if horizon_s < 0:
            raise ValueError("horizon_s must be >= 0")
        t_forecast = now + horizon_s
        per_sector: dict[str, list[str]] = defaultdict(list)
        for entity_id in self.active_entities(now):
            track = self._tracks[entity_id]
            history = self._history(entity_id, track)
            if history is None:
                continue
            outcome = self.predictor.predict(history, t_forecast - history.end_time)
            for sector in self.sectors:
                if sector.contains(outcome.point.lon, outcome.point.lat):
                    per_sector[sector.name].append(entity_id)
                    break
        return [
            SectorDemand(
                sector=name,
                t_forecast=t_forecast,
                expected_count=len(entities),
                entities=tuple(sorted(entities)),
            )
            for name, entities in sorted(per_sector.items())
        ]

    def forecast_events(self, now: float, horizon_s: float) -> list[ComplexEvent]:
        """Overload forecasts as complex events (above-capacity sectors)."""
        out = []
        for demand in self.forecast(now, horizon_s):
            if demand.expected_count > self.capacity:
                out.append(
                    ComplexEvent(
                        event_type="capacity_demand_forecast",
                        entity_ids=demand.entities,
                        t_start=now,
                        t_end=demand.t_forecast,
                        severity=EventSeverity.WARNING,
                        attributes={
                            "sector": demand.sector,
                            "expected_count": demand.expected_count,
                            "capacity": self.capacity,
                            "horizon_s": horizon_s,
                        },
                    )
                )
        return out

    def _history(
        self, entity_id: str, track: list[PositionReport]
    ) -> Trajectory | None:
        if len(track) < 2 or track[-1].t - track[0].t < self.min_history_s:
            return None
        alt_ok = all(r.alt is not None for r in track)
        return Trajectory(
            entity_id,
            [r.t for r in track],
            [r.lon for r in track],
            [r.lat for r in track],
            [r.alt for r in track] if alt_ok else None,
        )


def actual_occupancy(
    truth: dict[str, Trajectory],
    sectors: Sequence[Polygon],
    t: float,
) -> dict[str, set[str]]:
    """Ground-truth sector occupancy at time ``t`` (evaluation helper)."""
    out: dict[str, set[str]] = {sector.name: set() for sector in sectors}
    for entity_id, trajectory in truth.items():
        if not (trajectory.start_time <= t <= trajectory.end_time):
            continue
        point = trajectory.at_time(t)
        for sector in sectors:
            if sector.contains(point.lon, point.lat):
                out[sector.name].add(entity_id)
                break
    return out

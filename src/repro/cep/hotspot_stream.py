"""Online hot-spot detection over the live report stream.

The batch analytics (:mod:`repro.trajectory.hotspots`) find hot spots in
an archive; the paper's phrasing — "recognition and forecasting of ...
hot spots / paths" — wants them *live*. This detector maintains tumbling
windows of per-cell entity presence and, at each window close, raises a
``hotspot`` complex event for every cell whose distinct-entity count is
anomalously high for the window (Getis-Ord-style z-score over the
window's density surface, same statistic as the batch path).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

import numpy as np

from repro.geo.grid import GeoGrid
from repro.model.events import ComplexEvent, EventSeverity
from repro.model.reports import PositionReport
from repro.trajectory.hotspots import hotspot_cells


class StreamingHotspotDetector:
    """Tumbling-window hot-spot recognition.

    Args:
        grid: Density grid (cell size = hotspot resolution).
        window_s: Tumbling window length.
        z_threshold: Getis-Ord-style z-score above which a cell is hot.
        min_entities: Cells with fewer distinct entities in the window
            never alert (guards tiny-traffic windows where the z-score is
            meaningless).
    """

    def __init__(
        self,
        grid: GeoGrid,
        window_s: float = 1800.0,
        z_threshold: float = 2.5,
        min_entities: int = 3,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if min_entities < 1:
            raise ValueError("min_entities must be >= 1")
        self.grid = grid
        self.window_s = window_s
        self.z_threshold = z_threshold
        self.min_entities = min_entities
        self._current_window: int | None = None
        # (ix, iy) -> set of entity ids present this window
        self._presence: dict[tuple[int, int], set[str]] = defaultdict(set)

    def process(self, report: PositionReport) -> list[ComplexEvent]:
        """Feed one report (event-time order); windows close as time passes."""
        window_idx = int(report.t // self.window_s)
        out: list[ComplexEvent] = []
        if self._current_window is not None and window_idx != self._current_window:
            out = self._close_window(self._current_window)
        self._current_window = window_idx
        cell = self.grid.cell_of(report.lon, report.lat)
        self._presence[cell].add(report.entity_id)
        return out

    def process_all(self, reports: Iterable[PositionReport]) -> list[ComplexEvent]:
        """Batch helper over an ordered stream; flushes the final window."""
        out: list[ComplexEvent] = []
        for report in reports:
            out.extend(self.process(report))
        out.extend(self.flush())
        return out

    def flush(self) -> list[ComplexEvent]:
        """Close the final window at end of stream."""
        if self._current_window is None:
            return []
        out = self._close_window(self._current_window)
        self._current_window = None
        return out

    def _close_window(self, window_idx: int) -> list[ComplexEvent]:
        density = np.zeros((self.grid.ny, self.grid.nx))
        for (ix, iy), entities in self._presence.items():
            density[iy, ix] = float(len(entities))
        presence, self._presence = self._presence, defaultdict(set)

        t_start = window_idx * self.window_s
        t_end = t_start + self.window_s
        out: list[ComplexEvent] = []
        for ix, iy, z in hotspot_cells(density, z_threshold=self.z_threshold):
            entities = presence.get((ix, iy), set())
            if len(entities) < self.min_entities:
                continue
            lon, lat = self.grid.cell_bbox(ix, iy).center
            out.append(
                ComplexEvent(
                    event_type="hotspot",
                    entity_ids=tuple(sorted(entities)),
                    t_start=t_start,
                    t_end=t_end,
                    severity=EventSeverity.ADVISORY,
                    attributes={
                        "cell": (ix, iy),
                        "lon": lon,
                        "lat": lat,
                        "z_score": z,
                        "entity_count": len(entities),
                    },
                )
            )
        return out

"""Simple event derivation from the position-report stream.

A :class:`SimpleEventExtractor` consumes reports (one call per report, in
event-time order) and emits :class:`SimpleEvent` instances:

================ ============================================================
``zone_entry``   entity crossed into a zone of interest (attr ``zone``)
``zone_exit``    entity left a zone
``stop_begin``   speed dropped below the stop threshold
``stop_end``     speed recovered
``speed_anomaly`` speed exceeded the entity's plausible ceiling fraction
``gap_start``    retroactive: communication silence began (emitted at
                 reconnection, timestamped at the last report before it)
``gap_end``      communication resumed after a long silence
``proximity``    another entity is within the proximity radius (attr
                 ``other``, ``distance_m``) — the input to encounter-level
                 detectors
================ ============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.geo.geodesy import haversine_m, haversine_m_arrays
from repro.geo.grid import GeoGrid, GridIndex
from repro.geo.polygon import Polygon
from repro.geo.zone_index import ZoneIndex
from repro.model.entities import EntityRegistry
from repro.model.events import EventSeverity, SimpleEvent
from repro.model.reports import PositionReport
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

#: Below this many proximity candidates the scalar loop beats the numpy
#: round-trip; at or above it, distances come from one vectorised call.
_VECTOR_MIN_CANDIDATES = 16

#: Conservative metres per degree of latitude (strict lower bound on
#: great-circle distance via the meridian arc — see
#: :data:`repro.cep.detectors._METERS_PER_DEG_LAT_FLOOR`).
_METERS_PER_DEG_LAT_FLOOR = 111194.0


@dataclass(frozen=True, slots=True)
class SimpleEventConfig:
    """Thresholds for simple event derivation.

    Attributes:
        stop_speed_mps: Below → stopped.
        stop_hysteresis: ``stop_end`` requires speed to exceed
            ``stop_speed_mps × stop_hysteresis`` (Schmitt trigger), so
            measurement noise around the threshold cannot toggle the stop
            state on every report.
        speed_anomaly_factor: Speed above ``factor × max_speed`` of the
            entity raises an anomaly.
        gap_threshold_s: Silence longer than this is a communication gap.
        proximity_radius_m: Pairwise distance that triggers proximity
            events.
        proximity_staleness_s: Another entity's last position older than
            this does not count for proximity.
    """

    stop_speed_mps: float = 0.8
    stop_hysteresis: float = 2.0
    speed_anomaly_factor: float = 1.2
    gap_threshold_s: float = 600.0
    proximity_radius_m: float = 5_000.0
    proximity_staleness_s: float = 120.0

    def __post_init__(self) -> None:
        if self.stop_speed_mps < 0 or self.speed_anomaly_factor <= 0:
            raise ValueError("invalid thresholds")
        if self.gap_threshold_s <= 0 or self.proximity_radius_m <= 0:
            raise ValueError("invalid thresholds")


@dataclass
class _EntityState:
    last: PositionReport | None = None
    stopped: bool = False
    zones: set[str] = field(default_factory=set)


class SimpleEventExtractor:
    """Stateful extractor of simple events from an ordered report stream."""

    def __init__(
        self,
        config: SimpleEventConfig | None = None,
        zones: Iterable[Polygon] = (),
        registry: EntityRegistry | None = None,
        grid: GeoGrid | None = None,
        metrics: "MetricsRegistry | None" = None,
        zone_index: ZoneIndex | None = None,
    ) -> None:
        self.config = config or SimpleEventConfig()
        self.zones = list(zones)
        self.registry = registry
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._obs = self.metrics.enabled
        self._events_counter = self.metrics.counter("cep.simple_events")
        self._states: dict[str, _EntityState] = {}
        # Latest position per entity for proximity checks.
        self._latest: dict[str, PositionReport] = {}
        self._grid = grid
        if zone_index is not None and len(zone_index) != len(self.zones):
            raise ValueError("zone_index must index exactly the extractor's zones")
        self._zone_index = zone_index
        self._zone_pos = {zone.name: i for i, zone in enumerate(self.zones)}

    def process(self, report: PositionReport) -> list[SimpleEvent]:
        """Derive the simple events triggered by one report."""
        state = self._states.setdefault(report.entity_id, _EntityState())
        events: list[SimpleEvent] = []

        self._gap_events(report, state, events)
        self._stop_events(report, state, events)
        self._speed_anomaly(report, events)
        self._zone_events(report, state, events)
        self._proximity_events(report, events)

        state.last = report
        self._latest[report.entity_id] = report
        if events and self._obs:
            self._events_counter.inc(len(events))
        return events

    def advance_quiet(self, report: PositionReport) -> None:
        """Record a report that provably raises no event: state catch-up only.

        The columnar pipeline walk calls this for reports its conservative
        guards cleared — such a report's only effect in :meth:`process`
        is updating ``state.last`` and the latest-position map (stop state
        and zone membership are untouched by a non-event report), so this
        is exactly the residue of a full :meth:`process` call.
        """
        state = self._states.setdefault(report.entity_id, _EntityState())
        state.last = report
        self._latest[report.entity_id] = report

    def process_all(self, reports: Iterable[PositionReport]) -> list[SimpleEvent]:
        """Batch helper over an event-time-ordered report sequence."""
        out: list[SimpleEvent] = []
        for report in reports:
            out.extend(self.process(report))
        return out

    # -- detectors ------------------------------------------------------------

    def _gap_events(
        self, report: PositionReport, state: _EntityState, events: list[SimpleEvent]
    ) -> None:
        last = state.last
        if last is None:
            return
        if report.t - last.t > self.config.gap_threshold_s:
            events.append(
                SimpleEvent(
                    event_type="gap_start",
                    entity_id=report.entity_id,
                    t=last.t,
                    lon=last.lon,
                    lat=last.lat,
                    severity=EventSeverity.ADVISORY,
                    attributes={"duration_s": report.t - last.t},
                )
            )
            events.append(
                SimpleEvent(
                    event_type="gap_end",
                    entity_id=report.entity_id,
                    t=report.t,
                    lon=report.lon,
                    lat=report.lat,
                    severity=EventSeverity.ADVISORY,
                    attributes={"duration_s": report.t - last.t},
                )
            )

    def _stop_events(
        self, report: PositionReport, state: _EntityState, events: list[SimpleEvent]
    ) -> None:
        speed = self._effective_speed(report, state)
        if speed is None:
            return
        if not state.stopped and speed < self.config.stop_speed_mps:
            state.stopped = True
            events.append(self._event("stop_begin", report, speed_mps=speed))
        elif state.stopped and speed >= self.config.stop_speed_mps * self.config.stop_hysteresis:
            state.stopped = False
            events.append(self._event("stop_end", report, speed_mps=speed))

    def _effective_speed(
        self, report: PositionReport, state: _EntityState
    ) -> float | None:
        if report.speed is not None:
            return report.speed
        if state.last is None:
            return None
        dt = report.t - state.last.t
        if dt <= 0:
            return None
        return haversine_m(state.last.lon, state.last.lat, report.lon, report.lat) / dt

    def _speed_anomaly(self, report: PositionReport, events: list[SimpleEvent]) -> None:
        if report.speed is None or self.registry is None:
            return
        entity = self.registry.get_or_none(report.entity_id)
        if entity is None:
            return
        ceiling = entity.max_speed_mps * self.config.speed_anomaly_factor
        if report.speed > ceiling:
            events.append(
                self._event(
                    "speed_anomaly",
                    report,
                    severity=EventSeverity.WARNING,
                    speed_mps=report.speed,
                    ceiling_mps=ceiling,
                )
            )

    def _zone_events(
        self, report: PositionReport, state: _EntityState, events: list[SimpleEvent]
    ) -> None:
        zones: Iterable[Polygon] = self.zones
        index = self._zone_index
        if index is not None:
            # Prefiltered scan: exact-test only zones whose bbox cells
            # cover the point, plus zones the entity is currently inside
            # (an exit must still be noticed). A zone in neither group is
            # provably not containing the point and not in state.zones,
            # so skipping it emits nothing and mutates nothing — identical
            # to the full scan. Sorted indices preserve zone order.
            candidate = index.candidate_indices(report.lon, report.lat)
            if state.zones:
                pos = self._zone_pos
                indices = sorted(
                    set(candidate).union(pos[name] for name in state.zones)
                )
            else:
                indices = list(candidate)
            zones = (self.zones[i] for i in indices)
        for zone in zones:
            inside = zone.contains(report.lon, report.lat)
            was_inside = zone.name in state.zones
            if inside and not was_inside:
                state.zones.add(zone.name)
                events.append(
                    self._event("zone_entry", report, severity=EventSeverity.WARNING, zone=zone.name)
                )
            elif not inside and was_inside:
                state.zones.discard(zone.name)
                events.append(
                    self._event("zone_exit", report, severity=EventSeverity.INFO, zone=zone.name)
                )

    def _proximity_events(self, report: PositionReport, events: list[SimpleEvent]) -> None:
        radius = self.config.proximity_radius_m
        fresh = [
            (other_id, other)
            for other_id, other in self._candidates(report)
            if other_id != report.entity_id
            and report.t - other.t <= self.config.proximity_staleness_s
            and abs(report.lat - other.lat) * _METERS_PER_DEG_LAT_FLOOR <= radius
        ]
        if len(fresh) >= _VECTOR_MIN_CANDIDATES:
            n = len(fresh)
            lons = np.fromiter((o.lon for __, o in fresh), dtype=np.float64, count=n)
            lats = np.fromiter((o.lat for __, o in fresh), dtype=np.float64, count=n)
            distances = haversine_m_arrays(report.lon, report.lat, lons, lats)
            hits = [
                (other_id, float(d))
                for (other_id, __), d in zip(fresh, distances)
                if d <= radius
            ]
        else:
            hits = [
                (other_id, distance)
                for other_id, other in fresh
                if (
                    distance := haversine_m(report.lon, report.lat, other.lon, other.lat)
                )
                <= radius
            ]
        for other_id, distance in hits:
            events.append(
                self._event(
                    "proximity",
                    report,
                    severity=EventSeverity.ADVISORY,
                    other=other_id,
                    distance_m=distance,
                )
            )

    def _candidates(self, report: PositionReport) -> list[tuple[str, PositionReport]]:
        """Entities that could be within the proximity radius.

        With a grid configured this uses a spatial index rebuilt lazily;
        without one it scans all latest positions (fine for small fleets,
        and always correct).
        """
        if self._grid is None:
            return list(self._latest.items())
        index = GridIndex(self._grid)
        for entity_id, last in self._latest.items():
            index.insert(last.lon, last.lat, entity_id)
        ids = index.query_radius(report.lon, report.lat, self.config.proximity_radius_m)
        return [(i, self._latest[i]) for i in ids]

    @staticmethod
    def _event(
        event_type: str,
        report: PositionReport,
        severity: EventSeverity = EventSeverity.INFO,
        **attributes,
    ) -> SimpleEvent:
        return SimpleEvent(
            event_type=event_type,
            entity_id=report.entity_id,
            t=report.t,
            lon=report.lon,
            lat=report.lat,
            severity=severity,
            attributes=attributes,
        )

"""Scoring complex event detections against scripted ground truth (E6)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.events import ComplexEvent, SimpleEvent
from repro.sources.scenarios import ExpectedEvent


def promote(event: SimpleEvent) -> ComplexEvent:
    """Lift a simple event to a complex event for uniform scoring."""
    return ComplexEvent(
        event_type=event.event_type,
        entity_ids=(event.entity_id,),
        t_start=event.t,
        t_end=event.t,
        severity=event.severity,
        attributes=event.attributes,
        contributing=(event,),
    )


@dataclass(frozen=True, slots=True)
class DetectionScore:
    """Precision/recall of a detection run.

    Attributes:
        true_positives: Expected events matched by >= 1 detection.
        false_negatives: Expected events never detected.
        false_positives: Detections matching no expected event.
        mean_latency_s: Mean of (first detection time − earliest
            acceptable time) over matched events; smaller is earlier.
    """

    true_positives: int
    false_negatives: int
    false_positives: int
    mean_latency_s: float

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was detected."""
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when nothing was expected."""
        expected = self.true_positives + self.false_negatives
        return self.true_positives / expected if expected else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0


def match_events(
    detections: list[ComplexEvent],
    expected: list[ExpectedEvent],
) -> DetectionScore:
    """Greedy matching of detections to expected events.

    A detection matches an expected event when the types agree, the
    expected entities are a subset of the detection's entities and the
    detection time (``t_end``) falls in the expected window. Each
    detection can satisfy one expected event; extra detections of an
    already-matched expectation are *not* counted as false positives
    (repeated alerts for one episode are operationally benign).
    """
    matched: list[float] = []
    remaining = list(expected)
    unmatched_detections = 0
    satisfied: list[ExpectedEvent] = []

    for detection in sorted(detections, key=lambda d: d.t_end):
        target = None
        for exp in remaining:
            if _matches(detection, exp):
                target = exp
                break
        if target is not None:
            remaining.remove(target)
            satisfied.append(target)
            matched.append(detection.t_end - target.t_from)
            continue
        if any(_matches(detection, exp) for exp in satisfied):
            continue  # repeated alert for an already-matched episode
        unmatched_detections += 1

    return DetectionScore(
        true_positives=len(matched),
        false_negatives=len(remaining),
        false_positives=unmatched_detections,
        mean_latency_s=float(np.mean(matched)) if matched else 0.0,
    )


def _matches(detection: ComplexEvent, expected: ExpectedEvent) -> bool:
    if detection.event_type != expected.event_type:
        return False
    if not set(expected.entity_ids).issubset(set(detection.entity_ids)):
        return False
    return expected.t_from <= detection.t_end <= expected.t_to

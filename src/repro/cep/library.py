"""A library of predefined domain patterns built on the pattern algebra.

Each factory returns a configured :class:`PatternEngine` recognizing one
operationally meaningful behaviour over the simple-event stream. These
are the "complex events and patterns due to the movement of entities"
the paper's recognition layer targets, expressed declaratively.
"""

from __future__ import annotations

from typing import Any

from repro.cep.nfa import PatternEngine
from repro.cep.patterns import Atom, Iter, MatchContext, Neg, Or, Seq
from repro.model.events import SimpleEvent


def dark_activity(window_s: float = 3600.0) -> PatternEngine:
    """A long communication gap bracketed by stops — "going dark".

    ``stop_begin`` then ``gap_start`` then ``gap_end`` with no
    ``stop_end`` in between: the vessel stopped, switched its transponder
    off, and reappeared still (or again) stopped — the transshipment /
    illicit-activity signature for dark periods.
    """
    pattern = Seq((
        Atom("stop_begin"),
        Neg(Atom("stop_end")),
        Atom("gap_start"),
        Atom("gap_end"),
    ))
    return PatternEngine(pattern, window_s=window_s, name="dark_activity")


def gap_near_zone(zone_prefix: str = "", window_s: float = 1800.0) -> PatternEngine:
    """Zone entry followed by a communication gap before any exit.

    Entering an area of interest and then going silent — the pattern
    behind "suspicious gap in protected area" alerts.
    """

    def in_zone(event: SimpleEvent, __ctx: MatchContext) -> bool:
        zone = str(event.attributes.get("zone", ""))
        return zone.startswith(zone_prefix)

    pattern = Seq((
        Atom("zone_entry", guard=in_zone),
        Neg(Atom("zone_exit")),
        Atom("gap_start"),
    ))
    return PatternEngine(pattern, window_s=window_s, name="gap_near_zone")


def shadowing(max_gap_events: int = 4, window_s: float = 1800.0) -> PatternEngine:
    """Repeated proximity to the *same* other entity — one vessel
    following another.

    At least ``max_gap_events`` proximity events against a constant
    counterpart within the window.
    """

    def same_other(event: SimpleEvent, context: MatchContext) -> bool:
        if context.first is None:
            return True
        return event.attributes.get("other") == context.first.attributes.get("other")

    pattern = Iter(
        Atom("proximity", guard=same_other),
        min_count=max_gap_events,
        max_count=max_gap_events,
    )
    return PatternEngine(pattern, window_s=window_s, name="shadowing")


def zigzag(min_turns: int = 4, window_s: float = 1200.0) -> PatternEngine:
    """Rapid alternating manoeuvres: several stop/turn-class events in a
    short window — evasive or fishing-like movement.

    Built on ``stop_begin``/``stop_end`` oscillation; trawling vessels
    alternate slow hauls and accelerations.
    """
    step = Or((Atom("stop_begin"), Atom("stop_end")))
    parts = tuple([step] * max(2, min_turns))
    return PatternEngine(Seq(parts), window_s=window_s, name="zigzag")


def blackout_reappear_elsewhere(
    min_jump_m: float = 10_000.0, window_s: float = 7200.0
) -> PatternEngine:
    """A gap whose end lies far from its start — the entity moved while
    dark.

    The guard compares the gap-end position against the gap-start
    position captured earlier in the match.
    """

    def far_from_start(event: SimpleEvent, context: MatchContext) -> bool:
        from repro.geo.geodesy import haversine_m

        start = context.first
        if start is None:
            return False
        return haversine_m(start.lon, start.lat, event.lon, event.lat) >= min_jump_m

    pattern = Seq((Atom("gap_start"), Atom("gap_end", guard=far_from_start)))
    return PatternEngine(pattern, window_s=window_s, name="blackout_reappear_elsewhere")


def all_patterns() -> dict[str, PatternEngine]:
    """Fresh instances of every library pattern, keyed by name."""
    engines = [
        dark_activity(),
        gap_near_zone(),
        shadowing(),
        zigzag(),
        blackout_reappear_elsewhere(),
    ]
    return {engine.name: engine for engine in engines}

"""The data-at-rest store: historical trajectories.

The archival store is the "data-at-rest (archival)" half of the paper's
integrated data layer. It holds completed trajectories, supports time and
space queries, and feeds the pattern-based forecasting models with
historical routes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.geo.bbox import BBox
from repro.model.errors import UnknownEntityError
from repro.model.points import Domain
from repro.model.trajectory import Trajectory


class ArchivalStore:
    """In-memory archive of historical trajectories.

    Trajectories accumulate per entity (multiple voyages append as separate
    records). Queries cover the axes the analytics need: by entity, by time
    interval, by spatial range and by domain.
    """

    def __init__(self) -> None:
        self._by_entity: dict[str, list[Trajectory]] = defaultdict(list)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, trajectory: Trajectory) -> None:
        """Archive one completed trajectory."""
        if len(trajectory) == 0:
            raise ValueError("refusing to archive an empty trajectory")
        self._by_entity[trajectory.entity_id].append(trajectory)
        self._count += 1

    def add_all(self, trajectories: Iterable[Trajectory]) -> None:
        """Archive several trajectories."""
        for trajectory in trajectories:
            self.add(trajectory)

    def entity_ids(self) -> list[str]:
        """All entity ids with archived history."""
        return list(self._by_entity)

    def for_entity(self, entity_id: str) -> list[Trajectory]:
        """All archived trajectories of an entity (raises when unknown)."""
        if entity_id not in self._by_entity:
            raise UnknownEntityError(entity_id)
        return list(self._by_entity[entity_id])

    def all(self) -> Iterator[Trajectory]:
        """Iterate every archived trajectory."""
        for trajectories in self._by_entity.values():
            yield from trajectories

    def query_time(self, t_from: float, t_to: float) -> list[Trajectory]:
        """Trajectories overlapping the closed interval ``[t_from, t_to]``."""
        out = []
        for trajectory in self.all():
            if trajectory.start_time <= t_to and trajectory.end_time >= t_from:
                out.append(trajectory)
        return out

    def query_bbox(self, bbox: BBox) -> list[Trajectory]:
        """Trajectories whose bounding box intersects ``bbox``.

        Bounding-box intersection over-approximates actual overlap; callers
        needing exact containment filter the samples themselves.
        """
        return [t for t in self.all() if t.bbox().intersects(bbox)]

    def query_domain(self, domain: Domain) -> list[Trajectory]:
        """Trajectories of entities in one domain."""
        return [t for t in self.all() if t.domain is domain]

"""Fleet-level traffic generators for the maritime and aviation domains.

A generator builds a fleet of entities, assigns each a route from the
world, simulates ground truth and applies the sensor/delivery models,
returning a :class:`TrafficSample` with everything an experiment needs:
truth, noisy streams, entity metadata and the world itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.recordbatch import RecordBatch
from repro.model.entities import Aircraft, EntityRegistry, Vessel
from repro.model.points import Domain
from repro.model.reports import PositionReport, ReportSource
from repro.model.trajectory import Trajectory
from repro.sources.kinematics import FlightProfile, simulate_route
from repro.sources.noise import DeliveryModel, SensorModel
from repro.sources.world import AviationWorld, MaritimeWorld, RouteSpec


@dataclass
class TrafficSample:
    """Everything produced by one traffic generation run.

    Attributes:
        domain: Which domain the sample belongs to.
        registry: Static entity metadata.
        truth: Ground-truth trajectory per entity id.
        reports: All noisy reports, sorted by event time.
        deliveries: ``(delivery_time, report)`` pairs sorted by delivery
            time (what a live system would actually see).
        world: The geographic world used.
        routes_by_entity: Which route each entity followed (forecast ground
            truth for pattern-based prediction experiments).
    """

    domain: Domain
    registry: EntityRegistry
    truth: dict[str, Trajectory]
    reports: list[PositionReport]
    deliveries: list[tuple[float, PositionReport]]
    world: object
    routes_by_entity: dict[str, str] = field(default_factory=dict)

    @property
    def n_entities(self) -> int:
        """Number of entities in the sample."""
        return len(self.truth)

    def record_batches(self, batch_size: int = 256) -> "Iterator[RecordBatch]":
        """Native columnar emission of :attr:`reports`.

        Yields consecutive :class:`~repro.core.recordbatch.RecordBatch`
        slices of the event-time-ordered report stream, offsets running
        from zero — ready to feed straight into
        ``MobilityPipeline.run(sample.record_batches())``.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        reports = self.reports
        for start in range(0, len(reports), batch_size):
            yield RecordBatch.from_reports(
                reports[start : start + batch_size], offset=start
            )


_VESSEL_TYPES = ("cargo", "tanker", "passenger", "fishing")
_AIRCRAFT_TYPES = ("A320", "B738", "A332", "E190")


class MaritimeTrafficGenerator:
    """Generates an AIS-like vessel traffic sample over a maritime world."""

    def __init__(
        self,
        world: MaritimeWorld | None = None,
        sensor: SensorModel | None = None,
        delivery: DeliveryModel | None = None,
        seed: int = 7,
        multi_leg: bool = False,
    ) -> None:
        """Args:
            multi_leg: Assign vessels multi-port voyages routed over the
                world's waypoint graph (PIR → MYK → CHI style) instead of
                single point-to-point lanes — richer structure for the
                pattern-learning analytics.
        """
        self.world = world or MaritimeWorld.aegean()
        self.sensor = sensor or SensorModel(report_period_s=10.0, gps_sigma_m=15.0)
        self.delivery = delivery or DeliveryModel()
        self.multi_leg = multi_leg
        self._network = None
        if multi_leg:
            from repro.sources.routing import RouteNetwork

            self._network = RouteNetwork.from_world(self.world)
        self._rng = np.random.default_rng(seed)

    def _pick_route(self) -> RouteSpec:
        if self._network is not None:
            return self._network.random_voyage(self._rng, min_legs=2)
        return self.world.routes[int(self._rng.integers(len(self.world.routes)))]

    def generate(
        self,
        n_vessels: int = 20,
        start_time: float = 0.0,
        max_duration_s: float | None = 4 * 3600.0,
        dt_s: float = 5.0,
        departure_spread_s: float = 1800.0,
    ) -> TrafficSample:
        """Generate a fleet sample.

        Args:
            n_vessels: Fleet size.
            start_time: Earliest departure.
            max_duration_s: Trajectories are truncated to this duration so
                dense fleets stay affordable (``None`` keeps full voyages).
            dt_s: Ground-truth integration step.
            departure_spread_s: Departures are uniform in
                ``[start_time, start_time + spread]``.
        """
        registry = EntityRegistry()
        truth: dict[str, Trajectory] = {}
        all_reports: list[PositionReport] = []
        routes_by_entity: dict[str, str] = {}

        for i in range(n_vessels):
            entity_id = f"V{i:04d}"
            vtype = _VESSEL_TYPES[int(self._rng.integers(len(_VESSEL_TYPES)))]
            registry.add(
                Vessel(
                    entity_id=entity_id,
                    name=f"MV {entity_id}",
                    vessel_type=vtype,
                    length_m=float(self._rng.uniform(40, 300)),
                )
            )
            route = self._pick_route()
            routes_by_entity[entity_id] = route.name
            depart = start_time + float(self._rng.uniform(0, departure_spread_s))
            trajectory = simulate_route(
                entity_id,
                route,
                start_time=depart,
                dt_s=dt_s,
                turn_rate_deg_s=0.8,
                speed_jitter=0.05,
                rng=self._rng,
            )
            if max_duration_s is not None and trajectory.duration > max_duration_s:
                trajectory = trajectory.slice_time(depart, depart + max_duration_s)
            truth[entity_id] = trajectory
            all_reports.extend(
                self.sensor.observe(trajectory, source=ReportSource.AIS_TERRESTRIAL, rng=self._rng)
            )

        all_reports.sort(key=lambda r: r.t)
        deliveries = self.delivery.deliver(all_reports, rng=self._rng)
        return TrafficSample(
            domain=Domain.MARITIME,
            registry=registry,
            truth=truth,
            reports=all_reports,
            deliveries=deliveries,
            world=self.world,
            routes_by_entity=routes_by_entity,
        )


class AviationTrafficGenerator:
    """Generates an ADS-B-like flight traffic sample over an airspace."""

    def __init__(
        self,
        world: AviationWorld | None = None,
        sensor: SensorModel | None = None,
        delivery: DeliveryModel | None = None,
        seed: int = 11,
    ) -> None:
        self.world = world or AviationWorld.core_europe()
        self.sensor = sensor or SensorModel(
            report_period_s=4.0, gps_sigma_m=25.0, alt_sigma_m=12.0
        )
        self.delivery = delivery or DeliveryModel()
        self._rng = np.random.default_rng(seed)

    def generate(
        self,
        n_flights: int = 20,
        start_time: float = 0.0,
        dt_s: float = 5.0,
        departure_spread_s: float = 1800.0,
    ) -> TrafficSample:
        """Generate a flight sample with climb/cruise/descent profiles."""
        registry = EntityRegistry()
        truth: dict[str, Trajectory] = {}
        all_reports: list[PositionReport] = []
        routes_by_entity: dict[str, str] = {}

        for i in range(n_flights):
            entity_id = f"F{i:04d}"
            atype = _AIRCRAFT_TYPES[int(self._rng.integers(len(_AIRCRAFT_TYPES)))]
            cruise = float(self._rng.uniform(9_000, 12_000))
            registry.add(
                Aircraft(
                    entity_id=entity_id,
                    name=f"FLT{i:04d}",
                    aircraft_type=atype,
                    cruise_alt_m=cruise,
                )
            )
            route = self.world.routes[int(self._rng.integers(len(self.world.routes)))]
            routes_by_entity[entity_id] = route.name
            depart = start_time + float(self._rng.uniform(0, departure_spread_s))
            profile = FlightProfile(cruise_alt_m=cruise)
            trajectory = simulate_route(
                entity_id,
                route,
                start_time=depart,
                dt_s=dt_s,
                turn_rate_deg_s=3.0,
                speed_jitter=0.03,
                profile=profile,
                rng=self._rng,
            )
            truth[entity_id] = trajectory
            all_reports.extend(
                self.sensor.observe(trajectory, source=ReportSource.ADSB, rng=self._rng)
            )

        all_reports.sort(key=lambda r: r.t)
        deliveries = self.delivery.deliver(all_reports, rng=self._rng)
        return TrafficSample(
            domain=Domain.AVIATION,
            registry=registry,
            truth=truth,
            reports=all_reports,
            deliveries=deliveries,
            world=self.world,
            routes_by_entity=routes_by_entity,
        )

"""Synthetic heterogeneous data sources (streaming and archival).

The paper's data layer ingests "multiple streaming as well as archival data"
from real surveillance providers. Those feeds are proprietary, so this
package provides faithful synthetic equivalents with known ground truth:

- :mod:`repro.sources.world` — geographic worlds: ports, shipping lanes and
  maritime zones; airports, airways and ATC sectors.
- :mod:`repro.sources.kinematics` — waypoint-following motion simulation
  (turn-rate limited, with climb/descent profiles for aviation).
- :mod:`repro.sources.noise` — sensor models: report-interval jitter, GPS
  noise, dropouts, long communication gaps, duplicates, out-of-order
  delivery.
- :mod:`repro.sources.generators` — fleet-level traffic generators that
  produce ground-truth trajectories plus the noisy report streams.
- :mod:`repro.sources.archive` — the data-at-rest store of historical
  trajectories.
- :mod:`repro.sources.weather` — a synthetic weather-grid source used by
  link discovery.
- :mod:`repro.sources.scenarios` — scripted encounter/anomaly scenarios
  with ground-truth event labels for CER evaluation.
"""

from repro.sources.world import MaritimeWorld, AviationWorld, RouteSpec
from repro.sources.routing import RouteNetwork
from repro.sources.kinematics import simulate_route, FlightProfile
from repro.sources.noise import SensorModel, DeliveryModel
from repro.sources.generators import (
    MaritimeTrafficGenerator,
    AviationTrafficGenerator,
    TrafficSample,
)
from repro.sources.archive import ArchivalStore
from repro.sources.weather import WeatherGridSource, WeatherCell
from repro.sources.formats import (
    decode_ais_csv,
    encode_ais_csv,
    decode_adsb_json,
    encode_adsb_json,
)
from repro.sources.scenarios import (
    ScriptedScenario,
    collision_course_scenario,
    loitering_scenario,
    zone_intrusion_scenario,
    rendezvous_scenario,
    aviation_near_miss_scenario,
)

__all__ = [
    "MaritimeWorld",
    "AviationWorld",
    "RouteSpec",
    "RouteNetwork",
    "simulate_route",
    "FlightProfile",
    "SensorModel",
    "DeliveryModel",
    "MaritimeTrafficGenerator",
    "AviationTrafficGenerator",
    "TrafficSample",
    "ArchivalStore",
    "WeatherGridSource",
    "WeatherCell",
    "decode_ais_csv",
    "encode_ais_csv",
    "decode_adsb_json",
    "encode_adsb_json",
    "ScriptedScenario",
    "collision_course_scenario",
    "loitering_scenario",
    "zone_intrusion_scenario",
    "rendezvous_scenario",
    "aviation_near_miss_scenario",
]

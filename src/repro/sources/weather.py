"""Synthetic weather-grid source.

Weather is one of the heterogeneous archival sources the datAcron
integration layer interlinks with positions ("enrichment" of trajectories
with meteorological context). The synthetic grid carries smoothly varying
wind speed/direction and wave height per cell and time slot, so link
discovery has a realistic second dataset with known associations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid


@dataclass(frozen=True, slots=True)
class WeatherCell:
    """One weather observation: a grid cell at a time slot.

    Attributes:
        cell_id: Flat cell id in the weather grid.
        t_start: Slot start time (inclusive), seconds.
        t_end: Slot end time (exclusive).
        bbox: Geographic extent of the cell.
        wind_speed_mps: Mean wind speed in the cell over the slot.
        wind_dir_deg: Mean wind direction (meteorological).
        wave_height_m: Significant wave height.
    """

    cell_id: int
    t_start: float
    t_end: float
    bbox: BBox
    wind_speed_mps: float
    wind_dir_deg: float
    wave_height_m: float


class WeatherGridSource:
    """Generates and serves synthetic weather observations.

    Fields are produced with low-frequency sinusoidal structure plus noise
    so neighbouring cells/slots correlate (as real numerical weather data
    does), which matters for visual analytics and sanity of enrichment.
    """

    def __init__(
        self,
        bbox: BBox,
        nx: int = 12,
        ny: int = 12,
        slot_s: float = 3600.0,
        seed: int = 23,
    ) -> None:
        if slot_s <= 0:
            raise ValueError("slot_s must be positive")
        self.grid = GeoGrid(bbox=bbox, nx=nx, ny=ny)
        self.slot_s = slot_s
        self._rng = np.random.default_rng(seed)
        self._phase = float(self._rng.uniform(0, 2 * np.pi))

    def cells_for_interval(self, t_from: float, t_to: float) -> list[WeatherCell]:
        """All weather cells covering the closed time interval."""
        first_slot = int(t_from // self.slot_s)
        last_slot = int(t_to // self.slot_s)
        out: list[WeatherCell] = []
        for slot in range(first_slot, last_slot + 1):
            out.extend(self._slot_cells(slot))
        return out

    def observation_at(self, lon: float, lat: float, t: float) -> WeatherCell:
        """The weather cell containing a position at a time."""
        ix, iy = self.grid.cell_of(lon, lat)
        slot = int(t // self.slot_s)
        return self._make_cell(ix, iy, slot)

    def _slot_cells(self, slot: int) -> list[WeatherCell]:
        return [
            self._make_cell(ix, iy, slot)
            for iy in range(self.grid.ny)
            for ix in range(self.grid.nx)
        ]

    def _make_cell(self, ix: int, iy: int, slot: int) -> WeatherCell:
        """Deterministic synthetic weather for a (cell, slot) pair."""
        # Smooth spatial structure + diurnal-ish temporal modulation. The
        # hash-seeded jitter makes cells distinct but reproducible.
        x = ix / max(1, self.grid.nx - 1)
        y = iy / max(1, self.grid.ny - 1)
        tt = slot * 0.35 + self._phase
        base_wind = 8.0 + 5.0 * np.sin(2 * np.pi * x + tt) * np.cos(2 * np.pi * y)
        jitter = self._cell_jitter(ix, iy, slot)
        wind = max(0.0, float(base_wind + 1.5 * jitter))
        direction = float((140.0 + 120.0 * np.sin(tt + x * 3.0) + 10.0 * jitter) % 360.0)
        wave = max(0.0, float(0.25 * wind - 0.8 + 0.3 * jitter))
        return WeatherCell(
            cell_id=iy * self.grid.nx + ix,
            t_start=slot * self.slot_s,
            t_end=(slot + 1) * self.slot_s,
            bbox=self.grid.cell_bbox(ix, iy),
            wind_speed_mps=wind,
            wind_dir_deg=direction,
            wave_height_m=wave,
        )

    @staticmethod
    def _cell_jitter(ix: int, iy: int, slot: int) -> float:
        """Deterministic pseudo-noise in [-1, 1] per (cell, slot)."""
        h = (ix * 73_856_093) ^ (iy * 19_349_663) ^ (slot * 83_492_791)
        return ((h % 10_000) / 5_000.0) - 1.0

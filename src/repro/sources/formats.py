"""Wire formats: the heterogeneous raw encodings providers actually send.

The transformation layer's job is to convert "data from disparate data
sources ... to a common representation". Disparate starts at the wire:
AIS aggregators ship CSV-ish lines, ADS-B feeds ship JSON. This module
implements both directions for two realistic formats so the ingestion
path can be exercised end to end:

- :func:`encode_ais_csv` / :func:`decode_ais_csv` — a CSV line per
  report: ``mmsi,unix_ts,lat,lon,sog_knots,cog_deg,source``
  (note the lat-before-lon and knots conventions of real AIS feeds).
- :func:`encode_adsb_json` / :func:`decode_adsb_json` — a JSON object
  per report with ICAO-style fields (``icao24``, ``baro_altitude`` in
  feet, ``velocity`` in knots, ``vertical_rate`` in ft/min).

Malformed lines raise :class:`FormatError` with the offending payload;
batch decoders count and skip them, because a production feed always
contains garbage.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator

from repro.geo.geodesy import knots_to_mps, mps_to_knots
from repro.model.points import Domain
from repro.model.reports import PositionReport, ReportSource

_FT_PER_M = 3.280839895
_FPM_PER_MPS = 196.8503937


class FormatError(ValueError):
    """Raised when a wire payload cannot be decoded."""


# -- AIS-like CSV -------------------------------------------------------------

AIS_CSV_HEADER = "mmsi,unix_ts,lat,lon,sog_knots,cog_deg,source"


def encode_ais_csv(report: PositionReport) -> str:
    """One report as an AIS-aggregator-style CSV line."""
    sog = "" if report.speed is None else f"{mps_to_knots(report.speed):.2f}"
    cog = "" if report.heading is None else f"{report.heading:.1f}"
    return (
        f"{report.entity_id},{report.t:.3f},{report.lat:.6f},{report.lon:.6f},"
        f"{sog},{cog},{report.source.value}"
    )


def decode_ais_csv(line: str) -> PositionReport:
    """Parse one AIS CSV line (see :data:`AIS_CSV_HEADER`)."""
    parts = line.strip().split(",")
    if len(parts) != 7:
        raise FormatError(f"expected 7 fields, got {len(parts)}: {line!r}")
    mmsi, ts, lat, lon, sog, cog, source = parts
    if not mmsi:
        raise FormatError(f"empty mmsi: {line!r}")
    try:
        return PositionReport(
            entity_id=mmsi,
            t=float(ts),
            lat=float(lat),
            lon=float(lon),
            speed=knots_to_mps(float(sog)) if sog else None,
            heading=float(cog) % 360.0 if cog else None,
            source=ReportSource(source) if source else ReportSource.AIS_TERRESTRIAL,
            domain=Domain.MARITIME,
        )
    except (ValueError, KeyError) as error:
        raise FormatError(f"cannot decode AIS line {line!r}: {error}") from error


def decode_ais_csv_batch(
    lines: Iterable[str],
) -> tuple[list[PositionReport], int]:
    """Decode many lines, skipping (and counting) malformed ones.

    Header lines and blank lines are skipped silently.
    """
    reports: list[PositionReport] = []
    bad = 0
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped == AIS_CSV_HEADER:
            continue
        try:
            reports.append(decode_ais_csv(stripped))
        except FormatError:
            bad += 1
    return (reports, bad)


# -- ADS-B-like JSON ------------------------------------------------------------


def encode_adsb_json(report: PositionReport) -> str:
    """One report as an ADS-B-feed-style JSON object."""
    payload = {
        "icao24": report.entity_id,
        "time": report.t,
        "lat": report.lat,
        "lon": report.lon,
        "baro_altitude_ft": None if report.alt is None else report.alt * _FT_PER_M,
        "velocity_kt": None if report.speed is None else mps_to_knots(report.speed),
        "true_track": report.heading,
        "vertical_rate_fpm": (
            None if report.vertical_rate is None
            else report.vertical_rate * _FPM_PER_MPS
        ),
    }
    return json.dumps(payload, separators=(",", ":"))


def decode_adsb_json(line: str) -> PositionReport:
    """Parse one ADS-B JSON object back into a report."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise FormatError(f"invalid JSON: {line!r}") from error
    if not isinstance(payload, dict):
        raise FormatError(f"expected a JSON object: {line!r}")
    try:
        icao = str(payload["icao24"])
        if not icao:
            raise KeyError("icao24")
        alt_ft = payload.get("baro_altitude_ft")
        velocity = payload.get("velocity_kt")
        vrate = payload.get("vertical_rate_fpm")
        heading = payload.get("true_track")
        return PositionReport(
            entity_id=icao,
            t=float(payload["time"]),
            lat=float(payload["lat"]),
            lon=float(payload["lon"]),
            alt=None if alt_ft is None else float(alt_ft) / _FT_PER_M,
            speed=None if velocity is None else knots_to_mps(float(velocity)),
            heading=None if heading is None else float(heading) % 360.0,
            vertical_rate=None if vrate is None else float(vrate) / _FPM_PER_MPS,
            source=ReportSource.ADSB,
            domain=Domain.AVIATION,
        )
    except (KeyError, TypeError, ValueError) as error:
        raise FormatError(f"cannot decode ADS-B object {line!r}: {error}") from error


def decode_adsb_json_batch(
    lines: Iterable[str],
) -> tuple[list[PositionReport], int]:
    """Decode many JSON lines, skipping (and counting) malformed ones."""
    reports: list[PositionReport] = []
    bad = 0
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        try:
            reports.append(decode_adsb_json(stripped))
        except FormatError:
            bad += 1
    return (reports, bad)


def dump_ais_csv(reports: Iterable[PositionReport]) -> Iterator[str]:
    """Header + one CSV line per report (file-writing helper)."""
    yield AIS_CSV_HEADER
    for report in reports:
        yield encode_ais_csv(report)

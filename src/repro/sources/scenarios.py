"""Scripted scenarios with ground-truth event labels.

Each scenario constructs hand-designed trajectories that *provably* contain
(or avoid) a target behaviour, so the complex event recognition layer can be
scored with exact precision/recall (experiment E6). The expected events
carry approximate time windows; a detection within the window counts as a
true positive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hashing import stable_hash
from repro.geo.geodesy import destination_point
from repro.geo.polygon import Polygon
from repro.model.points import Domain
from repro.model.reports import PositionReport, ReportSource
from repro.model.trajectory import Trajectory
from repro.sources.noise import SensorModel
from repro.sources.world import RouteSpec
from repro.sources.kinematics import simulate_route


@dataclass(frozen=True, slots=True)
class ExpectedEvent:
    """Ground-truth label: an event the recognizer must find.

    Attributes:
        event_type: Event type the CER engine should report.
        entity_ids: Participating entities (order-insensitive for scoring).
        t_from: Earliest acceptable detection time.
        t_to: Latest acceptable detection time.
    """

    event_type: str
    entity_ids: tuple[str, ...]
    t_from: float
    t_to: float


@dataclass
class ScriptedScenario:
    """A scenario bundle: trajectories, streams, zones and labels."""

    name: str
    domain: Domain
    truth: dict[str, Trajectory]
    reports: list[PositionReport]
    zones: list[Polygon] = field(default_factory=list)
    expected: list[ExpectedEvent] = field(default_factory=list)


def _observe_all(
    truth: dict[str, Trajectory],
    sensor: SensorModel,
    seed: int,
) -> list[PositionReport]:
    rng = np.random.default_rng(seed)
    reports: list[PositionReport] = []
    for trajectory in truth.values():
        reports.extend(
            sensor.observe(trajectory, source=ReportSource.AIS_TERRESTRIAL, rng=rng)
        )
    reports.sort(key=lambda r: r.t)
    return reports


def collision_course_scenario(
    separation_km: float = 18.0,
    speed_mps: float = 8.0,
    duration_s: float = 2400.0,
    seed: int = 3,
) -> ScriptedScenario:
    """Two vessels head straight at each other along one parallel.

    They start ``separation_km`` apart on the same latitude, sailing
    east/west toward each other; CPA → ~0 at ``separation / (2 * speed)``.
    """
    lat = 37.2
    lon_mid = 24.8
    half = separation_km * 500.0  # metres each side of the midpoint
    lon_a, __ = destination_point(lon_mid, lat, 270.0, half)
    lon_b, __ = destination_point(lon_mid, lat, 90.0, half)

    route_a = RouteSpec("A->B", ((lon_a, lat), (lon_b, lat)), speed_mps)
    route_b = RouteSpec("B->A", ((lon_b, lat), (lon_a, lat)), speed_mps)
    truth = {
        "CC01": simulate_route("CC01", route_a, dt_s=5.0, arrival_radius_m=100.0),
        "CC02": simulate_route("CC02", route_b, dt_s=5.0, arrival_radius_m=100.0),
    }
    truth = {k: v.slice_time(0.0, duration_s) for k, v in truth.items()}
    t_meet = (separation_km * 1000.0) / (2.0 * speed_mps)
    expected = [
        ExpectedEvent(
            event_type="collision_risk",
            entity_ids=("CC01", "CC02"),
            # The risk is detectable well before the meeting point.
            t_from=max(0.0, t_meet - 1200.0),
            t_to=t_meet + 120.0,
        )
    ]
    sensor = SensorModel(report_period_s=10.0, gps_sigma_m=10.0, dropout_prob=0.0)
    return ScriptedScenario(
        name="collision_course",
        domain=Domain.MARITIME,
        truth=truth,
        reports=_observe_all(truth, sensor, seed),
        expected=expected,
    )


def loitering_scenario(
    loiter_duration_s: float = 1800.0,
    seed: int = 5,
) -> ScriptedScenario:
    """One vessel transits, then loiters (drifts slowly) in a small area.

    Phase 1: normal transit at 8 m/s for 20 minutes. Phase 2: drift at
    0.4 m/s in a tight circle for ``loiter_duration_s``. Phase 3: resume.
    """
    rng = np.random.default_rng(seed)
    t, lon, lat = 0.0, 24.0, 37.0
    times, lons, lats = [t], [lon], [lat]
    # Phase 1: transit east at 8 m/s.
    transit_end = 1200.0
    while t < transit_end:
        t += 10.0
        lon, lat = destination_point(lon, lat, 90.0, 80.0)
        times.append(t)
        lons.append(lon)
        lats.append(lat)
    loiter_start = t
    # Phase 2: slow drift with a random walk in heading.
    heading = 0.0
    while t < loiter_start + loiter_duration_s:
        t += 10.0
        heading = (heading + float(rng.uniform(-60, 60))) % 360.0
        lon, lat = destination_point(lon, lat, heading, 4.0)
        times.append(t)
        lons.append(lon)
        lats.append(lat)
    loiter_end = t
    # Phase 3: resume transit.
    while t < loiter_end + 1200.0:
        t += 10.0
        lon, lat = destination_point(lon, lat, 90.0, 80.0)
        times.append(t)
        lons.append(lon)
        lats.append(lat)

    truth = {"LT01": Trajectory("LT01", times, lons, lats, domain=Domain.MARITIME)}
    expected = [
        ExpectedEvent(
            event_type="loitering",
            entity_ids=("LT01",),
            t_from=loiter_start + 120.0,
            t_to=loiter_end + 300.0,
        )
    ]
    sensor = SensorModel(report_period_s=10.0, gps_sigma_m=8.0, dropout_prob=0.0)
    return ScriptedScenario(
        name="loitering",
        domain=Domain.MARITIME,
        truth=truth,
        reports=_observe_all(truth, sensor, seed),
        expected=expected,
    )


def zone_intrusion_scenario(seed: int = 9) -> ScriptedScenario:
    """A vessel sails straight through a protected zone.

    The zone is a 0.2° square centred on the vessel's path; entry and exit
    times follow from the geometry.
    """
    zone = Polygon(
        "protected_zone",
        ((24.4, 36.95), (24.6, 36.95), (24.6, 37.15), (24.4, 37.15)),
    )
    route = RouteSpec("W->E", ((24.0, 37.05), (25.0, 37.05)), speed_mps=10.0)
    trajectory = simulate_route("ZI01", route, dt_s=5.0)
    truth = {"ZI01": trajectory}
    # Find ground-truth entry time by scanning the truth samples.
    entry_t = exit_t = None
    inside_prev = False
    for point in trajectory:
        inside = zone.contains(point.lon, point.lat)
        if inside and not inside_prev:
            entry_t = point.t
        if not inside and inside_prev:
            exit_t = point.t
        inside_prev = inside
    if entry_t is None:
        raise RuntimeError("scenario bug: vessel never entered the zone")
    expected = [
        ExpectedEvent(
            event_type="zone_entry",
            entity_ids=("ZI01",),
            t_from=entry_t - 60.0,
            t_to=entry_t + 120.0,
        ),
        ExpectedEvent(
            event_type="zone_exit",
            entity_ids=("ZI01",),
            t_from=(exit_t or entry_t) - 60.0,
            t_to=(exit_t or trajectory.end_time) + 120.0,
        ),
    ]
    sensor = SensorModel(report_period_s=10.0, gps_sigma_m=8.0, dropout_prob=0.0)
    return ScriptedScenario(
        name="zone_intrusion",
        domain=Domain.MARITIME,
        truth=truth,
        reports=_observe_all(truth, sensor, seed),
        zones=[zone],
        expected=expected,
    )


def aviation_near_miss_scenario(
    vertical_separation_m: float = 0.0,
    seed: int = 17,
) -> ScriptedScenario:
    """Two aircraft converge on the same point at the same flight level;
    a third crosses the same point safely 600 m *below* everyone.

    With ``vertical_separation_m`` = 0 the converging pair conflicts
    (expected ``collision_risk``); raising it above the alert threshold
    separates the pair vertically and turns the scenario into a negative
    control (the third aircraft stays 600 m under the lowest of the pair
    either way).
    """
    cross_lon, cross_lat = 10.0, 46.0
    speed = 220.0  # m/s
    approach_m = 150_000.0

    def straight_flight(entity_id: str, bearing_in: float, alt: float) -> Trajectory:
        start_lon, start_lat = destination_point(
            cross_lon, cross_lat, (bearing_in + 180.0) % 360.0, approach_m
        )
        end_lon, end_lat = destination_point(cross_lon, cross_lat, bearing_in, approach_m)
        route = RouteSpec(
            f"{entity_id}-leg", ((start_lon, start_lat), (end_lon, end_lat)), speed
        )
        track = simulate_route(
            entity_id, route, dt_s=5.0, turn_rate_deg_s=3.0, arrival_radius_m=200.0
        )
        alts = np.full(len(track), alt)
        return Trajectory(
            entity_id, track.t, track.lon, track.lat, alts, domain=Domain.AVIATION
        )

    conflict_alt = 10_000.0
    truth = {
        "NM01": straight_flight("NM01", 90.0, conflict_alt),
        "NM02": straight_flight("NM02", 0.0, conflict_alt + vertical_separation_m),
        "NM03": straight_flight("NM03", 45.0, conflict_alt - 600.0),
    }
    t_cross = approach_m / speed
    expected = []
    if vertical_separation_m < 300.0:
        expected.append(
            ExpectedEvent(
                event_type="collision_risk",
                entity_ids=("NM01", "NM02"),
                t_from=max(0.0, t_cross - 1200.0),
                t_to=t_cross + 60.0,
            )
        )
    sensor = SensorModel(
        report_period_s=4.0, gps_sigma_m=20.0, alt_sigma_m=8.0, dropout_prob=0.0
    )
    rng = np.random.default_rng(seed)
    reports: list[PositionReport] = []
    for trajectory in truth.values():
        reports.extend(sensor.observe(trajectory, source=ReportSource.ADSB, rng=rng))
    reports.sort(key=lambda r: r.t)
    return ScriptedScenario(
        name="aviation_near_miss",
        domain=Domain.AVIATION,
        truth=truth,
        reports=reports,
        expected=expected,
    )


def rendezvous_scenario(seed: int = 13) -> ScriptedScenario:
    """Two vessels meet mid-sea, stop together, then part ways.

    The classic transshipment signature: both entities slow to near-zero
    speed within a few hundred metres of each other for ~15 minutes.
    """
    meet_lon, meet_lat = 25.0, 36.8
    approach_m = 12_000.0
    lon_a, lat_a = destination_point(meet_lon, meet_lat, 225.0, approach_m)
    lon_b, lat_b = destination_point(meet_lon, meet_lat, 45.0, approach_m)

    def build(entity_id: str, start: tuple[float, float], bearing_in: float) -> Trajectory:
        t, (lon, lat) = 0.0, start
        times, lons, lats = [t], [lon], [lat]
        # Approach at 7 m/s until within 150 m of the meeting point.
        from repro.geo.geodesy import haversine_m, initial_bearing_deg

        while haversine_m(lon, lat, meet_lon, meet_lat) > 150.0:
            t += 10.0
            bearing = initial_bearing_deg(lon, lat, meet_lon, meet_lat)
            lon, lat = destination_point(lon, lat, bearing, 70.0)
            times.append(t)
            lons.append(lon)
            lats.append(lat)
        hold_until = t + 900.0
        rng = np.random.default_rng(seed + stable_hash(entity_id) % 100)
        while t < hold_until:
            t += 10.0
            lon, lat = destination_point(lon, lat, float(rng.uniform(0, 360)), 1.5)
            times.append(t)
            lons.append(lon)
            lats.append(lat)
        # Depart on the reciprocal of the arrival bearing.
        for __ in range(90):
            t += 10.0
            lon, lat = destination_point(lon, lat, (bearing_in + 180.0) % 360.0, 70.0)
            times.append(t)
            lons.append(lon)
            lats.append(lat)
        return Trajectory(entity_id, times, lons, lats, domain=Domain.MARITIME)

    truth = {
        "RV01": build("RV01", (lon_a, lat_a), 45.0),
        "RV02": build("RV02", (lon_b, lat_b), 225.0),
    }
    arrive = approach_m / 7.0  # both approach at effectively 7 m/s
    expected = [
        ExpectedEvent(
            event_type="rendezvous",
            entity_ids=("RV01", "RV02"),
            t_from=arrive - 60.0,
            t_to=arrive + 1500.0,
        )
    ]
    sensor = SensorModel(report_period_s=10.0, gps_sigma_m=8.0, dropout_prob=0.0)
    return ScriptedScenario(
        name="rendezvous",
        domain=Domain.MARITIME,
        truth=truth,
        reports=_observe_all(truth, sensor, seed),
        expected=expected,
    )

"""Sensor and delivery models turning ground truth into realistic streams.

Two orthogonal models:

- :class:`SensorModel` — what the sensor reports: sampling period (with
  jitter), GPS position noise, speed/heading measurement noise, dropouts
  and long communication gaps.
- :class:`DeliveryModel` — how the records reach the system: network delay,
  out-of-order arrival, duplication. Delivery order is what the streaming
  layer sees; event times stay truthful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.geodesy import destination_point, haversine_m, initial_bearing_deg
from repro.model.points import Domain
from repro.model.reports import PositionReport, ReportSource
from repro.model.trajectory import Trajectory


@dataclass(frozen=True, slots=True)
class SensorModel:
    """Parameters of the measurement process.

    Attributes:
        report_period_s: Nominal time between reports.
        period_jitter: Relative jitter on the period (0.2 → ±20% uniform).
        gps_sigma_m: Standard deviation of the position error, metres.
        speed_sigma_mps: Stddev of speed-over-ground measurement noise.
        heading_sigma_deg: Stddev of course measurement noise.
        alt_sigma_m: Stddev of altitude noise (3D only).
        dropout_prob: Probability that any single report is lost.
        gap_prob_per_report: Probability a long communication gap starts at
            a given report.
        gap_duration_s: Mean duration of a long gap (exponential).
    """

    report_period_s: float = 10.0
    period_jitter: float = 0.1
    gps_sigma_m: float = 15.0
    speed_sigma_mps: float = 0.3
    heading_sigma_deg: float = 2.0
    alt_sigma_m: float = 10.0
    dropout_prob: float = 0.02
    gap_prob_per_report: float = 0.0
    gap_duration_s: float = 600.0

    def __post_init__(self) -> None:
        if self.report_period_s <= 0:
            raise ValueError("report period must be positive")
        if not (0 <= self.dropout_prob < 1):
            raise ValueError("dropout_prob must be in [0, 1)")
        if not (0 <= self.gap_prob_per_report < 1):
            raise ValueError("gap_prob_per_report must be in [0, 1)")

    def observe(
        self,
        truth: Trajectory,
        source: ReportSource = ReportSource.SYNTHETIC,
        rng: np.random.Generator | None = None,
    ) -> list[PositionReport]:
        """Sample noisy reports from a ground-truth trajectory.

        Returns reports in event-time order (delivery reordering is the
        :class:`DeliveryModel`'s job).
        """
        rng = rng or np.random.default_rng(0)
        if len(truth) == 0:
            return []
        reports: list[PositionReport] = []
        t = truth.start_time
        end = truth.end_time
        gap_until = -np.inf
        while t <= end:
            period = self.report_period_s
            if self.period_jitter > 0:
                period *= 1.0 + self.period_jitter * float(rng.uniform(-1, 1))
            if t < gap_until or (self.dropout_prob > 0 and rng.random() < self.dropout_prob):
                t += period
                continue
            if self.gap_prob_per_report > 0 and rng.random() < self.gap_prob_per_report:
                gap_until = t + float(rng.exponential(self.gap_duration_s))
                t += period
                continue
            reports.append(self._measure(truth, t, source, rng))
            t += period
        return reports

    def _measure(
        self,
        truth: Trajectory,
        t: float,
        source: ReportSource,
        rng: np.random.Generator,
    ) -> PositionReport:
        """One noisy measurement of the trajectory at time ``t``."""
        pos = truth.at_time(t)
        # Position noise: displace by a Rayleigh-distributed distance.
        if self.gps_sigma_m > 0:
            bearing = float(rng.uniform(0, 360))
            offset = abs(float(rng.normal(0, self.gps_sigma_m)))
            lon, lat = destination_point(pos.lon, pos.lat, bearing, offset)
        else:
            lon, lat = pos.lon, pos.lat

        speed, heading = _true_kinematics(truth, t)
        if speed is not None and self.speed_sigma_mps > 0:
            speed = max(0.0, speed + float(rng.normal(0, self.speed_sigma_mps)))
        if heading is not None and self.heading_sigma_deg > 0:
            heading = (heading + float(rng.normal(0, self.heading_sigma_deg))) % 360.0

        alt = pos.alt
        if alt is not None and self.alt_sigma_m > 0:
            alt = alt + float(rng.normal(0, self.alt_sigma_m))

        domain = Domain.AVIATION if truth.is_3d else Domain.MARITIME
        return PositionReport(
            entity_id=truth.entity_id,
            t=t,
            lon=lon,
            lat=lat,
            alt=alt,
            speed=speed,
            heading=heading,
            source=source,
            domain=domain,
        )


def _true_kinematics(truth: Trajectory, t: float) -> tuple[float | None, float | None]:
    """Ground-truth speed (m/s) and heading (deg) around time ``t``."""
    if len(truth) < 2:
        return (None, None)
    half = 2.5  # seconds; small symmetric window around t
    p0 = truth.at_time(t - half)
    p1 = truth.at_time(t + half)
    dt = p1.t - p0.t
    if dt <= 0:
        return (0.0, None)
    dist = haversine_m(p0.lon, p0.lat, p1.lon, p1.lat)
    speed = dist / dt
    heading = initial_bearing_deg(p0.lon, p0.lat, p1.lon, p1.lat) if dist > 0.1 else None
    return (speed, heading)


@dataclass(frozen=True, slots=True)
class DeliveryModel:
    """Network-side effects: delay, reordering, duplication.

    Attributes:
        mean_delay_s: Mean delivery delay (exponential distribution).
        duplicate_prob: Probability a report is delivered twice.
    """

    mean_delay_s: float = 0.0
    duplicate_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_delay_s < 0:
            raise ValueError("mean_delay_s must be >= 0")
        if not (0 <= self.duplicate_prob < 1):
            raise ValueError("duplicate_prob must be in [0, 1)")

    def deliver(
        self,
        reports: list[PositionReport],
        rng: np.random.Generator | None = None,
    ) -> list[tuple[float, PositionReport]]:
        """Assign delivery times and return ``(delivery_time, report)``
        sorted by delivery time.

        With a positive ``mean_delay_s``, delivery order differs from event
        order — this is what exercises the watermarking path.
        """
        rng = rng or np.random.default_rng(0)
        out: list[tuple[float, PositionReport]] = []
        for report in reports:
            delay = float(rng.exponential(self.mean_delay_s)) if self.mean_delay_s > 0 else 0.0
            out.append((report.t + delay, report))
            if self.duplicate_prob > 0 and rng.random() < self.duplicate_prob:
                extra = float(rng.exponential(self.mean_delay_s + 1.0))
                out.append((report.t + delay + extra, report))
        out.sort(key=lambda pair: pair[0])
        return out

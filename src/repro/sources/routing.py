"""Route networks: multi-leg voyages over a waypoint graph.

The basic worlds ship fixed point-to-point lanes. Real traffic chains
legs: Piraeus → Mykonos → Chios in one voyage. This module lifts a
world's routes into a networkx graph of ports and waypoints and
generates multi-leg voyages as shortest paths between port pairs —
giving the pattern-learning layers (route clustering, Markov grids,
hot paths) the richer structure they exist for.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.geo.geodesy import haversine_m
from repro.sources.world import AviationWorld, MaritimeWorld, RouteSpec


@dataclass(frozen=True)
class RouteNetwork:
    """A waypoint graph over a world's ports/airports and lanes."""

    graph: nx.Graph
    terminals: tuple[str, ...]

    @classmethod
    def from_world(cls, world: MaritimeWorld | AviationWorld) -> "RouteNetwork":
        """Build the graph: nodes are positions, edges are lane segments.

        Ports/airports become named terminal nodes; intermediate
        waypoints become anonymous position nodes shared across lanes
        that pass through them. Edge weights are great-circle metres.
        """
        terminals = (
            world.ports if isinstance(world, MaritimeWorld) else world.airports
        )
        position_name = {pos: name for name, pos in terminals.items()}
        graph = nx.Graph()
        for name, pos in terminals.items():
            graph.add_node(name, pos=pos, terminal=True)

        def node_for(pos: tuple[float, float]) -> str:
            if pos in position_name:
                return position_name[pos]
            name = f"wp{pos[0]:.3f},{pos[1]:.3f}"
            if name not in graph:
                graph.add_node(name, pos=pos, terminal=False)
            return name

        for route in world.routes:
            for a, b in zip(route.waypoints, route.waypoints[1:]):
                node_a, node_b = node_for(a), node_for(b)
                weight = haversine_m(a[0], a[1], b[0], b[1])
                graph.add_edge(node_a, node_b, weight=weight, speed=route.speed_mps)
        return cls(graph=graph, terminals=tuple(sorted(terminals)))

    def shortest_route(
        self, origin: str, destination: str, name: str | None = None
    ) -> RouteSpec:
        """The shortest waypoint path between two terminals as a RouteSpec.

        Raises:
            nx.NetworkXNoPath: When the terminals are not connected.
            KeyError: When a terminal name is unknown.
        """
        if origin not in self.graph or destination not in self.graph:
            raise KeyError(f"unknown terminal: {origin!r} or {destination!r}")
        path = nx.shortest_path(self.graph, origin, destination, weight="weight")
        waypoints = tuple(self.graph.nodes[node]["pos"] for node in path)
        speeds = [
            self.graph.edges[a, b]["speed"] for a, b in zip(path, path[1:])
        ]
        speed = float(np.mean(speeds)) if speeds else 8.0
        return RouteSpec(
            name=name or f"{origin}->{destination}",
            waypoints=waypoints,
            speed_mps=speed,
        )

    def random_voyage(
        self,
        rng: np.random.Generator,
        min_legs: int = 2,
        max_attempts: int = 20,
    ) -> RouteSpec:
        """A multi-leg voyage through ``min_legs``+ distinct terminals.

        Chains shortest paths through randomly drawn intermediate
        terminals (e.g. PIR → MYK → CHI), skipping unreachable draws.
        """
        if min_legs < 1:
            raise ValueError("min_legs must be >= 1")
        for __ in range(max_attempts):
            stops = list(
                rng.choice(self.terminals, size=min_legs + 1, replace=False)
            )
            try:
                legs = [
                    self.shortest_route(a, b)
                    for a, b in zip(stops, stops[1:])
                ]
            except nx.NetworkXNoPath:
                continue
            waypoints: list[tuple[float, float]] = []
            for leg in legs:
                start = 1 if waypoints else 0  # avoid duplicating junctions
                waypoints.extend(leg.waypoints[start:])
            speed = float(np.mean([leg.speed_mps for leg in legs]))
            return RouteSpec(
                name="->".join(stops),
                waypoints=tuple(waypoints),
                speed_mps=speed,
            )
        raise RuntimeError("could not find a connected multi-leg voyage")

    def connectivity(self) -> float:
        """Fraction of terminal pairs with a path (sanity metric)."""
        terminals = list(self.terminals)
        total = reachable = 0
        for i, a in enumerate(terminals):
            for b in terminals[i + 1:]:
                total += 1
                if nx.has_path(self.graph, a, b):
                    reachable += 1
        return reachable / total if total else 1.0

"""Synthetic geographic worlds for the two target domains.

The maritime world models an Aegean-like sea area with ports, shipping
lanes between them and zones of interest; the aviation world models a
European-scale airspace with airports, airways and ATC sectors. Both give
the traffic generators realistic route structure — which is exactly what
pattern-based forecasting and hot-path analytics exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.bbox import BBox
from repro.geo.polygon import Polygon


@dataclass(frozen=True, slots=True)
class RouteSpec:
    """A named route: an ordered list of waypoints plus a nominal speed.

    Attributes:
        name: Route identifier, e.g. ``"PIR->HER"``.
        waypoints: ``(lon, lat)`` sequence from origin to destination.
        speed_mps: Nominal cruising speed over ground.
    """

    name: str
    waypoints: tuple[tuple[float, float], ...]
    speed_mps: float

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError(f"route {self.name!r} needs at least 2 waypoints")
        if self.speed_mps <= 0:
            raise ValueError("route speed must be positive")

    def reversed(self) -> RouteSpec:
        """The same route in the opposite direction."""
        origin, __, dest = self.name.partition("->")
        name = f"{dest}->{origin}" if dest else f"{self.name}(rev)"
        return RouteSpec(
            name=name, waypoints=tuple(reversed(self.waypoints)), speed_mps=self.speed_mps
        )


@dataclass
class MaritimeWorld:
    """An Aegean-like sea area: ports, lanes between them, zones of interest."""

    bbox: BBox = field(default_factory=lambda: BBox(22.5, 35.8, 27.5, 39.4))
    ports: dict[str, tuple[float, float]] = field(default_factory=dict)
    routes: list[RouteSpec] = field(default_factory=list)
    zones: list[Polygon] = field(default_factory=list)

    @classmethod
    def aegean(cls) -> MaritimeWorld:
        """The default world: 6 ports, bidirectional lanes, 3 zones."""
        ports = {
            "PIR": (23.62, 37.94),  # Piraeus
            "HER": (25.15, 35.35),  # Heraklion
            "RHO": (28.22, 36.45),  # Rhodes (just outside bbox: clamped uses)
            "THE": (22.94, 40.62),  # Thessaloniki-like, north
            "MYK": (25.33, 37.45),  # Mykonos
            "CHI": (26.14, 38.37),  # Chios
        }
        # Keep every port inside the bbox so grids cover all traffic.
        bbox = BBox(22.2, 34.9, 28.6, 41.0)
        routes = []
        speed_by_leg = {
            ("PIR", "HER"): 9.0,
            ("PIR", "MYK"): 11.0,
            ("PIR", "CHI"): 8.5,
            ("THE", "MYK"): 9.5,
            ("HER", "RHO"): 8.0,
            ("MYK", "CHI"): 10.0,
        }
        via = {
            ("PIR", "HER"): ((24.0, 37.3), (24.6, 36.3)),
            ("PIR", "MYK"): ((24.3, 37.6),),
            ("PIR", "CHI"): ((24.6, 37.9), (25.4, 38.2)),
            ("THE", "MYK"): ((24.2, 39.2), (24.9, 38.2)),
            ("HER", "RHO"): ((26.4, 35.7), (27.5, 36.0)),
            ("MYK", "CHI"): ((25.7, 37.9),),
        }
        for (a, b), speed in speed_by_leg.items():
            waypoints = (ports[a],) + via[(a, b)] + (ports[b],)
            route = RouteSpec(name=f"{a}->{b}", waypoints=waypoints, speed_mps=speed)
            routes.append(route)
            routes.append(route.reversed())
        zones = [
            Polygon(
                "natura_protected",
                ((24.8, 36.6), (25.5, 36.6), (25.5, 37.1), (24.8, 37.1)),
            ),
            Polygon(
                "anchorage_piraeus",
                ((23.45, 37.80), (23.75, 37.80), (23.75, 37.99), (23.45, 37.99)),
            ),
            Polygon(
                "traffic_separation",
                ((24.4, 37.4), (24.9, 37.4), (24.9, 37.75), (24.4, 37.75)),
            ),
        ]
        return cls(bbox=bbox, ports=ports, routes=routes, zones=zones)

    def zone(self, name: str) -> Polygon:
        """Look up a zone by name."""
        for zone in self.zones:
            if zone.name == name:
                return zone
        raise KeyError(f"no zone named {name!r}")


@dataclass
class AviationWorld:
    """A European-scale airspace: airports, airways and ATC sectors."""

    bbox: BBox = field(default_factory=lambda: BBox(-5.0, 36.0, 25.0, 55.0))
    airports: dict[str, tuple[float, float]] = field(default_factory=dict)
    routes: list[RouteSpec] = field(default_factory=list)
    sectors: list[Polygon] = field(default_factory=list)

    @classmethod
    def core_europe(cls) -> AviationWorld:
        """Default airspace: 6 airports, airways, a 3x3 sector tiling."""
        airports = {
            "ATH": (23.94, 37.94),
            "FRA": (8.57, 50.03),
            "CDG": (2.55, 49.01),
            "MAD": (-3.57, 40.47),
            "FCO": (12.24, 41.80),
            "VIE": (16.57, 48.11),
        }
        bbox = BBox(-5.0, 36.0, 25.0, 55.0)
        legs = {
            ("ATH", "FRA"): 230.0,
            ("ATH", "CDG"): 235.0,
            ("MAD", "VIE"): 228.0,
            ("CDG", "FCO"): 225.0,
            ("FRA", "MAD"): 232.0,
            ("FCO", "VIE"): 220.0,
        }
        via = {
            ("ATH", "FRA"): ((19.0, 42.0), (13.5, 46.5)),
            ("ATH", "CDG"): ((18.0, 41.5), (9.0, 45.8)),
            ("MAD", "VIE"): ((2.0, 43.0), (9.5, 45.8)),
            ("CDG", "FCO"): ((6.5, 45.8),),
            ("FRA", "MAD"): ((4.0, 47.0), (0.0, 43.5)),
            ("FCO", "VIE"): ((14.3, 45.2),),
        }
        routes = []
        for (a, b), speed in legs.items():
            waypoints = (airports[a],) + via[(a, b)] + (airports[b],)
            route = RouteSpec(name=f"{a}->{b}", waypoints=waypoints, speed_mps=speed)
            routes.append(route)
            routes.append(route.reversed())
        sectors = []
        xs = np.linspace(bbox.min_lon, bbox.max_lon, 4)
        ys = np.linspace(bbox.min_lat, bbox.max_lat, 4)
        for iy in range(3):
            for ix in range(3):
                sectors.append(
                    Polygon.rectangle(
                        f"sector_{ix}{iy}",
                        BBox(float(xs[ix]), float(ys[iy]), float(xs[ix + 1]), float(ys[iy + 1])),
                    )
                )
        return cls(bbox=bbox, airports=airports, routes=routes, sectors=sectors)

    def sector(self, name: str) -> Polygon:
        """Look up a sector by name."""
        for sector in self.sectors:
            if sector.name == name:
                return sector
        raise KeyError(f"no sector named {name!r}")

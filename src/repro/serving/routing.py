"""Partition-aware request routing for the serving tier.

Ingest shards records by entity key through
:class:`repro.runtime.sharding.ShardRouter`, so all state derived from
one entity — latest position, trajectory history, its RDF document —
lives on exactly one shard. The request router applies the *same* stable
CRC-32 routing to reads: an entity-scoped request (state, forecast,
trajectory) is planned onto the one shard that owns the entity, while
spatial and textual queries fan out over every shard and merge.

Keeping the read path and the write path on one router is what makes
the locality provable: the test suite asserts that the shard a request
lands on is the shard ingest routed the entity's records to, for any
entity id.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.sharding import ShardRouter

__all__ = ["RouteDecision", "RequestRouter"]


@dataclass(frozen=True, slots=True)
class RouteDecision:
    """Where one request executes.

    Attributes:
        kind: ``"entity"`` (single-shard, key-routed) or ``"fanout"``
            (every shard evaluates, results merge).
        shards: The shard indices the request touches, ascending.
    """

    kind: str
    shards: tuple[int, ...]

    @property
    def single(self) -> bool:
        """True when the request touches exactly one shard."""
        return len(self.shards) == 1


class RequestRouter:
    """Plans requests onto shards with the ingest-identical key hash."""

    def __init__(self, n_shards: int) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self._router: ShardRouter = ShardRouter(n_shards)

    @property
    def n_shards(self) -> int:
        return self._router.n_shards

    def shard_for_entity(self, entity_id: str) -> int:
        """The shard owning an entity's state (ingest-identical routing)."""
        return self._router.shard_of_key(entity_id)

    def all_shards(self) -> tuple[int, ...]:
        """Every shard index, ascending (the fan-out set)."""
        return tuple(range(self._router.n_shards))

    def plan(self, entity_id: str | None) -> RouteDecision:
        """Single-shard plan for an entity-scoped request, else fan-out."""
        if entity_id is not None:
            return RouteDecision(
                kind="entity", shards=(self.shard_for_entity(entity_id),)
            )
        return RouteDecision(kind="fanout", shards=self.all_shards())

"""JSON-over-HTTP serving endpoint on stdlib asyncio — no dependencies.

A deliberately small HTTP/1.1 implementation over
:func:`asyncio.start_server`: request-line + headers + Content-Length
body parsing, keep-alive connections, chunked transfer for the event
stream. FastAPI/uvicorn would be nicer, but the repo's hard rule is
stdlib + numpy only; the protocol surface here is small enough that a
direct implementation is clearer than a framework shim (and this is the
exact split the datAcron architecture expects: an always-on gateway in
front of the warm analytics state).

Routes (all responses JSON unless noted):

====================================  =======================================
``GET  /healthz``                     liveness probe
``GET  /metrics``                     Prometheus text of the registry
``GET  /stats``                       registry snapshot (JSON)
``POST /v1/query``                    body ``{"query": "<text>"}``
``GET  /v1/entities/<id>/state``      latest position of one entity
``GET  /v1/entities/<id>/forecast``   ``?horizon_s=600``
``GET  /v1/entities/<id>/trajectory`` stored (synopsis) trajectory
``POST /v1/range``                    body ``{"bbox": [...], "t_from", "t_to"}``
``POST /v1/ingest``                   body ``{"reports": [...]}``
``GET  /v1/events``                   ``?since=0&limit=100`` (cursor read)
``GET  /v1/events/stream``            ``?since=0`` chunked NDJSON stream
====================================  =======================================

Clients identify themselves with the ``X-Client-Id`` header (default
``anon``); the per-client admission policy sheds with real ``429``
status codes. Read responses carry ``X-Cache: hit|miss`` and
``X-Result-Digest`` headers, so cache behavior is observable from any
HTTP client.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

from repro.model.points import Domain
from repro.model.reports import PositionReport
from repro.obs.export import PrometheusTextExporter
from repro.serving.app import ServingApp
from repro.serving.runtime import ServingResponse

__all__ = ["ServingHTTPServer", "serve"]

#: Largest accepted request body; bigger requests get a 413.
_MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def _report_from_json(doc: dict) -> PositionReport:
    """A PositionReport from its ingest-body JSON shape."""
    return PositionReport(
        entity_id=str(doc["entity_id"]),
        t=float(doc["t"]),
        lon=float(doc["lon"]),
        lat=float(doc["lat"]),
        alt=None if doc.get("alt") is None else float(doc["alt"]),
        speed=None if doc.get("speed") is None else float(doc["speed"]),
        heading=None if doc.get("heading") is None else float(doc["heading"]),
        domain=Domain[doc["domain"].upper()] if "domain" in doc else Domain.MARITIME,
    )


class _HttpRequest:
    """One parsed request: method, path, query params, headers, body."""

    __slots__ = ("method", "path", "params", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        params: dict[str, str],
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.params = params
        self.headers = headers
        self.body = body

    @property
    def client_id(self) -> str:
        return self.headers.get("x-client-id", "anon")

    def json(self) -> dict:
        if not self.body:
            return {}
        doc = json.loads(self.body.decode("utf-8"))
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc


class ServingHTTPServer:
    """The always-on HTTP gateway over one :class:`ServingApp`."""

    def __init__(
        self, app: ServingApp, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and start accepting connections (port 0 picks a free one)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling ----------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    return
                if request.path == "/v1/events/stream":
                    await self._stream_events(request, writer)
                    return
                response, headers = await self._dispatch(request)
                await self._write_json(writer, response, headers)
                if request.headers.get("connection", "keep-alive") == "close":
                    return
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "_HttpRequest | None":
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError(f"malformed request line: {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, __, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        if length > _MAX_BODY_BYTES:
            raise ValueError("request body too large")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        params = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        return _HttpRequest(method, split.path, params, headers, body)

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self, request: _HttpRequest
    ) -> tuple[tuple[int, object], dict[str, str]]:
        """Route one request; returns ``((status, body), extra headers)``."""
        try:
            return await self._route(request)
        except (KeyError, TypeError, ValueError) as exc:
            return ((400, {"error": str(exc)}), {})
        except Exception as exc:  # pragma: no cover - defensive boundary
            return ((500, {"error": f"internal error: {exc}"}), {})

    async def _route(
        self, request: _HttpRequest
    ) -> tuple[tuple[int, object], dict[str, str]]:
        app = self.app
        method, path = request.method, request.path
        if method == "GET" and path == "/healthz":
            return ((200, {"ok": True, "in_flight": app.in_flight}), {})
        if method == "GET" and path == "/metrics":
            text = PrometheusTextExporter().render(app.runtime.metrics)
            return ((200, text), {"Content-Type": "text/plain; charset=utf-8"})
        if method == "GET" and path == "/stats":
            return ((200, app.runtime.metrics.as_dict()), {})
        if method == "POST" and path == "/v1/ingest":
            body = request.json()
            reports = [_report_from_json(doc) for doc in body.get("reports", [])]
            summary = await app.ingest(reports, client_id=request.client_id)
            return ((200, summary), {})
        served = await self._serve_read(request)
        if served is None:
            return ((404, {"error": f"no route {method} {path}"}), {})
        return served

    async def _serve_read(
        self, request: _HttpRequest
    ) -> "tuple[tuple[int, object], dict[str, str]] | None":
        """Map HTTP surface onto :meth:`ServingApp.request` endpoints."""
        method, path = request.method, request.path
        endpoint: str | None = None
        params: dict[str, object] = {}
        if method == "POST" and path == "/v1/query":
            endpoint, params = "query", {"query": request.json()["query"]}
        elif method == "POST" and path == "/v1/range":
            body = request.json()
            endpoint = "range"
            params = {"bbox": body["bbox"]}
            for bound in ("t_from", "t_to"):
                if bound in body:
                    params[bound] = body[bound]
        elif method == "GET" and path == "/v1/events":
            endpoint = "events"
            params = {
                "since": int(request.params.get("since", "0")),
                "limit": int(request.params.get("limit", "1000")),
            }
        elif method == "GET" and path.startswith("/v1/entities/"):
            rest = path[len("/v1/entities/") :]
            entity_id, __, verb = rest.partition("/")
            if entity_id and verb in ("state", "forecast", "trajectory"):
                endpoint = verb
                params = {"entity_id": entity_id}
                if verb == "forecast" and "horizon_s" in request.params:
                    params["horizon_s"] = float(request.params["horizon_s"])
        if endpoint is None:
            return None
        response = await self.app.request(
            endpoint, params, client_id=request.client_id
        )
        return self._render(response)

    @staticmethod
    def _render(
        response: ServingResponse,
    ) -> tuple[tuple[int, object], dict[str, str]]:
        headers = {
            "X-Cache": "hit" if response.cached else "miss",
            "X-Result-Digest": response.digest,
            "X-Shards": ",".join(str(s) for s in response.shards),
        }
        return ((response.status, response.as_dict()), headers)

    # -- wire encoding -----------------------------------------------------

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        response: tuple[int, object],
        extra_headers: dict[str, str],
    ) -> None:
        status, body = response
        if isinstance(body, str):
            payload = body.encode("utf-8")
        else:
            payload = json.dumps(body, sort_keys=True).encode("utf-8")
        headers = {
            "Content-Type": "application/json; charset=utf-8",
            **extra_headers,
            "Content-Length": str(len(payload)),
        }
        writer.write(_head(status, headers) + payload)
        await writer.drain()

    async def _stream_events(
        self, request: _HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        """Chunked NDJSON event subscription (one JSON event per line).

        ``?since=N`` backfills from the event log first; ``?count=N``
        closes the stream after N events (handy for scripted clients —
        without it the stream runs until the client disconnects).
        """
        since = int(request.params.get("since", str(self.app.runtime.event_seq())))
        count = int(request.params["count"]) if "count" in request.params else None
        subscription = self.app.subscribe(since=since)
        headers = {
            "Content-Type": "application/x-ndjson; charset=utf-8",
            "Transfer-Encoding": "chunked",
        }
        writer.write(_head(200, headers))
        await writer.drain()
        sent = 0
        try:
            async for event in subscription:
                line = json.dumps(event, sort_keys=True).encode("utf-8") + b"\n"
                writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
                await writer.drain()
                sent += 1
                if count is not None and sent >= count:
                    break
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            subscription.close()


def _head(status: int, headers: dict[str, str]) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def serve(
    app: ServingApp, host: str = "127.0.0.1", port: int = 8080
) -> ServingHTTPServer:
    """Start a server and return it (callers own the lifecycle)."""
    server = ServingHTTPServer(app, host=host, port=port)
    await server.start()
    return server

"""Per-client admission control at the serving ingress.

The runtime's ingest boundary already sheds load with the E9c
multiplicative controller
(:class:`repro.runtime.backpressure.AdmissionController`); the serving
tier reuses the exact same controller **per client**: each client id
gets its own admit-rate state, driven by the server's saturation signal
(in-flight requests at or above capacity plays the role a full shard
queue plays at ingest). A greedy client under overload is throttled on
its own controller while a light client's admit rate stays near 1.0 —
per-client fairness without a scheduler.

Shed requests surface as 429-style responses, never silent drops, and
are accounted twice: on the shedding client's controller and on the
registry (``serving.admission.admitted`` / ``serving.admission.shed``
counters, ``serving.admission.clients`` gauge).

Each controller's shedding coin flips are seeded from the policy seed
and the client id via :func:`repro.hashing.stable_hash`, so a given
observation sequence (the test's "seeded overload") sheds an identical
request set on every run, independent of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import dataclasses

from repro.hashing import stable_hash
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.runtime.backpressure import AdmissionConfig, AdmissionController

__all__ = ["AdmissionPolicy", "AdmissionPolicyConfig"]


@dataclasses.dataclass(frozen=True, slots=True)
class AdmissionPolicyConfig:
    """Settings for :class:`AdmissionPolicy`.

    Attributes:
        capacity: In-flight requests at which the server counts as
            saturated; at or above it every observation registers
            pressure on the requesting client's controller.
        controller: The per-client controller recipe; its ``seed`` is
            the policy seed each client's RNG seed is derived from.
        max_clients: Safety valve on per-client state growth — beyond
            this many distinct client ids, new clients share one
            overflow controller (id cardinality must not exhaust
            memory).
    """

    capacity: int = 64
    controller: AdmissionConfig = dataclasses.field(default_factory=AdmissionConfig)
    max_clients: int = 10_000

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.max_clients <= 0:
            raise ValueError("max_clients must be positive")


#: Client id every client beyond ``max_clients`` is folded onto.
_OVERFLOW_CLIENT = "\x00overflow"


class AdmissionPolicy:
    """Per-client E9c admission controllers behind one admit decision."""

    def __init__(
        self,
        config: AdmissionPolicyConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if config is not None and not isinstance(config, AdmissionPolicyConfig):
            # Fail at construction, not as a per-request 500: passing an
            # AdmissionPolicy (or anything else) where the config belongs
            # otherwise only explodes on the first try_admit.
            raise TypeError(
                f"config must be AdmissionPolicyConfig, got {type(config).__name__}"
            )
        self.config = config or AdmissionPolicyConfig()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._controllers: dict[str, AdmissionController] = {}

    def controller(self, client_id: str) -> AdmissionController:
        """This client's controller (created seeded on first sight)."""
        if (
            client_id not in self._controllers
            and len(self._controllers) >= self.config.max_clients
        ):
            client_id = _OVERFLOW_CLIENT
        controller = self._controllers.get(client_id)
        if controller is None:
            seed = stable_hash((self.config.controller.seed, client_id))
            controller = AdmissionController(
                dataclasses.replace(self.config.controller, seed=seed)
            )
            self._controllers[client_id] = controller
            self.metrics.gauge("serving.admission.clients").set(
                float(len(self._controllers))
            )
        return controller

    def try_admit(self, client_id: str, in_flight: int) -> bool:
        """Admit or shed one request from ``client_id``.

        ``in_flight`` is the server's current concurrent-request count;
        at or above :attr:`AdmissionPolicyConfig.capacity` the
        observation registers pressure (exactly as a full queue does at
        the ingest boundary). The decision draws from the client's
        seeded controller, so a fixed observation sequence yields a
        fixed shed set.
        """
        controller = self.controller(client_id)
        controller.observe_put(blocked=in_flight >= self.config.capacity)
        admitted = controller.admit()
        if admitted:
            self.metrics.counter("serving.admission.admitted").inc()
        else:
            self.metrics.counter("serving.admission.shed").inc()
        return admitted

    def admit_rate(self, client_id: str) -> float:
        """The client's current admit rate (1.0 for unseen clients)."""
        if client_id not in self._controllers:
            return 1.0
        return self._controllers[client_id].admit_rate

    def shed_total(self) -> int:
        """Requests shed across all clients so far."""
        return sum(self._controllers[cid].shed for cid in sorted(self._controllers))

    def admitted_total(self) -> int:
        """Requests admitted across all clients so far."""
        return sum(
            self._controllers[cid].admitted for cid in sorted(self._controllers)
        )

"""repro.serving — always-on query/forecast serving over the warm pipeline.

The batch tier (``repro.core``, ``repro.runtime``) answers "process this
stream and emit results"; this package answers the datAcron operational
question — "what is vessel X doing *right now*, and where will it be in
ten minutes?" — while ingest keeps running. It is the reproduction's
serving tier:

- :class:`ServingRuntime` — N entity-sharded in-process pipelines behind
  one queryable facade: per-entity latest state / forecast / trajectory,
  spatial range and textual queries (fan-out + merge), an event log.
- :class:`ResultCache` — LRU/TTL result cache with versioned-tag
  invalidation (``entity:<id>``, ``cell:<grid-cell>``, ``global``)
  driven by ingest, so a cache hit is digest-identical to a fresh
  execution.
- :class:`RequestRouter` — the same CRC-32 entity routing as ingest, so
  entity-scoped requests touch exactly one shard.
- :class:`AdmissionPolicy` — deterministic per-client admission reusing
  :class:`repro.runtime.backpressure.AdmissionController`; overload
  sheds with 429-style responses.
- :class:`ServingApp` / :class:`ServingHTTPServer` — the asyncio request
  surface and a stdlib JSON-over-HTTP gateway with an NDJSON event
  stream.
- :func:`run_load` — the seeded closed/open-loop load harness behind
  benchmark E11.

See ``docs/serving.md`` for the architecture walk-through.
"""

from repro.serving.admission import AdmissionPolicy, AdmissionPolicyConfig
from repro.serving.app import EventSubscription, ServingApp
from repro.serving.cache import (
    GLOBAL_TAG,
    CacheConfig,
    CachedEntry,
    ResultCache,
    cell_tag,
    entity_tag,
)
from repro.serving.loadgen import (
    LoadConfig,
    LoadReport,
    RequestMix,
    Workload,
    run_load,
)
from repro.serving.routing import RequestRouter, RouteDecision
from repro.serving.runtime import (
    ENDPOINTS,
    ServingConfig,
    ServingResponse,
    ServingRuntime,
)
from repro.serving.server import ServingHTTPServer, serve

__all__ = [
    "ENDPOINTS",
    "ServingConfig",
    "ServingResponse",
    "ServingRuntime",
    "ServingApp",
    "EventSubscription",
    "ServingHTTPServer",
    "serve",
    "CacheConfig",
    "CachedEntry",
    "ResultCache",
    "GLOBAL_TAG",
    "entity_tag",
    "cell_tag",
    "RequestRouter",
    "RouteDecision",
    "AdmissionPolicy",
    "AdmissionPolicyConfig",
    "LoadConfig",
    "LoadReport",
    "RequestMix",
    "Workload",
    "run_load",
]

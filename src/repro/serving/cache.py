"""Result caching for the serving tier: LRU + TTL + tagged invalidation.

A serving layer that recomputes every spatiotemporal query from the
store on every request wastes its warmth: most operational dashboards
re-ask the same handful of questions between ingest ticks. The
:class:`ResultCache` memoizes finished responses under three expiry
regimes, any of which retires an entry:

- **LRU capacity** — at most ``max_entries`` live entries; the least
  recently *read* entry is evicted first.
- **TTL** — entries older than ``ttl_s`` are expired on lookup (the
  caller supplies "now" from :func:`repro.obs.clock.monotonic`; the
  cache itself never reads a clock, keeping rule D3's boundary intact).
- **Tag invalidation** — the correctness mechanism. Every entry carries
  the *invalidation tags* its payload depends on (``entity:<id>`` for
  per-entity lookups, ``cell:<grid-cell>`` for spatial ranges,
  ``global`` for anything store-wide); ingest bumps the version of every
  tag it touches, and a lookup whose recorded tag versions are no longer
  current misses. Versioned tags make invalidation O(tags-touched) per
  ingest instead of O(entries), and make "invalidate then re-read" and
  "re-read then notice staleness" indistinguishable — which is exactly
  the property the hypothesis suite in
  ``tests/serving/test_cache_invalidation.py`` leans on.

Every outcome is accounted on the registry: ``serving.cache.hit``,
``.miss``, ``.expired``, ``.invalidated``, ``.evicted`` counters and the
``serving.cache.entries`` gauge.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

__all__ = ["CacheConfig", "CachedEntry", "ResultCache", "GLOBAL_TAG"]

#: The tag carried by results that depend on the whole store (textual
#: queries, event-log reads). Every ingest invalidates it.
GLOBAL_TAG = "global"


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Capacity and freshness knobs for :class:`ResultCache`.

    Attributes:
        max_entries: LRU capacity; ``0`` disables caching entirely
            (every lookup misses, nothing is stored).
        ttl_s: Age past which an entry expires regardless of tags;
            ``None`` disables time-based expiry (tags still apply).
    """

    max_entries: int = 1024
    ttl_s: float | None = 30.0

    def __post_init__(self) -> None:
        if self.max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        if self.ttl_s is not None and self.ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None)")


@dataclass(slots=True)
class CachedEntry:
    """One memoized response and the freshness evidence it was filled with.

    Attributes:
        value: The cached payload (opaque to the cache).
        tags: Invalidation tags the payload depends on.
        tag_versions: Version of each tag at fill time; a lookup
            revalidates these against the cache's current versions.
        filled_at: Monotonic fill time (TTL anchor).
    """

    value: Any
    tags: tuple[str, ...]
    tag_versions: tuple[int, ...]
    filled_at: float


class ResultCache:
    """LRU/TTL cache with versioned-tag invalidation (see module docs)."""

    def __init__(
        self,
        config: CacheConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or CacheConfig()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._entries: "OrderedDict[str, CachedEntry]" = OrderedDict()
        self._tag_versions: dict[str, int] = {}

    # -- lookups -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def _version(self, tag: str) -> int:
        return self._tag_versions.get(tag, 0)

    def get(self, key: str, now: float) -> Any | None:
        """The live cached value for ``key``, or ``None`` on any miss.

        A hit requires the entry to be within TTL *and* every recorded
        tag version to still be current; a stale entry is dropped on the
        spot and the reason (``expired`` vs ``invalidated``) counted.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.metrics.counter("serving.cache.miss").inc()
            return None
        ttl = self.config.ttl_s
        if ttl is not None and now - entry.filled_at > ttl:
            del self._entries[key]
            self.metrics.counter("serving.cache.expired").inc()
            self.metrics.counter("serving.cache.miss").inc()
            self._publish_size()
            return None
        for tag, version in zip(entry.tags, entry.tag_versions):
            if self._version(tag) != version:
                del self._entries[key]
                self.metrics.counter("serving.cache.invalidated").inc()
                self.metrics.counter("serving.cache.miss").inc()
                self._publish_size()
                return None
        self._entries.move_to_end(key)
        self.metrics.counter("serving.cache.hit").inc()
        return entry.value

    def put(self, key: str, value: Any, tags: set[str], now: float) -> None:
        """Memoize ``value`` under ``key``, pinned to current tag versions."""
        if self.config.max_entries == 0:
            return
        ordered = tuple(sorted(tags))
        self._entries[key] = CachedEntry(
            value=value,
            tags=ordered,
            tag_versions=tuple(self._version(tag) for tag in ordered),
            filled_at=now,
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.config.max_entries:
            self._entries.popitem(last=False)
            self.metrics.counter("serving.cache.evicted").inc()
        self._publish_size()

    # -- invalidation ------------------------------------------------------

    def invalidate_tags(self, tags: set[str]) -> None:
        """Retire every entry depending on any of ``tags`` (lazily).

        Bumps tag versions; stale entries are physically dropped on
        their next lookup. Ingest calls this with the entity/cell tags
        of the admitted batch plus :data:`GLOBAL_TAG`.
        """
        for tag in tags:
            self._tag_versions[tag] = self._version(tag) + 1

    def invalidate_entity(self, entity_id: str) -> None:
        """Explicit per-entity invalidation (`entity:<id>` tag)."""
        self.invalidate_tags({entity_tag(entity_id)})

    def invalidate_zone(self, cell_id: int) -> None:
        """Explicit per-zone invalidation (`cell:<grid cell>` tag)."""
        self.invalidate_tags({cell_tag(cell_id)})

    def clear(self) -> None:
        """Drop every entry (tag versions survive — they only grow)."""
        self._entries.clear()
        self._publish_size()

    def _publish_size(self) -> None:
        self.metrics.gauge("serving.cache.entries").set(float(len(self._entries)))


def entity_tag(entity_id: str) -> str:
    """The invalidation tag of one entity's derived results."""
    return f"entity:{entity_id}"


def cell_tag(cell_id: int) -> str:
    """The invalidation tag of one grid cell's spatial results."""
    return f"cell:{cell_id}"

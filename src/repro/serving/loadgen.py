"""Closed- and open-loop load generation against a :class:`ServingApp`.

The serving tier's claim is not "it answers queries" but "it answers
them under hundreds of concurrent clients while ingest keeps running".
This module is the harness that checks the claim — in-process, seeded,
deterministic in its request sequence:

- **closed loop** — ``clients`` asyncio tasks, each a think-time client:
  issue a request, await the response, repeat. Offered load adapts to
  service capacity (the classic closed-loop property), so it measures
  latency *at sustainable throughput*.
- **open loop** — requests arrive on a seeded exponential
  (Poisson-process) schedule regardless of completions, the arrival
  model that exposes queueing collapse: when the server falls behind,
  latency grows without bound instead of the workload politely backing
  off.

Every client's request stream is seeded from
:func:`repro.hashing.stable_hash` of ``(seed, client)``, so two runs of
the same config issue the same requests in the same per-client order.
A seeded **writer arm** ingests record batches concurrently, exercising
cache invalidation under load, and every ``verify_every``-th request per
client runs the cached-vs-bypass differential
(:meth:`ServingApp.verify`) — the report counts any digest mismatch,
and the E11 gate requires zero.

Client-observed latencies land per endpoint both in the returned
:class:`LoadReport` and on the registry as ``serving.client.<endpoint>``
histograms (server-side time is already in ``serving.request.*``).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.hashing import stable_hash
from repro.model.reports import PositionReport
from repro.obs.clock import monotonic
from repro.obs.metrics import LatencyHistogram
from repro.serving.app import ServingApp

__all__ = ["LoadConfig", "LoadReport", "RequestMix", "Workload", "run_load"]


@dataclass(frozen=True, slots=True)
class RequestMix:
    """Endpoint weights of the simulated operational traffic.

    Defaults model a monitoring deployment: mostly per-entity state
    polls and forecasts, a steady trickle of spatial ranges, event-log
    tails and ad-hoc textual queries.
    """

    state: float = 0.40
    forecast: float = 0.20
    trajectory: float = 0.05
    range: float = 0.10
    query: float = 0.05
    events: float = 0.20

    def weighted(self) -> tuple[tuple[str, float], ...]:
        pairs = (
            ("state", self.state),
            ("forecast", self.forecast),
            ("trajectory", self.trajectory),
            ("range", self.range),
            ("query", self.query),
            ("events", self.events),
        )
        if any(w < 0 for __, w in pairs) or sum(w for __, w in pairs) <= 0:
            raise ValueError("mix weights must be non-negative and sum > 0")
        return pairs

    def pick(self, rng: random.Random) -> str:
        """One endpoint, drawn by weight from the client's seeded RNG."""
        pairs = self.weighted()
        total = sum(w for __, w in pairs)
        draw = rng.random() * total
        for endpoint, weight in pairs:
            draw -= weight
            if draw < 0:
                return endpoint
        return pairs[-1][0]


@dataclass(frozen=True, slots=True)
class Workload:
    """What the generated requests draw on (entities, space, queries).

    Attributes:
        entity_ids: Ids entity-scoped requests pick from (usually
            :meth:`ServingRuntime.entity_ids` of the warm runtime).
        bbox: World bounds; range requests sample sub-boxes inside it.
        queries: Textual query pool for the ``query`` endpoint.
        horizons_s: Forecast lead times sampled uniformly.
    """

    entity_ids: tuple[str, ...]
    bbox: tuple[float, float, float, float]
    queries: tuple[str, ...] = ()
    horizons_s: tuple[float, ...] = (300.0, 600.0, 1800.0)

    def __post_init__(self) -> None:
        if not self.entity_ids:
            raise ValueError("workload needs at least one entity id")

    def make_request(
        self, rng: random.Random, mix: RequestMix
    ) -> tuple[str, dict]:
        """One (endpoint, params) draw from the client's seeded RNG."""
        endpoint = mix.pick(rng)
        if endpoint == "query" and not self.queries:
            endpoint = "state"
        if endpoint in ("state", "forecast", "trajectory"):
            entity_id = rng.choice(self.entity_ids)
            if endpoint == "forecast":
                return (
                    "forecast",
                    {
                        "entity_id": entity_id,
                        "horizon_s": rng.choice(self.horizons_s),
                    },
                )
            return (endpoint, {"entity_id": entity_id})
        if endpoint == "range":
            min_lon, min_lat, max_lon, max_lat = self.bbox
            # A random sub-box covering ~1/16 of each axis, snapped to a
            # coarse lattice so concurrent clients actually repeat each
            # other's ranges (that repetition is what a result cache is
            # for; fully random boxes would never hit).
            width = (max_lon - min_lon) / 4.0
            height = (max_lat - min_lat) / 4.0
            ix = rng.randrange(4)
            iy = rng.randrange(4)
            lo_lon = min_lon + ix * width
            lo_lat = min_lat + iy * height
            return ("range", {"bbox": [lo_lon, lo_lat, lo_lon + width, lo_lat + height]})
        if endpoint == "query":
            return ("query", {"query": rng.choice(self.queries)})
        return ("events", {"since": 0, "limit": 50})


@dataclass(frozen=True, slots=True)
class LoadConfig:
    """One load-harness arm.

    Attributes:
        clients: Concurrent simulated clients (closed loop: one task
            each; open loop: the client-id cardinality requests rotate
            over).
        requests_per_client: Requests each closed-loop client issues;
            open loop issues ``clients * requests_per_client`` total.
        mode: ``"closed"`` or ``"open"``.
        seed: Master seed every per-client stream derives from.
        think_time_s: Closed-loop pause between a response and the next
            request.
        arrival_rate_rps: Open-loop Poisson arrival rate.
        verify_every: Run the cached-vs-bypass digest differential on
            every Nth request per client (0 disables).
        mix: Endpoint weights.
    """

    clients: int = 200
    requests_per_client: int = 20
    mode: str = "closed"
    seed: int = 2017
    think_time_s: float = 0.0
    arrival_rate_rps: float = 2000.0
    verify_every: int = 16
    mix: RequestMix = field(default_factory=RequestMix)

    def __post_init__(self) -> None:
        if self.clients <= 0 or self.requests_per_client <= 0:
            raise ValueError("clients and requests_per_client must be positive")
        if self.mode not in ("closed", "open"):
            raise ValueError("mode must be 'closed' or 'open'")
        if self.arrival_rate_rps <= 0:
            raise ValueError("arrival_rate_rps must be positive")
        if self.verify_every < 0:
            raise ValueError("verify_every must be >= 0")


@dataclass
class LoadReport:
    """What one load run observed, client-side.

    ``latency`` maps endpoint → p50/p95/p99 summary of client-observed
    latency (admission wait + modeled service time + handling);
    ``statuses`` counts responses by HTTP-style status, so sheds (429)
    are first-class numbers, not log lines.
    """

    mode: str = "closed"
    clients: int = 0
    requests: int = 0
    wall_s: float = 0.0
    latency: dict[str, dict[str, float]] = field(default_factory=dict)
    statuses: dict[int, int] = field(default_factory=dict)
    shed: int = 0
    verify_pairs: int = 0
    digest_mismatches: int = 0
    ingest_batches: int = 0
    ingest_reports: int = 0

    @property
    def requests_per_s(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "clients": self.clients,
            "requests": self.requests,
            "wall_s": self.wall_s,
            "requests_per_s": self.requests_per_s,
            "latency": self.latency,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "shed": self.shed,
            "verify_pairs": self.verify_pairs,
            "digest_mismatches": self.digest_mismatches,
            "ingest_batches": self.ingest_batches,
            "ingest_reports": self.ingest_reports,
        }


async def run_load(
    app: ServingApp,
    workload: Workload,
    config: LoadConfig,
    writer_batches: Sequence[Sequence[PositionReport]] = (),
    writer_interval_s: float = 0.0,
) -> LoadReport:
    """Drive one load arm against the app; see the module docs."""
    report = LoadReport(mode=config.mode, clients=config.clients)
    histograms: dict[str, LatencyHistogram] = {}
    lock_free_counts: dict[int, int] = {}

    async def one_request(client: int, index: int, rng: random.Random) -> None:
        endpoint, params = workload.make_request(rng, config.mix)
        client_id = f"client-{client}"
        started = monotonic()
        response = await app.request(endpoint, params, client_id=client_id)
        elapsed = monotonic() - started
        hist = histograms.get(endpoint)
        if hist is None:
            hist = histograms[endpoint] = LatencyHistogram(
                seed=stable_hash((config.seed, "hist", endpoint))
            )
        hist.record(elapsed)
        app.runtime.metrics.histogram(f"serving.client.{endpoint}").record(elapsed)
        lock_free_counts[response.status] = (
            lock_free_counts.get(response.status, 0) + 1
        )
        report.requests += 1
        if response.status == 429:
            report.shed += 1
        if (
            config.verify_every
            and response.ok
            and index % config.verify_every == 0
        ):
            cached, fresh = app.verify(endpoint, params)
            report.verify_pairs += 1
            if cached.status == fresh.status and cached.digest != fresh.digest:
                report.digest_mismatches += 1

    async def closed_client(client: int) -> None:
        rng = random.Random(stable_hash((config.seed, "client", client)))
        for index in range(config.requests_per_client):
            await one_request(client, index, rng)
            if config.think_time_s > 0.0:
                await asyncio.sleep(config.think_time_s)

    async def open_arrivals() -> None:
        arrival_rng = random.Random(stable_hash((config.seed, "arrivals")))
        total = config.clients * config.requests_per_client
        pending: list[asyncio.Task] = []
        for index in range(total):
            await asyncio.sleep(
                arrival_rng.expovariate(config.arrival_rate_rps)
            )
            client = index % config.clients
            rng = random.Random(stable_hash((config.seed, "open", index)))
            pending.append(
                asyncio.ensure_future(one_request(client, index, rng))
            )
        await asyncio.gather(*pending)

    async def writer() -> None:
        for batch in writer_batches:
            await app.ingest(list(batch))
            report.ingest_batches += 1
            report.ingest_reports += len(batch)
            await asyncio.sleep(writer_interval_s)

    started = monotonic()
    tasks: list = [asyncio.ensure_future(writer())] if writer_batches else []
    if config.mode == "closed":
        tasks.extend(
            asyncio.ensure_future(closed_client(client))
            for client in range(config.clients)
        )
    else:
        tasks.append(asyncio.ensure_future(open_arrivals()))
    await asyncio.gather(*tasks)
    report.wall_s = monotonic() - started
    report.statuses = dict(sorted(lock_free_counts.items()))
    report.latency = {
        endpoint: hist.summary() for endpoint, hist in sorted(histograms.items())
    }
    return report

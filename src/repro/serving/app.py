"""The asyncio facade over the serving runtime.

:class:`~repro.serving.runtime.ServingRuntime` is synchronous and
deterministic; :class:`ServingApp` is what concurrent clients actually
talk to. It adds the three things concurrency demands:

- **admission control** — every request passes the per-client
  :class:`~repro.serving.admission.AdmissionPolicy` *before* any work
  happens, with the app's live in-flight count as the saturation
  signal. A shed request returns a 429-style
  :class:`~repro.serving.runtime.ServingResponse` immediately (no
  execution, no cache read) and is visible in the
  ``serving.admission.shed`` counter.
- **in-flight accounting** — requests hold an in-flight slot across
  their full await span (including the modeled downstream
  ``service_time_s``), so sustained overload genuinely saturates the
  capacity signal the controllers react to.
- **event subscriptions** — subscribers get a bounded
  :class:`asyncio.Queue` fed on every ingest; the HTTP tier streams it
  as NDJSON chunks. A subscriber that stops draining is disconnected
  when its queue overflows (slow consumers must not grow server
  memory).

``service_time_s`` models the downstream I/O a production deployment
would await per request (remote store round trip) — the same role
``WorkerSpec.service_time_s`` plays in the E2b runtime benchmarks. It
is what lets a single-process load harness exhibit real queueing: with
it at 0 the synchronous execution never overlaps and admission never
sees pressure.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Mapping, Sequence

from repro.core.results import digest_of
from repro.model.reports import PositionReport
from repro.serving.admission import AdmissionPolicy, AdmissionPolicyConfig
from repro.serving.runtime import ServingResponse, ServingRuntime

__all__ = ["ServingApp", "EventSubscription"]

#: Events a subscriber may buffer before it is considered stuck and cut.
_SUBSCRIBER_QUEUE_LIMIT = 4096


class EventSubscription:
    """One live event stream: a bounded queue fed by every ingest."""

    def __init__(self, app: "ServingApp") -> None:
        self._app = app
        self.queue: "asyncio.Queue[dict | None]" = asyncio.Queue(
            maxsize=_SUBSCRIBER_QUEUE_LIMIT
        )
        self.closed = False

    def close(self) -> None:
        """Detach from the app; the stream ends after drained events."""
        if not self.closed:
            self.closed = True
            self._app._subscribers.discard(self)
            try:
                self.queue.put_nowait(None)
            except asyncio.QueueFull:
                pass

    async def __aiter__(self) -> AsyncIterator[dict]:
        while True:
            event = await self.queue.get()
            if event is None:
                return
            yield event


class ServingApp:
    """Admission-controlled async request surface over one runtime."""

    def __init__(
        self,
        runtime: ServingRuntime,
        admission: AdmissionPolicyConfig | None = None,
        service_time_s: float = 0.0,
    ) -> None:
        if service_time_s < 0:
            raise ValueError("service_time_s must be >= 0")
        self.runtime = runtime
        self.admission = AdmissionPolicy(admission, metrics=runtime.metrics)
        self.service_time_s = service_time_s
        self.in_flight = 0
        self._subscribers: set[EventSubscription] = set()

    # -- requests ----------------------------------------------------------

    def _shed_response(self, endpoint: str, client_id: str) -> ServingResponse:
        payload = {
            "error": "overloaded, request shed",
            "client_id": client_id,
            "retry": True,
        }
        return ServingResponse(
            status=429, endpoint=endpoint, payload=payload, digest=digest_of(payload)
        )

    async def request(
        self,
        endpoint: str,
        params: Mapping[str, object] | None = None,
        *,
        client_id: str = "anon",
        bypass_cache: bool = False,
    ) -> ServingResponse:
        """Serve one read; may shed with a 429-style response instead."""
        if not self.admission.try_admit(client_id, self.in_flight):
            self.runtime.metrics.counter("serving.responses.429").inc()
            return self._shed_response(endpoint, client_id)
        self.in_flight += 1
        try:
            if self.service_time_s > 0.0:
                await asyncio.sleep(self.service_time_s)
            return self.runtime.handle(endpoint, params, bypass_cache=bypass_cache)
        finally:
            self.in_flight -= 1

    def verify(
        self, endpoint: str, params: Mapping[str, object] | None = None
    ) -> tuple[ServingResponse, ServingResponse]:
        """One cached-path and one cache-bypassing execution, atomically.

        Both run synchronously back to back with no await point, so no
        ingest can interleave between them: if the cache is correct,
        their digests must match — the differential the load harness
        and the E11 bench assert under concurrent ingest.
        """
        cached = self.runtime.handle(endpoint, params)
        fresh = self.runtime.handle(endpoint, params, bypass_cache=True)
        return (cached, fresh)

    # -- ingest ------------------------------------------------------------

    async def ingest(
        self, reports: Sequence[PositionReport], *, client_id: str = "ingest"
    ) -> dict:
        """Ingest a batch (admission-exempt) and fan events to subscribers.

        Ingest is the system's own data plane, not a client read — it
        bypasses per-client admission (the runtime's *ingress* shedding
        already lives in ``repro.runtime.backpressure`` for the batch
        tier) but still occupies an in-flight slot so heavy ingest
        pressures the read path's saturation signal.
        """
        self.in_flight += 1
        try:
            if self.service_time_s > 0.0:
                await asyncio.sleep(self.service_time_s)
            before = self.runtime.event_seq()
            summary = self.runtime.ingest(reports)
            if self._subscribers and summary["new_events"]:
                backlog = self.runtime.handle(
                    "events",
                    {"since": before, "limit": summary["new_events"]},
                    bypass_cache=True,
                )
                for subscription in tuple(self._subscribers):
                    for event in backlog.payload["events"]:
                        try:
                            subscription.queue.put_nowait(event)
                        except asyncio.QueueFull:
                            subscription.close()
                            break
            return summary
        finally:
            self.in_flight -= 1

    # -- subscriptions -----------------------------------------------------

    def subscribe(self, since: int | None = None) -> EventSubscription:
        """Open a live event stream, optionally backfilled from ``since``.

        Backfill events (already-logged sequence numbers >= ``since``)
        are enqueued immediately; everything ingested later follows.
        """
        subscription = EventSubscription(self)
        if since is not None:
            backlog = self.runtime.handle(
                "events", {"since": since}, bypass_cache=True
            )
            for event in backlog.payload["events"]:
                try:
                    subscription.queue.put_nowait(event)
                except asyncio.QueueFull:
                    break
        self._subscribers.add(subscription)
        return subscription

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

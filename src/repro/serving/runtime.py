"""The warm serving core: sharded pipelines that stay queryable.

Everything in the repo before this module was an offline ``run()``: feed
a finite stream, get a result, throw the pipeline away. The
:class:`ServingRuntime` inverts that. It builds ``n_shards`` structurally
identical :class:`~repro.core.pipeline.MobilityPipeline` instances from
one picklable :class:`~repro.core.pipeline.PipelineSpec` (the exact
recipe the multi-process runtime ships to workers), keeps them alive,
and interleaves two kinds of traffic over them:

- **ingest** — record batches are key-partitioned by the same stable
  CRC-32 routing the runtime workers use
  (:class:`~repro.serving.routing.RequestRouter` over
  :class:`~repro.runtime.sharding.ShardRouter`) and pushed through each
  owning shard's ``process_batch`` hot path; per-entity latest state and
  a bounded trajectory history are updated, new events are appended to a
  sequence-numbered event log, and the result cache's invalidation tags
  (per-entity, per-grid-cell, global) are bumped;
- **reads** — entity-scoped requests (latest state, forecast,
  trajectory) are planned onto the one shard that owns the entity;
  spatial ranges and textual queries fan out over every shard's
  :class:`~repro.query.executor.QueryExecutor` and merge, with solution
  modifiers (ORDER BY / DISTINCT / LIMIT) applied globally after the
  merge so sharded evaluation stays semantics-preserving.

Every read flows through :meth:`ServingRuntime.handle`, which fronts the
:class:`~repro.serving.cache.ResultCache`: the response payload is
digest-stamped (:func:`repro.core.results.digest_of`) at fill time, so a
cache hit provably serves byte-identical content to a fresh execution —
the property the load harness re-verifies under concurrent ingest.

All timing uses :func:`repro.obs.clock.monotonic`; request latencies
land in per-endpoint ``serving.request.<endpoint>`` histograms gated by
:data:`repro.obs.slo.DEFAULT_SERVING_BUDGETS`.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Mapping, Sequence

from repro.core.pipeline import MobilityPipeline, PipelineSpec
from repro.core.results import canonical_bytes, digest_of
from repro.forecasting.dead_reckoning import DeadReckoningPredictor
from repro.geo.bbox import BBox
from repro.model.reports import PositionReport
from repro.model.trajectory import Trajectory
from repro.obs.clock import monotonic
from repro.obs.metrics import MetricsRegistry
from repro.query.ast import SelectQuery, Variable
from repro.query.executor import QueryExecutor
from repro.serving.cache import (
    GLOBAL_TAG,
    CacheConfig,
    ResultCache,
    cell_tag,
    entity_tag,
)
from repro.serving.routing import RequestRouter, RouteDecision

__all__ = ["ServingConfig", "ServingResponse", "ServingRuntime", "ENDPOINTS"]

#: Every read endpoint :meth:`ServingRuntime.handle` dispatches.
ENDPOINTS: tuple[str, ...] = (
    "state",
    "forecast",
    "trajectory",
    "range",
    "query",
    "events",
)


@dataclasses.dataclass(frozen=True, slots=True)
class ServingConfig:
    """Shape of one serving runtime.

    Attributes:
        n_shards: Pipeline shards (key-routed, single process).
        cache: Result-cache capacity/TTL settings.
        history_len: Position samples retained per entity for
            forecasting (bounded ring; oldest fall off).
        forecast_window_s: Dead-reckoning velocity estimation window.
        default_horizon_s: Forecast lead time when a request names none.
        max_events: Event-log ring capacity (oldest events fall off;
            subscribers that lag further than this are cut loose).
    """

    n_shards: int = 4
    cache: CacheConfig = dataclasses.field(default_factory=CacheConfig)
    history_len: int = 128
    forecast_window_s: float = 60.0
    default_horizon_s: float = 600.0
    max_events: int = 100_000

    def __post_init__(self) -> None:
        if self.n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if self.history_len <= 0:
            raise ValueError("history_len must be positive")
        if self.default_horizon_s < 0:
            raise ValueError("default_horizon_s must be >= 0")
        if self.max_events <= 0:
            raise ValueError("max_events must be positive")


@dataclasses.dataclass(frozen=True, slots=True)
class ServingResponse:
    """One served result.

    Attributes:
        status: HTTP-style status (200, 400, 404, 429, 500).
        endpoint: Which endpoint produced it.
        payload: Plain-JSON response body.
        digest: SHA-256 of the payload's canonical encoding — computed
            at fill time, so cached and fresh executions of the same
            request are digest-comparable.
        cached: Whether the payload came from the result cache.
        shards: Shard indices the request touched (empty for sheds and
            validation failures).
        elapsed_ms: Server-side handling time in milliseconds.
    """

    status: int
    endpoint: str
    payload: dict
    digest: str
    cached: bool = False
    shards: tuple[int, ...] = ()
    elapsed_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def as_dict(self) -> dict:
        """Wire shape of the response (what the HTTP tier serializes)."""
        return {
            "status": self.status,
            "endpoint": self.endpoint,
            "payload": self.payload,
            "digest": self.digest,
            "cached": self.cached,
            "shards": list(self.shards),
        }


def _report_payload(report: PositionReport) -> dict:
    """A position report as plain JSON (the state endpoint's body)."""
    return {
        "entity_id": report.entity_id,
        "t": report.t,
        "lon": report.lon,
        "lat": report.lat,
        "alt": report.alt,
        "speed": report.speed,
        "heading": report.heading,
    }


class _EntityTrack:
    """Bounded per-entity history feeding the forecast endpoint."""

    __slots__ = ("points",)

    def __init__(self, maxlen: int) -> None:
        self.points: "deque[tuple[float, float, float, float | None]]" = deque(
            maxlen=maxlen
        )

    def append(self, report: PositionReport) -> None:
        # Trajectory construction requires strictly increasing
        # timestamps; a duplicate or out-of-order report refreshes
        # nothing here (the pipeline's dedup filter drops it anyway).
        if self.points and report.t <= self.points[-1][0]:
            return
        self.points.append((report.t, report.lon, report.lat, report.alt))

    def trajectory(self, entity_id: str) -> Trajectory:
        ts = [p[0] for p in self.points]
        lons = [p[1] for p in self.points]
        lats = [p[2] for p in self.points]
        alts = [p[3] for p in self.points]
        alt: list[float] | None = None
        if all(a is not None for a in alts):
            alt = [a for a in alts if a is not None]
        return Trajectory(entity_id, ts, lons, lats, alt=alt)


class ServingRuntime:
    """Sharded, always-queryable pipelines behind one request surface.

    Synchronous and deterministic by construction — the asyncio facade
    (:class:`repro.serving.app.ServingApp`) layers admission control and
    concurrency on top. Not thread-safe; one event loop (or one thread)
    owns an instance.
    """

    def __init__(
        self,
        spec: PipelineSpec,
        config: ServingConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ServingConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.router = RequestRouter(self.config.n_shards)
        # One shared registry across shards: serving is single-process,
        # so per-shard instruments would only fragment the histograms
        # the SLO gate reads.
        self.shards: tuple[MobilityPipeline, ...] = tuple(
            spec.build(metrics=self.metrics) for __ in range(self.config.n_shards)
        )
        self.cache = ResultCache(self.config.cache, self.metrics)
        self._predictor = DeadReckoningPredictor(
            window_s=self.config.forecast_window_s
        )
        self._latest: list[dict[str, PositionReport]] = [
            {} for __ in range(self.config.n_shards)
        ]
        self._tracks: list[dict[str, _EntityTrack]] = [
            {} for __ in range(self.config.n_shards)
        ]
        self._events: "deque[dict]" = deque(maxlen=self.config.max_events)
        self._event_seq = 0
        self._grid = self.shards[0].grid

    # -- ingest ------------------------------------------------------------

    def ingest(self, reports: Sequence[PositionReport]) -> dict:
        """Feed a record batch through the owning shards, stay queryable.

        Partitions by the stable entity-key routing, runs each shard's
        ``process_batch`` hot path, updates latest-state/history, logs
        new events, and invalidates exactly the cache tags the batch
        touched (each entity, each covered grid cell, and the global
        tag). Returns a summary of what the batch did.
        """
        started = monotonic()
        new_events: list[dict] = []
        tags: set[str] = set()
        per_shard: list[list[PositionReport]] = [
            [] for __ in range(self.config.n_shards)
        ]
        for report in reports:
            per_shard[self.router.shard_for_entity(report.entity_id)].append(report)
            tags.add(entity_tag(report.entity_id))
            tags.add(cell_tag(self._grid.cell_id(report.lon, report.lat)))
        for shard_id, shard_reports in enumerate(per_shard):
            if not shard_reports:
                continue
            pipeline = self.shards[shard_id]
            simple_before = len(pipeline.live_result.simple_events)
            complex_events = pipeline.process_batch(shard_reports)
            latest = self._latest[shard_id]
            tracks = self._tracks[shard_id]
            for report in shard_reports:
                previous = latest.get(report.entity_id)
                if previous is None or report.t >= previous.t:
                    latest[report.entity_id] = report
                track = tracks.get(report.entity_id)
                if track is None:
                    track = tracks[report.entity_id] = _EntityTrack(
                        self.config.history_len
                    )
                track.append(report)
            for event in pipeline.live_result.simple_events[simple_before:]:
                new_events.append(
                    {
                        "kind": "simple",
                        "event_type": event.event_type,
                        "entity_ids": [event.entity_id],
                        "t": event.t,
                        "shard": shard_id,
                    }
                )
            for event in complex_events:
                new_events.append(
                    {
                        "kind": "complex",
                        "event_type": event.event_type,
                        "entity_ids": list(event.entity_ids),
                        "t": event.t_start,
                        "t_end": event.t_end,
                        "shard": shard_id,
                    }
                )
        for event in new_events:
            event["seq"] = self._event_seq
            self._event_seq += 1
            self._events.append(event)
        if reports:
            tags.add(GLOBAL_TAG)
            self.cache.invalidate_tags(tags)
        elapsed = monotonic() - started
        self.metrics.counter("serving.ingest.batches").inc()
        self.metrics.counter("serving.ingest.reports").inc(len(reports))
        self.metrics.counter("serving.ingest.events").inc(len(new_events))
        self.metrics.histogram("serving.ingest.batch").record(elapsed)
        return {
            "reports": len(reports),
            "new_events": len(new_events),
            "event_seq": self._event_seq,
            "invalidated_tags": len(tags),
        }

    # -- read path ---------------------------------------------------------

    def handle(
        self,
        endpoint: str,
        params: Mapping[str, Any] | None = None,
        *,
        bypass_cache: bool = False,
    ) -> ServingResponse:
        """Serve one read request, cache-fronted and instrumented.

        ``bypass_cache`` executes fresh without reading or writing the
        cache — the differential arm the digest-equality checks compare
        against.
        """
        started = monotonic()
        params = dict(params or {})
        if endpoint not in ENDPOINTS:
            return self._finish(
                started,
                endpoint,
                ServingResponse(
                    status=400,
                    endpoint=endpoint,
                    payload={"error": f"unknown endpoint {endpoint!r}"},
                    digest="",
                ),
            )
        key = _cache_key(endpoint, params)
        if not bypass_cache:
            hit = self.cache.get(key, now=started)
            if hit is not None:
                status, payload, digest, shards = hit
                return self._finish(
                    started,
                    endpoint,
                    ServingResponse(
                        status=status,
                        endpoint=endpoint,
                        payload=payload,
                        digest=digest,
                        cached=True,
                        shards=shards,
                    ),
                )
        try:
            status, payload, tags, route = self._execute(endpoint, params)
        except (KeyError, TypeError, ValueError) as exc:
            response = ServingResponse(
                status=400,
                endpoint=endpoint,
                payload={"error": str(exc)},
                digest="",
            )
            return self._finish(started, endpoint, response)
        digest = digest_of(payload)
        if not bypass_cache:
            self.cache.put(
                key, (status, payload, digest, route.shards), tags, now=started
            )
        return self._finish(
            started,
            endpoint,
            ServingResponse(
                status=status,
                endpoint=endpoint,
                payload=payload,
                digest=digest,
                cached=False,
                shards=route.shards,
            ),
        )

    def _finish(
        self, started: float, endpoint: str, response: ServingResponse
    ) -> ServingResponse:
        elapsed = monotonic() - started
        self.metrics.counter("serving.requests").inc()
        self.metrics.counter(f"serving.responses.{response.status}").inc()
        if endpoint in ENDPOINTS:
            self.metrics.histogram(f"serving.request.{endpoint}").record(elapsed)
        return dataclasses.replace(response, elapsed_ms=elapsed * 1000.0)

    # -- endpoint executors ------------------------------------------------

    def _execute(
        self, endpoint: str, params: Mapping[str, Any]
    ) -> tuple[int, dict, set[str], RouteDecision]:
        if endpoint == "state":
            return self._exec_state(str(params["entity_id"]))
        if endpoint == "forecast":
            horizon = float(params.get("horizon_s", self.config.default_horizon_s))
            return self._exec_forecast(str(params["entity_id"]), horizon)
        if endpoint == "trajectory":
            return self._exec_trajectory(str(params["entity_id"]))
        if endpoint == "range":
            bbox = params["bbox"]
            if not isinstance(bbox, (list, tuple)) or len(bbox) != 4:
                raise ValueError("bbox must be [min_lon, min_lat, max_lon, max_lat]")
            return self._exec_range(
                BBox(*(float(v) for v in bbox)),
                float(params.get("t_from", float("-inf"))),
                float(params.get("t_to", float("inf"))),
            )
        if endpoint == "query":
            return self._exec_query(str(params["query"]))
        return self._exec_events(
            int(params.get("since", 0)), int(params.get("limit", 1000))
        )

    def _exec_state(
        self, entity_id: str
    ) -> tuple[int, dict, set[str], RouteDecision]:
        route = self.router.plan(entity_id)
        latest = self._latest[route.shards[0]].get(entity_id)
        tags = {entity_tag(entity_id)}
        if latest is None:
            return (404, {"error": f"no state for entity {entity_id!r}"}, tags, route)
        return (200, _report_payload(latest), tags, route)

    def _exec_forecast(
        self, entity_id: str, horizon_s: float
    ) -> tuple[int, dict, set[str], RouteDecision]:
        route = self.router.plan(entity_id)
        track = self._tracks[route.shards[0]].get(entity_id)
        tags = {entity_tag(entity_id)}
        if track is None or not track.points:
            return (
                404,
                {"error": f"no history for entity {entity_id!r}"},
                tags,
                route,
            )
        outcome = self._predictor.predict(track.trajectory(entity_id), horizon_s)
        payload = {
            "entity_id": entity_id,
            "horizon_s": horizon_s,
            "model": outcome.model,
            "confidence": outcome.confidence,
            "point": {
                "t": outcome.point.t,
                "lon": outcome.point.lon,
                "lat": outcome.point.lat,
                "alt": outcome.point.alt,
            },
        }
        return (200, payload, tags, route)

    def _exec_trajectory(
        self, entity_id: str
    ) -> tuple[int, dict, set[str], RouteDecision]:
        route = self.router.plan(entity_id)
        trajectory = self.shards[route.shards[0]].executor.entity_trajectory(
            entity_id
        )
        tags = {entity_tag(entity_id)}
        if len(trajectory) == 0:
            return (
                404,
                {"error": f"no stored trajectory for entity {entity_id!r}"},
                tags,
                route,
            )
        payload = {
            "entity_id": entity_id,
            "n_points": len(trajectory),
            "t": [float(v) for v in trajectory.t],
            "lon": [float(v) for v in trajectory.lon],
            "lat": [float(v) for v in trajectory.lat],
        }
        return (200, payload, tags, route)

    def _exec_range(
        self, bbox: BBox, t_from: float, t_to: float
    ) -> tuple[int, dict, set[str], RouteDecision]:
        route = self.router.plan(None)
        nodes: list[str] = []
        for shard_id in route.shards:
            shard_nodes, __ = self.shards[shard_id].executor.range_query(
                bbox, t_from, t_to
            )
            nodes.extend(str(node) for node in shard_nodes)
        nodes.sort()
        payload = {"n_results": len(nodes), "nodes": nodes}
        return (200, payload, self._bbox_tags(bbox), route)

    def _exec_query(self, text: str) -> tuple[int, dict, set[str], RouteDecision]:
        from repro.query.parser import parse_query

        route = self.router.plan(None)
        query = parse_query(text)
        # Shards evaluate the bare graph pattern + filters; solution
        # modifiers apply once, globally, after the merge (a per-shard
        # LIMIT would under-produce, per-shard DISTINCT under-dedup).
        stripped = dataclasses.replace(
            query, order_by=None, limit=None, distinct=False
        )
        merged: list[dict[Variable, Any]] = []
        for shard_id in route.shards:
            rows, __ = self.shards[shard_id].executor.execute(stripped)
            merged.extend(rows)
        if query.order_by is not None:
            merged = QueryExecutor._apply_order(merged, query.order_by)
        if query.distinct:
            seen: set = set()
            deduped = []
            for row in merged:
                dedup_key = tuple(
                    sorted((v.name, str(row[v])) for v in query.select if v in row)
                )
                if dedup_key not in seen:
                    seen.add(dedup_key)
                    deduped.append(row)
            merged = deduped
        if query.limit is not None:
            merged = merged[: query.limit]
        projected = [
            {v.name: str(row[v]) for v in query.select if v in row} for row in merged
        ]
        if query.order_by is None:
            # Without ORDER BY the result set is unordered; canonicalize
            # so cached and fresh merges are digest-comparable.
            projected.sort(key=lambda row: canonical_bytes(row))
        payload = {"n_results": len(projected), "rows": projected}
        return (200, payload, {GLOBAL_TAG}, route)

    def _exec_events(
        self, since: int, limit: int
    ) -> tuple[int, dict, set[str], RouteDecision]:
        if limit <= 0:
            raise ValueError("limit must be positive")
        route = self.router.plan(None)
        events = [e for e in self._events if e["seq"] >= since][:limit]
        payload = {
            "n_results": len(events),
            "next_seq": (events[-1]["seq"] + 1) if events else self._event_seq,
            "events": events,
        }
        return (200, payload, {GLOBAL_TAG}, route)

    # -- helpers -----------------------------------------------------------

    def _bbox_tags(self, bbox: BBox) -> set[str]:
        """Every grid-cell tag a bbox intersects (clamped to the grid).

        Position nodes are the only spatially-indexed content, and an
        ingested report invalidates the tag of the cell it lands in, so
        tagging a range result with all covered cells is exact: any
        ingest that could change the result bumps at least one of them.
        """
        ix_lo, iy_lo = self._grid.cell_of(bbox.min_lon, bbox.min_lat)
        ix_hi, iy_hi = self._grid.cell_of(bbox.max_lon, bbox.max_lat)
        return {
            cell_tag(iy * self._grid.nx + ix)
            for iy in range(iy_lo, iy_hi + 1)
            for ix in range(ix_lo, ix_hi + 1)
        }

    def entity_ids(self) -> list[str]:
        """Every entity with live latest-state, sorted (harness helper)."""
        out: list[str] = []
        for latest in self._latest:
            out.extend(latest.keys())
        out.sort()
        return out

    def event_seq(self) -> int:
        """The next event sequence number (log cursor for subscribers)."""
        return self._event_seq

    def cache_hit_rate(self) -> float:
        """Cache hits over lookups so far (0.0 before any lookup)."""
        hits = self.metrics.counter("serving.cache.hit").value
        misses = self.metrics.counter("serving.cache.miss").value
        total = hits + misses
        return hits / total if total else 0.0


def _cache_key(endpoint: str, params: Mapping[str, Any]) -> str:
    """Canonical cache key of one request (endpoint + sorted params)."""
    return canonical_bytes({"endpoint": endpoint, "params": dict(params)}).decode(
        "utf-8"
    )

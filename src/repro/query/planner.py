"""Selectivity-based pattern ordering.

The join strategy is index-nested-loops with backtracking; its cost is
dominated by the order patterns are evaluated in. The planner greedily
picks, at each step, the pattern with the smallest estimated cardinality
given already-bound variables (bound variables count as constants).

Two estimators are provided: the shape-based default (no statistics
needed) and :class:`StatisticsEstimator`, which asks the store for
actual match counts of the constant-only positions — the classic
cardinality-from-statistics planner, at dictionary-lookup cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.query.ast import TriplePattern, Variable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.parallel import ParallelRDFStore

CardinalityEstimator = Callable[[TriplePattern, set[Variable]], float]


def default_estimator(pattern: TriplePattern, bound: set[Variable]) -> float:
    """A shape-based cardinality estimate when no statistics are available.

    Fully bound → 1; each free variable multiplies the estimate, with the
    subject position weighted highest (most subjects in mobility data).
    """
    cost = 1.0
    if isinstance(pattern.s, Variable) and pattern.s not in bound:
        cost *= 1000.0
    if isinstance(pattern.p, Variable) and pattern.p not in bound:
        cost *= 50.0
    if isinstance(pattern.o, Variable) and pattern.o not in bound:
        cost *= 200.0
    return cost


class StatisticsEstimator:
    """Cardinality estimates from actual store match counts.

    For each pattern, positions holding constants are counted against the
    store's indexes (cheap for the common shapes); bound-variable
    positions cannot be counted without executing, so they divide the
    estimate by a fixed selectivity factor instead. Unknown constants
    estimate to 0 — the planner then evaluates that dead pattern first
    and the join short-circuits immediately.
    """

    def __init__(self, store: "ParallelRDFStore", bound_selectivity: float = 20.0) -> None:
        if bound_selectivity <= 1.0:
            raise ValueError("bound_selectivity must exceed 1")
        self._store = store
        self._bound_selectivity = bound_selectivity
        self._cache: dict[tuple, float] = {}

    def __call__(self, pattern: TriplePattern, bound: set[Variable]) -> float:
        constants = tuple(
            term if not isinstance(term, Variable) else None
            for term in (pattern.s, pattern.p, pattern.o)
        )
        key = constants
        base = self._cache.get(key)
        if base is None:
            base = float(self._store.count(*constants))
            self._cache[key] = base
        divisor = 1.0
        for term in (pattern.s, pattern.p, pattern.o):
            if isinstance(term, Variable) and term in bound:
                divisor *= self._bound_selectivity
        return base / divisor


def order_patterns(
    patterns: tuple[TriplePattern, ...],
    estimator: CardinalityEstimator = default_estimator,
) -> list[TriplePattern]:
    """Greedy ordering: cheapest-first given the variables bound so far.

    Connectivity is respected implicitly: once a pattern binds variables,
    any pattern sharing them becomes much cheaper and is preferred, so the
    plan tends to stay connected (avoiding Cartesian products) whenever
    the query graph is connected.
    """
    remaining = list(patterns)
    bound: set[Variable] = set()
    ordered: list[TriplePattern] = []
    while remaining:
        best = min(remaining, key=lambda p: estimator(p, bound))
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variables()
    return ordered

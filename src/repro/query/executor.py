"""Partition-parallel query evaluation with a simulated cost model.

Execution strategy:

1. If the query is *subject-star* (all patterns share one subject
   variable) it is evaluated independently per partition and results are
   unioned — exact, because placement colocates a subject's triples.
   When the query also carries an ``ST_WITHIN`` filter on that subject,
   the partitioner prunes the partition set first.
2. Any other query shape is evaluated against the global view (each
   triple pattern scans all partitions) — always correct, never pruned.

The cost model measures real per-partition wall time and reports the
makespan a cluster would see: ``max(per-partition) + overhead(n)``, next
to the sequential sum, giving the simulated speedup of experiment E4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.core.results import canonical_bytes, digest_of
from repro.geo.bbox import BBox
from repro.geo.geodesy import haversine_m
from repro.model.trajectory import Trajectory
from repro.model.points import Domain
from repro.obs.clock import monotonic
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.query.ast import (
    CompareFilter,
    Filter,
    STWithinFilter,
    SelectQuery,
    TriplePattern,
    Variable,
)
from repro.query.planner import order_patterns
from repro.rdf import vocabulary as V
from repro.rdf.terms import IRI, Literal, Term, Triple
from repro.rdf.transform import entity_iri
from repro.store.parallel import ParallelRDFStore

Bindings = dict[Variable, Term]

#: Coordination overhead per partition involved in a distributed query
#: (scheduling + result merge), in seconds. The value approximates a
#: low-latency cluster fabric; the E4 table reports it explicitly.
COORDINATION_OVERHEAD_S = 0.0005


@dataclass
class ExecutionReport:
    """What the executor did and what it would have cost on a cluster.

    Every phase of evaluation is timed — parse (only via
    :meth:`QueryExecutor.execute_text`), planning (pattern ordering +
    partition pruning), the partition scans, and result post-processing
    (order/distinct/limit/projection) — and :attr:`total_s` covers the
    whole call, so the phase times account for the total (previously
    parse/plan time was silently dropped).

    Attributes:
        n_results: Number of result bindings.
        partitions_total: Partition count of the store.
        partitions_scanned: Partitions actually evaluated after pruning.
        pruning_ratio: ``1 - scanned/total`` (0 when nothing was pruned).
        per_partition_s: Measured evaluation wall time per scanned
            partition.
        sequential_s: Sum of per-partition times (single-node cost).
        makespan_s: ``max(per-partition) + overhead`` (cluster cost).
        strategy: ``"partition-local"`` or ``"global"``.
        parse_s: Text-to-AST time (0 when executing a prebuilt query).
        plan_s: Pattern ordering + partition pruning time.
        postprocess_s: Order/distinct/limit/projection time.
        total_s: Wall time of the whole execute call (including parse).
        metrics: Snapshot of the executor's observability registry
            (cumulative across queries; ``{}`` without a registry).
    """

    n_results: int = 0
    partitions_total: int = 0
    partitions_scanned: int = 0
    pruning_ratio: float = 0.0
    per_partition_s: list[float] = field(default_factory=list)
    sequential_s: float = 0.0
    makespan_s: float = 0.0
    strategy: str = "global"
    parse_s: float = 0.0
    plan_s: float = 0.0
    postprocess_s: float = 0.0
    total_s: float = 0.0
    metrics: dict = field(default_factory=dict)

    @property
    def simulated_speedup(self) -> float:
        """Sequential time over makespan (>= 1 when parallelism helps)."""
        if self.makespan_s <= 0:
            return 1.0
        return self.sequential_s / self.makespan_s

    @property
    def scan_s(self) -> float:
        """Total partition-scan time (alias of :attr:`sequential_s`)."""
        return self.sequential_s

    def phase_times(self) -> dict[str, float]:
        """Per-phase wall times in seconds (they sum to ≈ :attr:`total_s`)."""
        return {
            "parse_s": self.parse_s,
            "plan_s": self.plan_s,
            "scan_s": self.scan_s,
            "postprocess_s": self.postprocess_s,
        }

    def summary(self) -> dict[str, float]:
        """Flat numeric summary (the common report shape, see as_dict)."""
        return {
            "n_results": float(self.n_results),
            "partitions_total": float(self.partitions_total),
            "partitions_scanned": float(self.partitions_scanned),
            "pruning_ratio": self.pruning_ratio,
            "parse_ms": self.parse_s * 1000.0,
            "plan_ms": self.plan_s * 1000.0,
            "scan_ms": self.scan_s * 1000.0,
            "postprocess_ms": self.postprocess_s * 1000.0,
            "total_ms": self.total_s * 1000.0,
            "makespan_ms": self.makespan_s * 1000.0,
            "simulated_speedup": self.simulated_speedup,
        }

    def as_dict(self) -> dict:
        """The common observability report shape.

        ``{"kind", "summary", "metrics"}`` — the same schema as
        :meth:`repro.core.pipeline.PipelineResult.as_dict`.
        """
        return {"kind": "query", "summary": self.summary(), "metrics": self.metrics}

    def deterministic_payload(self) -> dict:
        """Everything the query's content determines, nothing timing does.

        Result count, partition accounting and the chosen strategy are
        functions of store content + query; every ``*_s`` field is wall
        time and is excluded, so the same query over the same store
        digests identically however slowly it ran.
        """
        return {
            "n_results": self.n_results,
            "partitions_total": self.partitions_total,
            "partitions_scanned": self.partitions_scanned,
            "pruning_ratio": self.pruning_ratio,
            "strategy": self.strategy,
        }

    def deterministic_bytes(self) -> bytes:
        """Canonical JSON encoding of :meth:`deterministic_payload`."""
        return canonical_bytes(self.deterministic_payload())

    def deterministic_digest(self) -> str:
        """SHA-256 of :meth:`deterministic_bytes`."""
        return digest_of(self.deterministic_payload())


class QueryExecutor:
    """Evaluates :class:`SelectQuery` objects over a parallel store.

    Args:
        store: The parallel RDF store to query.
        use_statistics: Plan pattern order from actual store match counts
            (:class:`repro.query.planner.StatisticsEstimator`) instead of
            the shape heuristic. Pays a few count lookups per query,
            avoids pathological orders on skewed data.
        metrics: Observability registry; when given (and enabled), every
            execute is wrapped in ``query.*`` spans, phase latencies land
            in ``query.parse`` / ``query.plan`` / ``query.scan`` /
            ``query.postprocess`` / ``query.total`` histograms, and the
            :class:`ExecutionReport` carries the registry snapshot.
    """

    def __init__(
        self,
        store: ParallelRDFStore,
        use_statistics: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        if use_statistics:
            from repro.query.planner import StatisticsEstimator

            self._estimator = StatisticsEstimator(store)
        else:
            from repro.query.planner import default_estimator

            self._estimator = default_estimator

    # -- public API ---------------------------------------------------------

    def execute(self, query: SelectQuery) -> tuple[list[Bindings], ExecutionReport]:
        """Evaluate a query; returns projected bindings and the report.

        Every phase is timed into the report — planning (pattern
        ordering + pruning), partition scans, and post-processing — and
        ``report.total_s`` covers the whole call, so phase times account
        for the total (see :meth:`ExecutionReport.phase_times`).
        """
        total_started = monotonic()
        report = ExecutionReport(partitions_total=self.store.n_partitions)
        with self.metrics.span("query.execute") as root_span:
            plan_started = monotonic()
            with self.metrics.span("query.plan"):
                star_var = query.is_subject_star()
                ordered = order_patterns(query.patterns, estimator=self._estimator)
                partitions = (
                    sorted(self._prune_partitions(query, star_var))
                    if star_var is not None
                    else None
                )
            report.plan_s = monotonic() - plan_started
            with self.metrics.span("query.scan") as scan_span:
                if star_var is not None and partitions is not None:
                    rows = self._execute_partition_local(
                        query, ordered, partitions, report
                    )
                else:
                    rows = self._execute_global(query, ordered, report)
                scan_span.add_records(len(rows))
            post_started = monotonic()
            with self.metrics.span("query.postprocess"):
                if query.order_by is not None:
                    rows = self._apply_order(rows, query.order_by)
                if query.distinct:
                    # Deduplicate on the projection (SPARQL DISTINCT
                    # semantics), preserving the (possibly ordered) first
                    # occurrence.
                    seen: set = set()
                    deduped: list[Bindings] = []
                    for row in rows:
                        key = tuple(sorted(
                            (v.name, str(row[v])) for v in query.select if v in row
                        ))
                        if key not in seen:
                            seen.add(key)
                            deduped.append(row)
                    rows = deduped
                if query.limit is not None:
                    rows = rows[: query.limit]
                projected = [
                    {v: row[v] for v in query.select if v in row} for row in rows
                ]
            report.postprocess_s = monotonic() - post_started
            report.n_results = len(projected)
            root_span.add_records(len(projected))
        report.total_s = monotonic() - total_started
        self._record_query_metrics(report)
        return (projected, report)

    def execute_text(self, text: str) -> tuple[list[Bindings], ExecutionReport]:
        """Parse and evaluate a textual query, timing the parse phase.

        The returned report's ``parse_s`` covers text-to-AST time and is
        included in ``total_s`` — no phase is dropped from the totals.
        """
        from repro.query.parser import parse_query

        parse_started = monotonic()
        with self.metrics.span("query.parse"):
            query = parse_query(text)
        parse_s = monotonic() - parse_started
        rows, report = self.execute(query)
        report.parse_s = parse_s
        report.total_s += parse_s
        if self.metrics.enabled:
            self.metrics.histogram("query.parse").record(parse_s)
            report.metrics = self.metrics.as_dict()
        return (rows, report)

    def _record_query_metrics(self, report: ExecutionReport) -> None:
        """Land phase latencies on the registry and snapshot it."""
        if not self.metrics.enabled:
            return
        self.metrics.histogram("query.plan").record(report.plan_s)
        self.metrics.histogram("query.scan").record(report.scan_s)
        self.metrics.histogram("query.postprocess").record(report.postprocess_s)
        self.metrics.histogram("query.total").record(report.total_s)
        self.metrics.counter("query.executed").inc()
        self.metrics.counter("query.results").inc(report.n_results)
        report.metrics = self.metrics.as_dict()

    @staticmethod
    def _apply_order(rows: list[Bindings], order: Any) -> list[Bindings]:
        def key(row: Bindings):
            term = row.get(order.var)
            if term is None:
                return (2, 0.0, "")
            if isinstance(term, Literal):
                try:
                    return (0, float(term.value), "")
                except (TypeError, ValueError):
                    return (1, 0.0, str(term))
            return (1, 0.0, str(term))

        return sorted(rows, key=key, reverse=order.descending)

    def count_by(
        self,
        group_var: Variable,
        query: SelectQuery,
    ) -> list[tuple[Term, int]]:
        """GROUP BY + COUNT: result rows grouped on one variable.

        Returns ``(group term, count)`` pairs sorted by descending count —
        the aggregation workhorse behind "events per entity", "nodes per
        cell" style questions. The grouping variable must appear in the
        query's patterns (it need not be projected).
        """
        pattern_vars: set[Variable] = set()
        for pattern in query.patterns:
            pattern_vars |= pattern.variables()
        if group_var not in pattern_vars:
            raise ValueError(f"{group_var} not bound by the query's patterns")
        widened = SelectQuery(
            select=tuple(dict.fromkeys(query.select + (group_var,))),
            patterns=query.patterns,
            filters=query.filters,
        )
        rows, __ = self.execute(widened)
        counts: dict[Term, int] = {}
        for row in rows:
            term = row.get(group_var)
            if term is None:
                continue
            counts[term] = counts.get(term, 0) + 1
        return sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))

    def describe(self, subject: Term) -> list[Triple]:
        """All triples of one subject (SPARQL DESCRIBE-lite).

        Placement colocates a subject's document, so the lookup touches
        exactly one partition when the subject is known.
        """
        return list(self.store.match(subject, None, None))

    def entity_trajectory(self, entity_id: str, domain: Domain = Domain.MARITIME) -> Trajectory:
        """Trajectory retrieval: all position nodes of an entity, by time."""
        node_var = Variable("n")
        t_var, lon_var, lat_var = Variable("t"), Variable("lon"), Variable("lat")
        query = SelectQuery(
            select=(t_var, lon_var, lat_var),
            patterns=(
                TriplePattern(node_var, V.PROP_OF_MOVING_OBJECT, entity_iri(entity_id)),
                TriplePattern(node_var, V.PROP_TIMESTAMP, t_var),
                TriplePattern(node_var, V.PROP_LON, lon_var),
                TriplePattern(node_var, V.PROP_LAT, lat_var),
            ),
        )
        rows, __ = self.execute(query)
        samples = sorted(
            (
                float(row[t_var].value),  # type: ignore[union-attr]
                float(row[lon_var].value),  # type: ignore[union-attr]
                float(row[lat_var].value),  # type: ignore[union-attr]
            )
            for row in rows
        )
        return Trajectory(
            entity_id,
            [s[0] for s in samples],
            [s[1] for s in samples],
            [s[2] for s in samples],
            domain=domain,
        )

    def knn_nodes(
        self,
        lon: float,
        lat: float,
        k: int,
        t_from: float = float("-inf"),
        t_to: float = float("inf"),
        initial_radius_deg: float = 0.1,
    ) -> list[tuple[IRI, float]]:
        """The k nearest position nodes to a point within a time interval.

        Expanding-ring search: range queries with doubling radius until at
        least ``k`` candidates are found, then an exact distance sort.
        Returns ``(node IRI, distance_m)`` pairs, nearest first.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        radius = initial_radius_deg
        seen: dict[IRI, float] = {}
        for __ in range(12):
            bbox = BBox(
                max(-180.0, lon - radius),
                max(-90.0, lat - radius),
                min(180.0, lon + radius),
                min(90.0, lat + radius),
            )
            for node, nlon, nlat, __t in self._nodes_in_range(bbox, t_from, t_to):
                if node not in seen:
                    seen[node] = haversine_m(lon, lat, nlon, nlat)
            if len(seen) >= k or radius > 360.0:
                break
            radius *= 2.0
        ranked = sorted(seen.items(), key=lambda kv: kv[1])
        return ranked[:k]

    def range_query(
        self, bbox: BBox, t_from: float = float("-inf"), t_to: float = float("inf")
    ) -> tuple[list[IRI], ExecutionReport]:
        """All position nodes inside a space-time box (the E4 workhorse)."""
        node_var = Variable("n")
        t_var, lon_var, lat_var = Variable("t"), Variable("lon"), Variable("lat")
        query = SelectQuery(
            select=(node_var,),
            patterns=(
                TriplePattern(node_var, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE),
                TriplePattern(node_var, V.PROP_TIMESTAMP, t_var),
                TriplePattern(node_var, V.PROP_LON, lon_var),
                TriplePattern(node_var, V.PROP_LAT, lat_var),
            ),
            filters=(STWithinFilter(node_var, bbox, t_from, t_to),),
        )
        rows, report = self.execute(query)
        return ([row[node_var] for row in rows], report)  # type: ignore[misc]

    # -- strategies ---------------------------------------------------------

    def _execute_partition_local(
        self,
        query: SelectQuery,
        ordered: list[TriplePattern],
        partitions: list[int],
        report: ExecutionReport,
    ) -> list[Bindings]:
        report.strategy = "partition-local"
        report.partitions_scanned = len(partitions)
        report.pruning_ratio = 1.0 - (len(partitions) / max(1, self.store.n_partitions))
        rows: list[Bindings] = []
        for idx in partitions:
            started = monotonic()
            for row in self._join(ordered, {}, partitions=(idx,)):
                if self._passes_filters(row, query.filters):
                    rows.append(row)
            report.per_partition_s.append(monotonic() - started)
        report.sequential_s = sum(report.per_partition_s)
        longest = max(report.per_partition_s, default=0.0)
        report.makespan_s = longest + COORDINATION_OVERHEAD_S * max(1, len(partitions))
        return rows

    def _execute_global(
        self,
        query: SelectQuery,
        ordered: list[TriplePattern],
        report: ExecutionReport,
    ) -> list[Bindings]:
        report.strategy = "global"
        report.partitions_scanned = self.store.n_partitions
        started = monotonic()
        rows = [
            row
            for row in self._join(ordered, {}, partitions=None)
            if self._passes_filters(row, query.filters)
        ]
        elapsed = monotonic() - started
        report.per_partition_s = [elapsed]
        report.sequential_s = elapsed
        report.makespan_s = elapsed + COORDINATION_OVERHEAD_S * self.store.n_partitions
        return rows

    def _prune_partitions(self, query: SelectQuery, star_var: Variable) -> set[int]:
        for flt in query.filters:
            if isinstance(flt, STWithinFilter) and flt.var == star_var:
                return self.store.partitions_for_bbox(flt.bbox)
        return set(range(self.store.n_partitions))

    # -- BGP join -------------------------------------------------------------

    def _join(
        self,
        patterns: list[TriplePattern],
        bindings: Bindings,
        partitions: Iterable[int] | None,
    ) -> Iterator[Bindings]:
        if not patterns:
            yield dict(bindings)
            return
        head, *tail = patterns
        s = self._resolve(head.s, bindings)
        p = self._resolve(head.p, bindings)
        o = self._resolve(head.o, bindings)
        for triple in self.store.match(s, p, o, partitions=partitions):
            extended = self._extend(head, triple, bindings)
            if extended is None:
                continue
            yield from self._join(tail, extended, partitions)

    @staticmethod
    def _resolve(term: Any, bindings: Bindings) -> Term | None:
        if isinstance(term, Variable):
            return bindings.get(term)
        return term

    @staticmethod
    def _extend(pattern: TriplePattern, triple: Triple, bindings: Bindings) -> Bindings | None:
        extended = dict(bindings)
        for slot, value in ((pattern.s, triple.s), (pattern.p, triple.p), (pattern.o, triple.o)):
            if isinstance(slot, Variable):
                bound = extended.get(slot)
                if bound is None:
                    extended[slot] = value
                elif bound != value:
                    return None
        return extended

    # -- filters ----------------------------------------------------------------

    def _passes_filters(self, row: Bindings, filters: tuple[Filter, ...]) -> bool:
        for flt in filters:
            if isinstance(flt, CompareFilter):
                term = row.get(flt.var)
                if term is None or not flt.test(term):
                    return False
            elif isinstance(flt, STWithinFilter):
                if not self._st_within(row, flt):
                    return False
        return True

    def _st_within(self, row: Bindings, flt: STWithinFilter) -> bool:
        node = row.get(flt.var)
        if not isinstance(node, IRI):
            return False
        lon = self._node_literal(node, V.PROP_LON, row)
        lat = self._node_literal(node, V.PROP_LAT, row)
        t = self._node_literal(node, V.PROP_TIMESTAMP, row)
        if lon is None or lat is None:
            return False
        if not flt.bbox.contains(lon, lat):
            return False
        if t is None:
            return flt.t_from == float("-inf") and flt.t_to == float("inf")
        return flt.t_from <= t <= flt.t_to

    def _node_literal(self, node: IRI, prop: IRI, row: Bindings) -> float | None:
        """A node's numeric property, preferring already-bound variables."""
        for triple in self.store.match(node, prop, None):
            if isinstance(triple.o, Literal):
                try:
                    return float(triple.o.value)
                except (TypeError, ValueError):
                    return None
        return None

    def _nodes_in_range(
        self, bbox: BBox, t_from: float, t_to: float
    ) -> Iterator[tuple[IRI, float, float, float]]:
        """Stream (node, lon, lat, t) of position nodes in a space-time box."""
        partitions = self.store.partitions_for_bbox(bbox)
        for triple in self.store.match(
            None, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE, partitions=partitions
        ):
            node = triple.s
            if not isinstance(node, IRI):
                continue
            lon = self._node_literal(node, V.PROP_LON, {})
            lat = self._node_literal(node, V.PROP_LAT, {})
            t = self._node_literal(node, V.PROP_TIMESTAMP, {})
            if lon is None or lat is None or t is None:
                continue
            if bbox.contains(lon, lat) and t_from <= t <= t_to:
                yield (node, lon, lat, t)

"""Query model: variables, patterns, filters and SELECT queries."""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Union

from repro.geo.bbox import BBox
from repro.rdf.terms import IRI, Literal, Term


@dataclass(frozen=True, slots=True)
class Variable:
    """A query variable, e.g. ``Variable("n")`` for ``?n``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __str__(self) -> str:
        return f"?{self.name}"


PatternTerm = Union[Variable, Term]


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple pattern: each position is a constant term or a variable."""

    s: PatternTerm
    p: PatternTerm
    o: PatternTerm

    def variables(self) -> set[Variable]:
        """The variables appearing in the pattern."""
        return {x for x in (self.s, self.p, self.o) if isinstance(x, Variable)}

    def bound_count(self) -> int:
        """Number of constant positions (selectivity proxy)."""
        return sum(1 for x in (self.s, self.p, self.o) if not isinstance(x, Variable))

    def __str__(self) -> str:
        return f"{self.s} {self.p} {self.o} ."


@dataclass(frozen=True, slots=True)
class STWithinFilter:
    """Spatio-temporal range filter on a position-node variable.

    Keeps bindings where the node's (lon, lat) lies in ``bbox`` and its
    timestamp lies in ``[t_from, t_to]``.
    """

    var: Variable
    bbox: BBox
    t_from: float = float("-inf")
    t_to: float = float("inf")

    def __post_init__(self) -> None:
        if self.t_to < self.t_from:
            raise ValueError("t_to must be >= t_from")


_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True, slots=True)
class CompareFilter:
    """A numeric comparison filter, e.g. ``FILTER(?v > 10.0)``.

    The variable must bind to a numeric :class:`Literal`.
    """

    var: Variable
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unsupported comparator {self.op!r}")

    def test(self, term: Term) -> bool:
        """Evaluate the filter against a bound term."""
        if not isinstance(term, Literal):
            return False
        try:
            return _COMPARATORS[self.op](float(term.value), self.value)
        except (TypeError, ValueError):
            return False


Filter = Union[STWithinFilter, CompareFilter]


@dataclass(frozen=True, slots=True)
class OrderBy:
    """Result ordering on one variable.

    Numeric literals order numerically, other terms lexically by their
    N-Triples form; unbound rows sort last.
    """

    var: Variable
    descending: bool = False


@dataclass(frozen=True)
class SelectQuery:
    """A SELECT query: projection, basic graph pattern, filters and
    solution modifiers (DISTINCT / ORDER BY / LIMIT)."""

    select: tuple[Variable, ...]
    patterns: tuple[TriplePattern, ...]
    filters: tuple[Filter, ...] = ()
    order_by: OrderBy | None = None
    limit: int | None = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if not self.patterns:
            raise ValueError("a query needs at least one pattern")
        if self.limit is not None and self.limit < 0:
            raise ValueError("LIMIT must be >= 0")
        pattern_vars: set[Variable] = set()
        for pattern in self.patterns:
            pattern_vars |= pattern.variables()
        missing = [v for v in self.select if v not in pattern_vars]
        if missing:
            raise ValueError(f"projected variables not in patterns: {missing}")
        if self.order_by is not None and self.order_by.var not in pattern_vars:
            raise ValueError(f"ORDER BY variable not in patterns: {self.order_by.var}")

    def is_subject_star(self) -> Variable | None:
        """The shared subject variable if every pattern has the same one.

        Subject-star queries evaluate partition-locally (placement
        guarantees a subject's triples are colocated).
        """
        subjects = {p.s for p in self.patterns}
        if len(subjects) == 1:
            subject = next(iter(subjects))
            if isinstance(subject, Variable):
                return subject
        return None

"""Spatio-temporal query answering over the parallel RDF store.

- :mod:`repro.query.ast` — query model: variables, triple patterns,
  spatio-temporal filters, SELECT queries.
- :mod:`repro.query.parser` — a small SPARQL-like textual query language
  with ``ST_WITHIN`` / ``ST_INTERVAL`` filters.
- :mod:`repro.query.planner` — selectivity-based pattern ordering.
- :mod:`repro.query.executor` — partition-parallel evaluation with
  pruning, plus kNN and trajectory retrieval helpers, reporting a
  simulated-parallel cost model (per-partition work, makespan, speedup).
"""

from repro.query.ast import (
    Variable,
    TriplePattern,
    STWithinFilter,
    CompareFilter,
    SelectQuery,
    OrderBy,
)
from repro.query.planner import order_patterns
from repro.query.executor import QueryExecutor, ExecutionReport
from repro.query.parser import parse_query

__all__ = [
    "Variable",
    "TriplePattern",
    "STWithinFilter",
    "CompareFilter",
    "SelectQuery",
    "OrderBy",
    "order_patterns",
    "QueryExecutor",
    "ExecutionReport",
    "parse_query",
]

"""A small SPARQL-like textual query language with spatio-temporal filters.

Grammar (case-insensitive keywords)::

    query   := prefix* "SELECT" var+ "WHERE" "{" (pattern | filter)* "}"
               ["ORDER" "BY" (var | ("ASC"|"DESC") "(" var ")")]
               ["LIMIT" INTEGER]
    prefix  := "PREFIX" NAME ":" IRIREF
    pattern := term term term "."
    filter  := "FILTER" "ST_WITHIN" "(" var "," num "," num "," num ","
               num ["," num "," num] ")"
             | "FILTER" "(" var OP num ")"
    term    := var | IRIREF | prefixed-name | number | string

The well-known namespaces (``dac:``, ``unipi:``, ``geo:``, ``time:``,
``rdf:``, ``xsd:``) are prebound. Numeric literals parse to xsd:double
(with a dot) or xsd:long (without); strings to xsd:string.

Example::

    SELECT ?n ?t WHERE {
      ?n rdf:type dac:SemanticNode .
      ?n time:inSeconds ?t .
      FILTER ST_WITHIN(?n, 23.0, 37.0, 25.0, 38.0, 0, 3600)
      FILTER (?t > 600)
    }
"""

from __future__ import annotations

import re

from repro.geo.bbox import BBox
from repro.query.ast import (
    CompareFilter,
    Filter,
    OrderBy,
    STWithinFilter,
    SelectQuery,
    TriplePattern,
    Variable,
)
from repro.rdf import vocabulary as V
from repro.rdf.terms import IRI, Literal

_DEFAULT_PREFIXES = {
    "dac": V.DATACRON.base,
    "unipi": V.UNIPI.base,
    "geo": V.GEO.base,
    "time": V.TIME.base,
    "rdf": V.RDF.base,
    "xsd": V.XSD.base,
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<iriref><[^>]*>)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<var>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<pname>[A-Za-z_][A-Za-z0-9_-]*:[A-Za-z0-9_./+-]*)
  | (?P<keyword>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|!=|[<>=])
  | (?P<punct>[{}().,])
    """,
    re.VERBOSE,
)


class QueryParseError(ValueError):
    """Raised on any syntax error, with position information."""


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QueryParseError(f"unexpected character at offset {pos}: {text[pos]!r}")
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append((kind, match.group()))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self._tokens = tokens
        self._i = 0
        self._prefixes = dict(_DEFAULT_PREFIXES)

    def _peek(self) -> tuple[str, str] | None:
        return self._tokens[self._i] if self._i < len(self._tokens) else None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise QueryParseError("unexpected end of query")
        self._i += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        kind, value = self._next()
        if kind != "keyword" or value.upper() != word:
            raise QueryParseError(f"expected {word}, got {value!r}")

    def _expect_punct(self, char: str) -> None:
        kind, value = self._next()
        if kind != "punct" or value != char:
            raise QueryParseError(f"expected {char!r}, got {value!r}")

    def parse(self) -> SelectQuery:
        while True:
            token = self._peek()
            if token and token[0] == "keyword" and token[1].upper() == "PREFIX":
                self._parse_prefix()
            else:
                break
        self._expect_keyword("SELECT")
        distinct = False
        token = self._peek()
        if token and token[0] == "keyword" and token[1].upper() == "DISTINCT":
            self._next()
            distinct = True
        select = self._parse_select_vars()
        self._expect_keyword("WHERE")
        self._expect_punct("{")
        patterns: list[TriplePattern] = []
        filters: list[Filter] = []
        while True:
            token = self._peek()
            if token is None:
                raise QueryParseError("unterminated WHERE block")
            if token == ("punct", "}"):
                self._next()
                break
            if token[0] == "keyword" and token[1].upper() == "FILTER":
                self._next()
                filters.append(self._parse_filter())
            else:
                patterns.append(self._parse_pattern())
        order_by = None
        limit = None
        while True:
            token = self._peek()
            if token is None:
                break
            if token[0] == "keyword" and token[1].upper() == "ORDER":
                self._next()
                order_by = self._parse_order_by()
            elif token[0] == "keyword" and token[1].upper() == "LIMIT":
                self._next()
                kind, value = self._next()
                if kind != "number" or "." in value:
                    raise QueryParseError(f"LIMIT needs an integer, got {value!r}")
                limit = int(value)
            else:
                raise QueryParseError(f"unexpected trailing token {token[1]!r}")
        return SelectQuery(
            select=tuple(select),
            patterns=tuple(patterns),
            filters=tuple(filters),
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_order_by(self) -> "OrderBy":
        self._expect_keyword("BY")
        token = self._peek()
        descending = False
        if token and token[0] == "keyword" and token[1].upper() in ("ASC", "DESC"):
            self._next()
            descending = token[1].upper() == "DESC"
            self._expect_punct("(")
            kind, value = self._next()
            if kind != "var":
                raise QueryParseError("ORDER BY needs a variable")
            self._expect_punct(")")
            return OrderBy(Variable(value[1:]), descending=descending)
        kind, value = self._next()
        if kind != "var":
            raise QueryParseError("ORDER BY needs a variable")
        return OrderBy(Variable(value[1:]), descending=False)

    def _parse_prefix(self) -> None:
        self._expect_keyword("PREFIX")
        kind, value = self._next()
        if kind != "pname" or not value.endswith(":"):
            # A pname like "dac:" tokenizes as pname with empty local part.
            raise QueryParseError(f"expected prefix declaration, got {value!r}")
        name = value[:-1]
        kind, iriref = self._next()
        if kind != "iriref":
            raise QueryParseError(f"expected IRI after PREFIX, got {iriref!r}")
        self._prefixes[name] = iriref[1:-1]

    def _parse_select_vars(self) -> list[Variable]:
        out = []
        while True:
            token = self._peek()
            if token and token[0] == "var":
                self._next()
                out.append(Variable(token[1][1:]))
            else:
                break
        if not out:
            raise QueryParseError("SELECT needs at least one variable")
        return out

    def _parse_pattern(self) -> TriplePattern:
        s = self._parse_term()
        p = self._parse_term()
        o = self._parse_term()
        self._expect_punct(".")
        return TriplePattern(s, p, o)

    def _parse_term(self):
        kind, value = self._next()
        if kind == "var":
            return Variable(value[1:])
        if kind == "iriref":
            return IRI(value[1:-1])
        if kind == "pname":
            prefix, __, local = value.partition(":")
            if prefix not in self._prefixes:
                raise QueryParseError(f"unknown prefix {prefix!r}")
            return IRI(self._prefixes[prefix] + local)
        if kind == "number":
            if "." in value or "e" in value or "E" in value:
                return Literal(float(value), V.XSD_DOUBLE)
            return Literal(int(value), V.XSD_LONG)
        if kind == "string":
            return Literal(value[1:-1].replace('\\"', '"'), V.XSD_STRING)
        if kind == "keyword" and value == "a":
            return V.PROP_TYPE
        raise QueryParseError(f"unexpected token in pattern: {value!r}")

    def _parse_filter(self) -> Filter:
        token = self._peek()
        if token and token[0] == "keyword" and token[1].upper() == "ST_WITHIN":
            self._next()
            return self._parse_st_within()
        if token == ("punct", "("):
            return self._parse_compare()
        raise QueryParseError(f"unsupported FILTER: {token!r}")

    def _parse_st_within(self) -> STWithinFilter:
        self._expect_punct("(")
        kind, value = self._next()
        if kind != "var":
            raise QueryParseError("ST_WITHIN needs a variable first")
        var = Variable(value[1:])
        numbers: list[float] = []
        while True:
            kind, value = self._next()
            if kind == "punct" and value == ")":
                break
            if kind == "punct" and value == ",":
                continue
            if kind != "number":
                raise QueryParseError(f"expected number in ST_WITHIN, got {value!r}")
            numbers.append(float(value))
        if len(numbers) not in (4, 6):
            raise QueryParseError("ST_WITHIN takes 4 (bbox) or 6 (bbox+time) numbers")
        bbox = BBox(numbers[0], numbers[1], numbers[2], numbers[3])
        if len(numbers) == 6:
            return STWithinFilter(var, bbox, numbers[4], numbers[5])
        return STWithinFilter(var, bbox)

    def _parse_compare(self) -> CompareFilter:
        self._expect_punct("(")
        kind, value = self._next()
        if kind != "var":
            raise QueryParseError("comparison filter needs a variable")
        var = Variable(value[1:])
        kind, op = self._next()
        if kind != "op":
            raise QueryParseError(f"expected comparator, got {op!r}")
        kind, number = self._next()
        if kind != "number":
            raise QueryParseError(f"expected number, got {number!r}")
        self._expect_punct(")")
        return CompareFilter(var, op, float(number))


def parse_query(text: str) -> SelectQuery:
    """Parse the textual query language into a :class:`SelectQuery`."""
    return _Parser(_tokenize(text)).parse()

"""Predictor interface shared by all future-location models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.points import STPoint
from repro.model.trajectory import Trajectory


@dataclass(frozen=True, slots=True)
class PredictionOutcome:
    """A single prediction and its provenance.

    Attributes:
        point: Predicted position at ``history.end_time + horizon_s``.
        horizon_s: Lead time of the prediction.
        model: Predictor name.
        confidence: Model-specific confidence in [0, 1] (1 when the model
            does not estimate one).
    """

    point: STPoint
    horizon_s: float
    model: str
    confidence: float = 1.0


class Predictor:
    """Base class: predict a future position from an observed history.

    Implementations must be pure with respect to the history argument —
    repeated calls with the same inputs return the same outcome. Models
    that learn from archives do so at construction / ``fit`` time.
    """

    #: Short name used in benchmark tables.
    name: str = "predictor"

    def predict(self, history: Trajectory, horizon_s: float) -> PredictionOutcome:
        """Predict the position ``horizon_s`` seconds past the history end.

        Raises:
            EmptyTrajectoryError: If the history has no samples.
            ValueError: If ``horizon_s`` is negative.
        """
        raise NotImplementedError

    def _check(self, history: Trajectory, horizon_s: float) -> None:
        if horizon_s < 0:
            raise ValueError("horizon_s must be >= 0")
        if len(history) == 0:
            from repro.model.errors import EmptyTrajectoryError

            raise EmptyTrajectoryError("cannot predict from an empty history")

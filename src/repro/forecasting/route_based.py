"""Route-based (pattern) predictor: datAcron's long-horizon FLP idea.

Historical trajectories are clustered into routes (k-medoids over a shape
distance); the medoid of each cluster is kept as the route's
representative. To predict, the current track's recent tail is matched to
the nearest representative; the entity's position is projected onto that
route and advanced along it by the current speed × horizon. On
route-following traffic this beats kinematic extrapolation at long
horizons because it anticipates the turns the route will take.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.geo.geodesy import destination_point, haversine_m, initial_bearing_deg
from repro.forecasting.base import PredictionOutcome, Predictor
from repro.forecasting.dead_reckoning import DeadReckoningPredictor
from repro.model.points import STPoint
from repro.model.trajectory import Trajectory
from repro.trajectory.clustering import KMedoids, distance_matrix
from repro.trajectory.similarity import euclidean_resampled_m


class RouteBasedPredictor(Predictor):
    """Match the track to a learned route; advance along the route.

    Args:
        history: Historical trajectories to learn routes from.
        n_routes: Number of route clusters (k for k-medoids). Capped at
            the number of historical trajectories.
        match_tail_s: Length of the current track's tail used for route
            matching.
        max_match_distance_m: If the best route is farther than this from
            the track tail, fall back to dead reckoning.
    """

    name = "route_based"

    def __init__(
        self,
        history: Sequence[Trajectory],
        n_routes: int = 8,
        match_tail_s: float = 900.0,
        max_match_distance_m: float = 10_000.0,
        seed: int = 0,
    ) -> None:
        if not history:
            raise ValueError("route-based prediction needs historical trajectories")
        self.match_tail_s = match_tail_s
        self.max_match_distance_m = max_match_distance_m
        self._fallback = DeadReckoningPredictor()
        self.routes = self._learn_routes(list(history), n_routes, seed)

    @staticmethod
    def _learn_routes(
        history: list[Trajectory], n_routes: int, seed: int
    ) -> list[Trajectory]:
        k = min(n_routes, len(history))
        resampled = [t.resample(max(30.0, t.duration / 64.0) if t.duration > 0 else 30.0) for t in history]
        if k == len(history):
            return resampled
        matrix = distance_matrix(resampled, metric=euclidean_resampled_m)
        model = KMedoids(k=k, seed=seed).fit(matrix)
        assert model.medoids is not None
        return [resampled[i] for i in model.medoids]

    def predict(self, history: Trajectory, horizon_s: float) -> PredictionOutcome:
        self._check(history, horizon_s)
        last = history[len(history) - 1]
        tail = history.slice_time(last.t - self.match_tail_s, last.t)
        if len(tail) < 2:
            tail = history

        route, match_dist = self._best_route(tail)
        if route is None or match_dist > self.max_match_distance_m:
            fallback = self._fallback.predict(history, horizon_s)
            return PredictionOutcome(
                point=fallback.point, horizon_s=horizon_s, model=self.name, confidence=0.3
            )

        speed = self._current_speed(tail)
        point = self._advance_along_route(route, last, speed * horizon_s)
        confidence = 1.0 / (1.0 + match_dist / 2000.0)
        return PredictionOutcome(
            point=STPoint(t=last.t + horizon_s, lon=point[0], lat=point[1], alt=last.alt),
            horizon_s=horizon_s,
            model=self.name,
            confidence=float(confidence),
        )

    def _best_route(self, tail: Trajectory) -> tuple[Trajectory | None, float]:
        """The route whose path passes closest to the track tail.

        A route matches when it is near the tail *and* heading the same
        way; direction is checked by comparing progress along the route at
        the tail's start vs end.
        """
        best: Trajectory | None = None
        best_dist = float("inf")
        head = tail[0]
        last = tail[len(tail) - 1]
        for route in self.routes:
            idx_start = self._nearest_index(route, head.lon, head.lat)
            idx_end, dist_end = self._nearest_index_dist(route, last.lon, last.lat)
            if idx_end < idx_start:
                continue  # travelling against this route's direction
            if dist_end < best_dist:
                best_dist = dist_end
                best = route
        return (best, best_dist)

    @staticmethod
    def _nearest_index(route: Trajectory, lon: float, lat: float) -> int:
        d = [haversine_m(float(route.lon[i]), float(route.lat[i]), lon, lat) for i in range(len(route))]
        return int(np.argmin(d))

    @staticmethod
    def _nearest_index_dist(route: Trajectory, lon: float, lat: float) -> tuple[int, float]:
        d = [haversine_m(float(route.lon[i]), float(route.lat[i]), lon, lat) for i in range(len(route))]
        idx = int(np.argmin(d))
        return (idx, float(d[idx]))

    @staticmethod
    def _current_speed(tail: Trajectory) -> float:
        duration = tail.duration
        if duration <= 0:
            return 0.0
        return tail.length_m() / duration

    def _advance_along_route(
        self, route: Trajectory, last: STPoint, distance_m: float
    ) -> tuple[float, float]:
        """Walk ``distance_m`` along the route from the entity's projection."""
        idx = self._nearest_index(route, last.lon, last.lat)
        remaining = distance_m
        lon, lat = last.lon, last.lat
        # First hop: from current position to the next route vertex.
        for i in range(idx, len(route) - 1):
            next_lon, next_lat = float(route.lon[i + 1]), float(route.lat[i + 1])
            hop = haversine_m(lon, lat, next_lon, next_lat)
            if hop >= remaining:
                if hop <= 0:
                    return (lon, lat)
                bearing = initial_bearing_deg(lon, lat, next_lon, next_lat)
                return destination_point(lon, lat, bearing, remaining)
            remaining -= hop
            lon, lat = next_lon, next_lat
        # Ran off the end of the route: extrapolate its final bearing.
        if len(route) >= 2 and remaining > 0:
            bearing = initial_bearing_deg(
                float(route.lon[-2]), float(route.lat[-2]),
                float(route.lon[-1]), float(route.lat[-1]),
            )
            return destination_point(lon, lat, bearing, remaining)
        return (lon, lat)

"""Calibrated prediction intervals.

An operational FLP answer is a *position plus an uncertainty radius*:
"the vessel will be here ± 800 m (90%)". The calibrator wraps any
predictor, measures its error distribution per horizon on validation
trajectories, and attaches the learned quantile radius (interpolated
between calibrated horizons) to every prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.forecasting.base import PredictionOutcome, Predictor
from repro.forecasting.evaluation import evaluate_predictor
from repro.model.trajectory import Trajectory


@dataclass(frozen=True, slots=True)
class CalibratedOutcome:
    """A prediction with its calibrated uncertainty radius.

    Attributes:
        outcome: The wrapped point prediction.
        radius_m: Learned error quantile at the requested coverage.
        coverage: The nominal coverage level (e.g. 0.9).
    """

    outcome: PredictionOutcome
    radius_m: float
    coverage: float


class CalibratedPredictor:
    """Wraps a predictor with empirical error-quantile calibration.

    Args:
        predictor: The model to calibrate.
        validation: Trajectories used to measure the error distribution
            (they must be disjoint from anything the model trained on).
        horizons_s: Calibration horizons; radii for other horizons are
            linearly interpolated (clamped at the ends).
        coverage: Quantile to learn (0.9 → the 90th error percentile).
    """

    def __init__(
        self,
        predictor: Predictor,
        validation: Sequence[Trajectory],
        horizons_s: Sequence[float] = (60.0, 300.0, 900.0, 1800.0),
        coverage: float = 0.9,
        min_history_s: float = 600.0,
    ) -> None:
        if not (0.0 < coverage < 1.0):
            raise ValueError("coverage must be in (0, 1)")
        if not horizons_s:
            raise ValueError("need at least one calibration horizon")
        self.predictor = predictor
        self.coverage = coverage
        self._horizons = np.asarray(sorted(horizons_s), dtype=float)
        self._radii = self._calibrate(validation, min_history_s)

    @property
    def name(self) -> str:
        """The wrapped predictor's name with a calibration suffix."""
        return f"{self.predictor.name}+cal"

    def _calibrate(
        self, validation: Sequence[Trajectory], min_history_s: float
    ) -> np.ndarray:
        results = evaluate_predictor(
            self.predictor,
            validation,
            horizons_s=list(self._horizons),
            min_history_s=min_history_s,
        )
        radii = []
        for errors in results:
            if errors.horizontal_m:
                radii.append(
                    float(np.percentile(errors.horizontal_m, self.coverage * 100.0))
                )
            else:
                radii.append(float("nan"))
        radii_arr = np.asarray(radii)
        if np.isnan(radii_arr).all():
            raise ValueError("validation produced no calibration samples")
        # Fill unmeasurable horizons from the nearest measured one.
        valid = ~np.isnan(radii_arr)
        radii_arr = np.interp(
            self._horizons, self._horizons[valid], radii_arr[valid]
        )
        return radii_arr

    def radius_for_horizon(self, horizon_s: float) -> float:
        """The calibrated radius at any horizon (interpolated, clamped)."""
        return float(np.interp(horizon_s, self._horizons, self._radii))

    def predict(self, history: Trajectory, horizon_s: float) -> CalibratedOutcome:
        """Predict with an attached uncertainty radius."""
        outcome = self.predictor.predict(history, horizon_s)
        return CalibratedOutcome(
            outcome=outcome,
            radius_m=self.radius_for_horizon(horizon_s),
            coverage=self.coverage,
        )

    def empirical_coverage(
        self,
        test: Sequence[Trajectory],
        horizon_s: float,
        min_history_s: float = 600.0,
    ) -> float:
        """Fraction of test predictions whose truth falls inside the radius.

        A well-calibrated model returns ≈ ``coverage`` (sampling noise
        aside); systematically lower means the validation set was easier
        than the test traffic.
        """
        results = evaluate_predictor(
            self.predictor, test, horizons_s=[horizon_s], min_history_s=min_history_s
        )
        errors = results[0].horizontal_m
        if not errors:
            raise ValueError("test set produced no predictions")
        radius = self.radius_for_horizon(horizon_s)
        return float(np.mean([e <= radius for e in errors]))

"""Horizon-sweep evaluation of future-location predictors (experiment E5).

For each evaluation trajectory, several cut points are chosen; the history
up to the cut is handed to each predictor for each horizon, and the
prediction is compared to the ground-truth position at cut + horizon.
Errors are horizontal metres (plus vertical metres for 3D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.geo.geodesy import haversine_m
from repro.forecasting.base import Predictor
from repro.model.trajectory import Trajectory


@dataclass
class HorizonErrors:
    """Error samples for one (predictor, horizon) pair."""

    model: str
    horizon_s: float
    horizontal_m: list[float] = field(default_factory=list)
    vertical_m: list[float] = field(default_factory=list)

    @property
    def n(self) -> int:
        """Number of predictions scored."""
        return len(self.horizontal_m)

    def mean_horizontal_m(self) -> float:
        """Mean horizontal error."""
        return float(np.mean(self.horizontal_m)) if self.horizontal_m else float("nan")

    def median_horizontal_m(self) -> float:
        """Median horizontal error."""
        return float(np.median(self.horizontal_m)) if self.horizontal_m else float("nan")

    def p90_horizontal_m(self) -> float:
        """90th-percentile horizontal error."""
        return float(np.percentile(self.horizontal_m, 90)) if self.horizontal_m else float("nan")

    def mean_vertical_m(self) -> float:
        """Mean |altitude error| (NaN for 2D)."""
        return float(np.mean(self.vertical_m)) if self.vertical_m else float("nan")


def evaluate_predictor(
    predictor: Predictor,
    trajectories: Iterable[Trajectory],
    horizons_s: Sequence[float],
    min_history_s: float = 600.0,
    cuts_per_trajectory: int = 3,
) -> list[HorizonErrors]:
    """Score one predictor over trajectories and horizons.

    Args:
        min_history_s: A cut point is valid only if at least this much
            history precedes it.
        cuts_per_trajectory: Evenly spaced cut points per trajectory
            (those whose cut+horizon exceeds the trajectory are skipped
            per-horizon).

    Returns:
        One :class:`HorizonErrors` per horizon, in input order.
    """
    if not horizons_s:
        raise ValueError("need at least one horizon")
    results = [HorizonErrors(model=predictor.name, horizon_s=h) for h in horizons_s]
    max_horizon = max(horizons_s)

    for trajectory in trajectories:
        duration = trajectory.duration
        if duration < min_history_s + min(horizons_s):
            continue
        lo = trajectory.start_time + min_history_s
        hi = trajectory.end_time - min(horizons_s)
        if hi <= lo:
            continue
        cuts = np.linspace(lo, hi, cuts_per_trajectory + 2)[1:-1]
        for cut in cuts:
            history = trajectory.slice_time(trajectory.start_time, float(cut))
            if len(history) < 2:
                continue
            for errors, horizon in zip(results, horizons_s):
                target_t = history.end_time + horizon
                if target_t > trajectory.end_time:
                    continue
                outcome = predictor.predict(history, horizon)
                truth = trajectory.at_time(target_t)
                errors.horizontal_m.append(
                    haversine_m(outcome.point.lon, outcome.point.lat, truth.lon, truth.lat)
                )
                if truth.alt is not None and outcome.point.alt is not None:
                    errors.vertical_m.append(abs(outcome.point.alt - truth.alt))
    return results


def horizon_sweep(
    predictors: Sequence[Predictor],
    trajectories: Sequence[Trajectory],
    horizons_s: Sequence[float],
    min_history_s: float = 600.0,
    cuts_per_trajectory: int = 3,
) -> dict[str, list[HorizonErrors]]:
    """Evaluate several predictors on the same data; keyed by model name."""
    return {
        predictor.name: evaluate_predictor(
            predictor,
            trajectories,
            horizons_s,
            min_history_s=min_history_s,
            cuts_per_trajectory=cuts_per_trajectory,
        )
        for predictor in predictors
    }

"""Horizon-aware ensemble predictor.

E5 shows a clean crossover: kinematic models win short horizons, the
route-based model wins long ones. The ensemble exploits it directly —
blend the kinematic and pattern predictions with a weight that shifts
toward the route model as the horizon grows, modulated by the route
match confidence (a badly matched route should not dominate even at long
horizons).
"""

from __future__ import annotations

import math

from repro.geo.geodesy import destination_point, haversine_m, initial_bearing_deg
from repro.forecasting.base import PredictionOutcome, Predictor
from repro.model.points import STPoint
from repro.model.trajectory import Trajectory


class EnsemblePredictor(Predictor):
    """Blend a short-horizon and a long-horizon predictor.

    The blend weight for the long-horizon model is::

        w(h) = sigmoid((h - crossover_s) / softness_s) * long_confidence

    and the prediction interpolates between the two predicted points
    along the great circle connecting them.

    Args:
        short_model: Kinematic predictor (wins small horizons).
        long_model: Pattern predictor (wins large horizons).
        crossover_s: Horizon at which the two get equal weight (before
            confidence modulation).
        softness_s: Transition width of the sigmoid.
    """

    name = "ensemble"

    def __init__(
        self,
        short_model: Predictor,
        long_model: Predictor,
        crossover_s: float = 420.0,
        softness_s: float = 240.0,
    ) -> None:
        if crossover_s <= 0 or softness_s <= 0:
            raise ValueError("crossover and softness must be positive")
        self.short_model = short_model
        self.long_model = long_model
        self.crossover_s = crossover_s
        self.softness_s = softness_s

    def predict(self, history: Trajectory, horizon_s: float) -> PredictionOutcome:
        self._check(history, horizon_s)
        short = self.short_model.predict(history, horizon_s)
        long = self.long_model.predict(history, horizon_s)

        base_weight = 1.0 / (1.0 + math.exp(-(horizon_s - self.crossover_s) / self.softness_s))
        weight = base_weight * long.confidence
        point = self._blend(short.point, long.point, weight)
        confidence = (1.0 - weight) * short.confidence + weight * long.confidence
        return PredictionOutcome(
            point=point, horizon_s=horizon_s, model=self.name, confidence=confidence
        )

    @staticmethod
    def _blend(a: STPoint, b: STPoint, weight_b: float) -> STPoint:
        """Interpolate between two predicted points along the great circle."""
        weight_b = min(max(weight_b, 0.0), 1.0)
        if weight_b <= 0.0:
            return a
        if weight_b >= 1.0:
            return b
        gap = haversine_m(a.lon, a.lat, b.lon, b.lat)
        if gap < 1.0:
            blended = (a.lon, a.lat)
        else:
            bearing = initial_bearing_deg(a.lon, a.lat, b.lon, b.lat)
            blended = destination_point(a.lon, a.lat, bearing, gap * weight_b)
        alt = None
        if a.alt is not None and b.alt is not None:
            alt = (1.0 - weight_b) * a.alt + weight_b * b.alt
        elif a.alt is not None:
            alt = a.alt
        elif b.alt is not None:
            alt = b.alt
        return STPoint(t=a.t, lon=blended[0], lat=blended[1], alt=alt)

"""Constant-velocity Kalman filter predictor in a local tangent plane.

The filter runs over the observed history (positions projected to
east/north metres around the first sample), estimating position and
velocity under a constant-velocity motion model; prediction propagates the
final state forward by the horizon. Aviation histories get an independent
1D filter on altitude.
"""

from __future__ import annotations

import numpy as np

from repro.geo.geodesy import EARTH_RADIUS_M, enu_offset_m
from repro.forecasting.base import PredictionOutcome, Predictor
from repro.model.points import STPoint
from repro.model.trajectory import Trajectory

_RAD2DEG = 180.0 / np.pi


class KalmanPredictor(Predictor):
    """Kalman filter with a constant-velocity model.

    Args:
        process_noise: Acceleration-noise intensity q (m²/s³); larger
            values track manoeuvres faster but smooth less.
        measurement_noise_m: Position measurement standard deviation.
    """

    name = "kalman_cv"

    def __init__(self, process_noise: float = 0.05, measurement_noise_m: float = 20.0) -> None:
        if process_noise <= 0 or measurement_noise_m <= 0:
            raise ValueError("noise parameters must be positive")
        self.q = process_noise
        self.r = measurement_noise_m

    def predict(self, history: Trajectory, horizon_s: float) -> PredictionOutcome:
        self._check(history, horizon_s)
        last = history[len(history) - 1]
        if len(history) == 1:
            return PredictionOutcome(
                point=last.with_time(last.t + horizon_s), horizon_s=horizon_s, model=self.name
            )

        ref_lon, ref_lat = float(history.lon[0]), float(history.lat[0])
        state, cov = self._run_filter(history, ref_lon, ref_lat)

        # Propagate the final state by the horizon.
        transition = np.eye(4)
        transition[0, 2] = transition[1, 3] = horizon_s
        state = transition @ state

        lon, lat = self._to_lonlat(float(state[0]), float(state[1]), ref_lon, ref_lat)
        alt = self._predict_altitude(history, horizon_s)
        point = STPoint(
            t=last.t + horizon_s,
            lon=min(max(lon, -180.0), 180.0),
            lat=min(max(lat, -90.0), 90.0),
            alt=alt,
        )
        # Confidence decays with predicted position variance.
        pos_var = float(cov[0, 0] + cov[1, 1]) + self.q * horizon_s**3 / 3.0
        confidence = 1.0 / (1.0 + np.sqrt(max(pos_var, 0.0)) / 1000.0)
        return PredictionOutcome(
            point=point, horizon_s=horizon_s, model=self.name, confidence=float(confidence)
        )

    def _run_filter(
        self, history: Trajectory, ref_lon: float, ref_lat: float
    ) -> tuple[np.ndarray, np.ndarray]:
        measurement_matrix = np.zeros((2, 4))
        measurement_matrix[0, 0] = measurement_matrix[1, 1] = 1.0
        measurement_cov = np.eye(2) * self.r**2

        x0, y0 = enu_offset_m(ref_lon, ref_lat, float(history.lon[0]), float(history.lat[0]))
        state = np.array([x0, y0, 0.0, 0.0])
        cov = np.diag([self.r**2, self.r**2, 100.0, 100.0])

        prev_t = float(history.t[0])
        for i in range(1, len(history)):
            t = float(history.t[i])
            dt = t - prev_t
            prev_t = t
            transition = np.eye(4)
            transition[0, 2] = transition[1, 3] = dt
            process_cov = self._process_cov(dt)
            state = transition @ state
            cov = transition @ cov @ transition.T + process_cov

            zx, zy = enu_offset_m(ref_lon, ref_lat, float(history.lon[i]), float(history.lat[i]))
            innovation = np.array([zx, zy]) - measurement_matrix @ state
            innovation_cov = measurement_matrix @ cov @ measurement_matrix.T + measurement_cov
            gain = cov @ measurement_matrix.T @ np.linalg.inv(innovation_cov)
            state = state + gain @ innovation
            cov = (np.eye(4) - gain @ measurement_matrix) @ cov
        return (state, cov)

    def _process_cov(self, dt: float) -> np.ndarray:
        dt2, dt3 = dt * dt, dt * dt * dt
        q = self.q
        return np.array(
            [
                [q * dt3 / 3.0, 0.0, q * dt2 / 2.0, 0.0],
                [0.0, q * dt3 / 3.0, 0.0, q * dt2 / 2.0],
                [q * dt2 / 2.0, 0.0, q * dt, 0.0],
                [0.0, q * dt2 / 2.0, 0.0, q * dt],
            ]
        )

    @staticmethod
    def _to_lonlat(east: float, north: float, ref_lon: float, ref_lat: float) -> tuple[float, float]:
        lat = ref_lat + (north / EARTH_RADIUS_M) * _RAD2DEG
        lon = ref_lon + (east / (EARTH_RADIUS_M * np.cos(np.radians(ref_lat)))) * _RAD2DEG
        return (lon, lat)

    @staticmethod
    def _predict_altitude(history: Trajectory, horizon_s: float) -> float | None:
        if history.alt is None:
            return None
        alt = history.alt
        t = history.t
        if len(history) < 3:
            return float(alt[-1])
        # Least-squares vertical rate over the last 60 s (or 5 samples).
        idx = max(0, len(history) - max(5, int(np.searchsorted(t, t[-1] - 60.0))))
        window_t = t[idx:] - t[idx]
        window_alt = alt[idx:]
        if len(window_t) < 2 or window_t[-1] == 0:
            return float(alt[-1])
        rate = float(np.polyfit(window_t, window_alt, 1)[0])
        return max(0.0, float(alt[-1]) + rate * horizon_s)

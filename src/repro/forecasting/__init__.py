"""Future location prediction (FLP) for moving entities.

"Reconstruction and forecasting of moving entities' trajectories in the
challenging Maritime (2D space) and Aviation (3D space) domains" — this
package provides the forecasting half: four predictors with one
interface, plus the horizon-sweep evaluation harness used by E5.

Predictors (in increasing use of history):

- :class:`DeadReckoningPredictor` — constant velocity from the last
  samples; the operational baseline.
- :class:`KalmanPredictor` — constant-velocity Kalman filter in a local
  tangent plane (3D state for aviation); smooths sensor noise.
- :class:`GridMarkovPredictor` — first-order Markov chain over grid
  cells learned from history; follows likely turns.
- :class:`RouteBasedPredictor` — matches the current track to clustered
  historical routes and advances along the best route (datAcron's
  pattern-based FLP idea); strongest at long horizons on route traffic.
"""

from repro.forecasting.base import Predictor, PredictionOutcome
from repro.forecasting.dead_reckoning import DeadReckoningPredictor
from repro.forecasting.kalman import KalmanPredictor
from repro.forecasting.markov import GridMarkovPredictor
from repro.forecasting.route_based import RouteBasedPredictor
from repro.forecasting.ensemble import EnsemblePredictor
from repro.forecasting.calibration import CalibratedOutcome, CalibratedPredictor
from repro.forecasting.evaluation import (
    HorizonErrors,
    evaluate_predictor,
    horizon_sweep,
)

__all__ = [
    "Predictor",
    "PredictionOutcome",
    "DeadReckoningPredictor",
    "KalmanPredictor",
    "GridMarkovPredictor",
    "RouteBasedPredictor",
    "EnsemblePredictor",
    "CalibratedOutcome",
    "CalibratedPredictor",
    "HorizonErrors",
    "evaluate_predictor",
    "horizon_sweep",
]

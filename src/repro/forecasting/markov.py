"""Grid-based first-order Markov predictor.

Historical trajectories are discretised into grid-cell sequences. The
model learns, per cell, the distribution of next cells and the mean
transit time through the cell. Prediction walks the most likely
transitions until the horizon's time budget is spent, then places the
prediction at the final cell centre (blended with dead reckoning inside
the first cell, which dominates short horizons).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable

from repro.geo.grid import GeoGrid
from repro.forecasting.base import PredictionOutcome, Predictor
from repro.forecasting.dead_reckoning import DeadReckoningPredictor
from repro.model.points import STPoint
from repro.model.trajectory import Trajectory


class GridMarkovPredictor(Predictor):
    """First-order Markov chain over grid cells.

    Args:
        grid: Discretisation grid (cell size sets the model's resolution).
        history: Trajectories to learn transitions from.
    """

    name = "grid_markov"

    def __init__(self, grid: GeoGrid, history: Iterable[Trajectory] = ()) -> None:
        self.grid = grid
        self._transitions: dict[int, Counter[int]] = defaultdict(Counter)
        self._transit_time: dict[int, float] = {}
        self._transit_samples: dict[int, list[float]] = defaultdict(list)
        self._fallback = DeadReckoningPredictor()
        self.fit(history)

    def fit(self, trajectories: Iterable[Trajectory]) -> GridMarkovPredictor:
        """Accumulate transitions from more historical trajectories."""
        for trajectory in trajectories:
            cells = self._cell_sequence(trajectory)
            for (cell_a, t_enter), (cell_b, t_exit) in zip(cells, cells[1:]):
                self._transitions[cell_a][cell_b] += 1
                self._transit_samples[cell_a].append(t_exit - t_enter)
        for cell, samples in self._transit_samples.items():
            if samples:
                self._transit_time[cell] = sum(samples) / len(samples)
        return self

    @property
    def n_states(self) -> int:
        """Number of cells with learned outgoing transitions."""
        return len(self._transitions)

    def _cell_sequence(self, trajectory: Trajectory) -> list[tuple[int, float]]:
        """Deduplicated (cell_id, entry_time) sequence of a trajectory."""
        out: list[tuple[int, float]] = []
        for i in range(len(trajectory)):
            cell = self.grid.cell_id(float(trajectory.lon[i]), float(trajectory.lat[i]))
            if not out or out[-1][0] != cell:
                out.append((cell, float(trajectory.t[i])))
        return out

    def predict(self, history: Trajectory, horizon_s: float) -> PredictionOutcome:
        self._check(history, horizon_s)
        last = history[len(history) - 1]
        current_cell = self.grid.cell_id(last.lon, last.lat)

        # Short horizons: the entity stays within its current cell — the
        # Markov model has no information there, so defer to dead reckoning.
        first_transit = self._transit_time.get(current_cell)
        if first_transit is None or horizon_s <= first_transit / 2.0:
            fallback = self._fallback.predict(history, horizon_s)
            return PredictionOutcome(
                point=fallback.point, horizon_s=horizon_s, model=self.name,
                confidence=0.5,
            )

        budget = horizon_s
        cell = current_cell
        confidence = 1.0
        visited = {cell}
        while budget > 0:
            transit = self._transit_time.get(cell)
            nexts = self._transitions.get(cell)
            if transit is None or not nexts:
                break
            if budget < transit / 2.0:
                break
            budget -= transit
            total = sum(nexts.values())
            # Most likely unvisited successor; revisits mean a loop in the
            # learned graph, which a point prediction cannot express.
            for candidate, count in nexts.most_common():
                if candidate not in visited:
                    cell = candidate
                    confidence *= count / total
                    visited.add(cell)
                    break
            else:
                break

        cx = cell % self.grid.nx
        cy = cell // self.grid.nx
        lon, lat = self.grid.cell_bbox(cx, cy).center
        alt = last.alt
        point = STPoint(t=last.t + horizon_s, lon=lon, lat=lat, alt=alt)
        return PredictionOutcome(
            point=point, horizon_s=horizon_s, model=self.name, confidence=confidence
        )

"""Dead-reckoning predictor: constant speed and course extrapolation."""

from __future__ import annotations

from repro.geo.geodesy import destination_point, haversine_m, initial_bearing_deg
from repro.forecasting.base import PredictionOutcome, Predictor
from repro.model.points import STPoint
from repro.model.trajectory import Trajectory


class DeadReckoningPredictor(Predictor):
    """Extrapolate along the current course at the current speed.

    Speed and course are estimated over the last ``window_s`` seconds of
    history (more robust to sensor noise than the final segment alone).
    Altitude, when present, extrapolates the recent vertical rate.
    """

    name = "dead_reckoning"

    def __init__(self, window_s: float = 60.0) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s

    def predict(self, history: Trajectory, horizon_s: float) -> PredictionOutcome:
        self._check(history, horizon_s)
        last = history[len(history) - 1]
        if len(history) == 1 or horizon_s == 0:
            return PredictionOutcome(
                point=last.with_time(last.t + horizon_s),
                horizon_s=horizon_s,
                model=self.name,
            )
        anchor = history.at_time(last.t - self.window_s)
        dt = last.t - anchor.t
        if dt <= 0:
            return PredictionOutcome(
                point=last.with_time(last.t + horizon_s),
                horizon_s=horizon_s,
                model=self.name,
            )
        dist = haversine_m(anchor.lon, anchor.lat, last.lon, last.lat)
        speed = dist / dt
        bearing = (
            initial_bearing_deg(anchor.lon, anchor.lat, last.lon, last.lat)
            if dist > 1.0
            else 0.0
        )
        lon, lat = destination_point(last.lon, last.lat, bearing, speed * horizon_s)
        alt = None
        if last.alt is not None and anchor.alt is not None:
            vrate = (last.alt - anchor.alt) / dt
            alt = max(0.0, last.alt + vrate * horizon_s)
        point = STPoint(t=last.t + horizon_s, lon=lon, lat=lat, alt=alt)
        return PredictionOutcome(point=point, horizon_s=horizon_s, model=self.name)

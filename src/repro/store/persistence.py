"""Store persistence: dump and restore the parallel store as N-Triples.

Data-at-rest needs to actually rest somewhere: the store serialises to
the same N-Triples interchange format the transformation layer speaks,
grouped by subject so reloads re-form the original subject documents
(and therefore the same placement decisions).
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import Iterable

from repro.rdf.ntriples import parse_ntriples, to_ntriples
from repro.rdf.terms import Triple
from repro.store.parallel import ParallelRDFStore
from repro.store.partition import Partitioner


def export_store(store: ParallelRDFStore, path: str) -> int:
    """Write every triple of the store to an N-Triples file.

    Triples are grouped by subject (documents stay contiguous). Returns
    the number of triples written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for partition in store.partitions:
            by_subject: dict[int, list[tuple[int, int]]] = defaultdict(list)
            for s, p, o in partition.match():
                by_subject[s].append((p, o))
            for s, pairs in by_subject.items():
                triples = [
                    Triple(store.dictionary.decode(s),
                           store.dictionary.decode(p),
                           store.dictionary.decode(o))
                    for p, o in pairs
                ]
                handle.write(to_ntriples(triples))
                count += len(triples)
    return count


def import_store(path: str, partitioner: Partitioner) -> ParallelRDFStore:
    """Rebuild a :class:`ParallelRDFStore` from an N-Triples file.

    Triples are re-grouped by subject before insertion so that placement
    (which is per subject document) is deterministic regardless of line
    order in the file.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    documents: dict[object, list[Triple]] = defaultdict(list)
    order: list[object] = []
    for triple in parse_ntriples(text):
        if triple.s not in documents:
            order.append(triple.s)
        documents[triple.s].append(triple)
    store = ParallelRDFStore(partitioner)
    for subject in order:
        store.add_document(documents[subject])
    return store


def roundtrip_equal(a: ParallelRDFStore, b: ParallelRDFStore) -> bool:
    """Whether two stores hold exactly the same triples (placement may
    differ when partitioners differ)."""
    def triple_set(store: ParallelRDFStore) -> set[str]:
        return {str(t) for t in store.match()}

    return triple_set(a) == triple_set(b)

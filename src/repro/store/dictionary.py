"""Term dictionary: bidirectional mapping between RDF terms and integers.

Triple stores never index raw terms — they encode every term once and
work on dense integer ids. The dictionary is shared across partitions so
ids are globally consistent (a real deployment would shard it; a single
dict preserves the semantics).
"""

from __future__ import annotations

from typing import Iterable

from repro.rdf.terms import Term


class TermDictionary:
    """Assigns stable integer ids to RDF terms.

    Ids are dense, starting at 0, in first-seen order. Terms must be
    hashable (all :mod:`repro.rdf.terms` types are).
    """

    def __init__(self) -> None:
        self._by_term: dict[Term, int] = {}
        self._by_id: list[Term] = []

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, term: Term) -> bool:
        return term in self._by_term

    def encode(self, term: Term) -> int:
        """Id of a term, assigning a new id on first sight."""
        existing = self._by_term.get(term)
        if existing is not None:
            return existing
        new_id = len(self._by_id)
        self._by_term[term] = new_id
        self._by_id.append(term)
        return new_id

    def encode_many(self, terms: Iterable[Term]) -> list[int]:
        """Bulk :meth:`encode`: one id list for a term sequence.

        First-sight id assignment happens in iteration order, exactly as
        if :meth:`encode` were called per term — the bulk form only drops
        the per-term method dispatch on the ingest hot path.
        """
        by_term = self._by_term
        by_id = self._by_id
        out: list[int] = []
        append = out.append
        for term in terms:
            existing = by_term.get(term)
            if existing is None:
                existing = len(by_id)
                by_term[term] = existing
                by_id.append(term)
            append(existing)
        return out

    def try_encode(self, term: Term) -> int | None:
        """Id of a term, or ``None`` if the term was never seen.

        Used on the query path: an unseen constant means zero matches, so
        queries must not pollute the dictionary.
        """
        return self._by_term.get(term)

    def decode(self, term_id: int) -> Term:
        """The term for an id; raises ``IndexError`` for unknown ids."""
        if term_id < 0:
            raise IndexError(f"invalid term id {term_id}")
        return self._by_id[term_id]

"""The multi-partition RDF store with subject-document routing.

Placement contract: *all triples of a subject land in one partition*
(chosen by the subject's spatio-temporal key when it has one, or by
subject hash otherwise). Star-shaped query fragments therefore evaluate
partition-locally, and spatially selective queries touch only the
partitions whose key ranges intersect the query region.

Parallelism is simulated: partitions are plain in-process structures, and
the executor measures per-partition work to model the makespan a real
cluster would see (max over partitions + coordination overhead). The
paper's claims under test — partition balance, pruning power, relative
speedup — survive this substitution; absolute cluster numbers do not,
and EXPERIMENTS.md says so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.geo.bbox import BBox
from repro.obs.clock import monotonic
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.rdf import vocabulary as V
from repro.rdf.terms import Literal, Term, Triple
from repro.store.dictionary import TermDictionary
from repro.store.partition import Partitioner
from repro.store.triple_store import TripleStore


@dataclass(frozen=True, slots=True)
class PartitionStats:
    """Balance statistics over the partitions.

    Attributes:
        triples_per_partition: Triple count per partition.
        subjects_per_partition: Distinct routed subjects per partition.
        imbalance: max/mean triple count (1.0 = perfectly balanced).
    """

    triples_per_partition: tuple[int, ...]
    subjects_per_partition: tuple[int, ...]
    imbalance: float


class ParallelRDFStore:
    """A dictionary-encoded triple store sharded over N partitions.

    Args:
        partitioner: Subject/key placement policy.
        metrics: Observability registry; when given (and enabled), inserts
            are timed into the ``store.add_document`` histogram and
            ``store.documents`` / ``store.triples`` /
            ``store.match_calls`` / ``store.partition_scans`` counters
            track load and pruning effectiveness.
    """

    def __init__(
        self, partitioner: Partitioner, metrics: MetricsRegistry | None = None
    ) -> None:
        self.partitioner = partitioner
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._obs = self.metrics.enabled
        self._add_latency = self.metrics.histogram("store.add_document")
        self._docs_counter = self.metrics.counter("store.documents")
        self._triples_counter = self.metrics.counter("store.triples")
        self._match_counter = self.metrics.counter("store.match_calls")
        self._scan_counter = self.metrics.counter("store.partition_scans")
        self.dictionary = TermDictionary()
        self.partitions = [TripleStore() for __ in range(partitioner.n_partitions)]
        self._subject_partition: dict[int, int] = {}
        # Spatial pruning is sound only while every *position* document
        # (one carrying geo coordinates) was routed by its st-key. A single
        # keyless position document could land anywhere, so pruning must
        # be disabled from then on.
        self._spatial_pruning_sound = True

    @property
    def n_partitions(self) -> int:
        """Number of partitions."""
        return len(self.partitions)

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    # -- loading -------------------------------------------------------------

    def _place(self, doc: list[Triple], subject_id: int) -> int:
        """Route one document's subject to a partition (placement-stable)."""
        partition_idx = self._subject_partition.get(subject_id)
        if partition_idx is None:
            st_key = self._extract_st_key(doc) if self.partitioner.uses_spatial_key else None
            if st_key is not None:
                partition_idx = self.partitioner.partition_for_key(st_key)
            else:
                partition_idx = self.partitioner.partition_for_subject(subject_id)
                if self.partitioner.uses_spatial_key and self._is_position_doc(doc):
                    self._spatial_pruning_sound = False
            self._subject_partition[subject_id] = partition_idx
        return partition_idx

    def _encode_document(self, triples: Iterable[Triple]) -> tuple[int, list[tuple[int, int, int]]]:
        """Validate + dictionary-encode one document into id triples."""
        doc = list(triples)
        if not doc:
            raise ValueError("empty document")
        subject = doc[0].s
        if any(t.s != subject for t in doc):
            raise ValueError("a document must contain a single subject")
        subject_id = self.dictionary.encode(subject)
        partition_idx = self._place(doc, subject_id)
        # One bulk encode over the interleaved (p, o, p, o, ...) stream:
        # identical first-sight id assignment order to per-term encode().
        flat = self.dictionary.encode_many(
            term for triple in doc for term in (triple.p, triple.o)
        )
        pairs = iter(flat)
        ids = [(subject_id, p, o) for p, o in zip(pairs, pairs)]
        return partition_idx, ids

    def add_document(self, triples: Iterable[Triple]) -> int:
        """Insert all triples of one subject document; returns the partition.

        The document's subject is taken from its first triple; mixing
        subjects in one document is an error. Repeated documents for the
        same subject stay on the subject's original partition (placement
        stability), regardless of key drift.
        """
        obs = self._obs
        insert_started = monotonic() if obs else 0.0
        partition_idx, ids = self._encode_document(triples)
        self.partitions[partition_idx].add_triples(ids)
        if obs:
            self._docs_counter.inc()
            self._triples_counter.inc(len(ids))
            self._add_latency.record(monotonic() - insert_started)
        return partition_idx

    def add_documents(self, documents: Iterable[Iterable[Triple]]) -> int:
        """Bulk-insert many subject documents; returns the document count.

        The micro-batch ingest path: one dictionary-encode pass over the
        whole batch, id triples grouped per partition and landed with one
        :meth:`TripleStore.add_triples` call each — instead of per-document
        method dispatch, timing and counter traffic. Placement decisions
        are made in document order, so the final store state is identical
        to calling :meth:`add_document` in a loop; the
        ``store.add_document`` histogram receives one amortized per-
        document sample per batch rather than one sample per document.
        """
        obs = self._obs
        insert_started = monotonic() if obs else 0.0
        per_partition: dict[int, list[tuple[int, int, int]]] = {}
        n_docs = 0
        n_triples = 0
        for document in documents:
            partition_idx, ids = self._encode_document(document)
            per_partition.setdefault(partition_idx, []).extend(ids)
            n_docs += 1
            n_triples += len(ids)
        for partition_idx, ids in per_partition.items():
            self.partitions[partition_idx].add_triples(ids)
        if obs and n_docs:
            self._docs_counter.inc(n_docs)
            self._triples_counter.inc(n_triples)
            self._add_latency.record(
                (monotonic() - insert_started) / n_docs
            )
        return n_docs

    def add_id_documents(
        self,
        documents: Iterable[tuple[int, list[tuple[int, int, int]], int | None, bool]],
    ) -> int:
        """Bulk-insert pre-encoded subject documents (the compiled path).

        Each document is ``(subject_id, id_triples, st_key, is_position)``
        as assembled by :class:`~repro.rdf.emitter.CompiledReportEmitter`
        against this store's :attr:`dictionary`. Placement mirrors the
        object path's :meth:`_place` exactly — routed by the supplied
        spatio-temporal key when the partitioner uses one, by subject
        hash otherwise, placement-stable per subject — without decoding a
        single term. A keyless position document under a spatial
        partitioner still voids :meth:`partitions_for_bbox` pruning, and
        the ``store.documents`` / ``store.triples`` counters and the one
        amortized ``store.add_document`` sample behave exactly like
        :meth:`add_documents`.
        """
        obs = self._obs
        insert_started = monotonic() if obs else 0.0
        per_partition: dict[int, list[tuple[int, int, int]]] = {}
        n_docs = 0
        n_triples = 0
        placed = self._subject_partition
        partitioner = self.partitioner
        uses_key = partitioner.uses_spatial_key
        for subject_id, ids, st_key, is_position in documents:
            if not ids:
                raise ValueError("empty document")
            partition_idx = placed.get(subject_id)
            if partition_idx is None:
                if uses_key and st_key is not None:
                    partition_idx = partitioner.partition_for_key(st_key)
                else:
                    partition_idx = partitioner.partition_for_subject(subject_id)
                    if uses_key and is_position:
                        self._spatial_pruning_sound = False
                placed[subject_id] = partition_idx
            bucket = per_partition.get(partition_idx)
            if bucket is None:
                per_partition[partition_idx] = bucket = []
            bucket.extend(ids)
            n_docs += 1
            n_triples += len(ids)
        for partition_idx, ids in per_partition.items():
            self.partitions[partition_idx].add_triples(ids)
        if obs and n_docs:
            self._docs_counter.inc(n_docs)
            self._triples_counter.inc(n_triples)
            self._add_latency.record((monotonic() - insert_started) / n_docs)
        return n_docs

    @staticmethod
    def _extract_st_key(doc: list[Triple]) -> int | None:
        for triple in doc:
            if triple.p == V.PROP_ST_KEY and isinstance(triple.o, Literal):
                return int(triple.o.value)
        return None

    @staticmethod
    def _is_position_doc(doc: list[Triple]) -> bool:
        """Whether the document carries geo coordinates (prunable data)."""
        return any(triple.p == V.PROP_LON for triple in doc)

    # -- matching --------------------------------------------------------------

    def match(
        self,
        s: Term | None = None,
        p: Term | None = None,
        o: Term | None = None,
        partitions: Iterable[int] | None = None,
    ) -> Iterator[Triple]:
        """Iterate decoded triples matching a term pattern.

        Args:
            partitions: Restrict the scan to these partitions (pruning);
                default scans all.
        """
        ids = []
        for term in (s, p, o):
            if term is None:
                ids.append(None)
            else:
                term_id = self.dictionary.try_encode(term)
                if term_id is None:
                    return
                ids.append(term_id)
        targets = (
            range(self.n_partitions) if partitions is None else list(partitions)
        )
        if self._obs:
            self._match_counter.inc()
            self._scan_counter.inc(len(targets))
        decode = self.dictionary.decode
        for idx in targets:
            for ss, pp, oo in self.partitions[idx].match(*ids):
                yield Triple(decode(ss), decode(pp), decode(oo))

    def count(self, s: Term | None = None, p: Term | None = None, o: Term | None = None) -> int:
        """Count matches of a term pattern across all partitions."""
        ids = []
        for term in (s, p, o):
            if term is None:
                ids.append(None)
            else:
                term_id = self.dictionary.try_encode(term)
                if term_id is None:
                    return 0
                ids.append(term_id)
        return sum(p_.count_matches(*ids) for p_ in self.partitions)

    # -- deletion & retention ---------------------------------------------------

    def remove_subject(self, subject: Term) -> int:
        """Delete every triple of one subject; returns triples removed.

        The subject's placement record is dropped too, so a re-inserted
        document is routed afresh.
        """
        subject_id = self.dictionary.try_encode(subject)
        if subject_id is None:
            return 0
        partition_idx = self._subject_partition.get(subject_id)
        candidates = (
            [partition_idx] if partition_idx is not None else range(self.n_partitions)
        )
        removed = 0
        for idx in candidates:
            doomed = list(self.partitions[idx].match(s=subject_id))
            for s, p, o in doomed:
                self.partitions[idx].remove(s, p, o)
            removed += len(doomed)
        self._subject_partition.pop(subject_id, None)
        return removed

    def expire_before(self, t: float) -> tuple[int, int]:
        """Data retention: delete position nodes with timestamp < ``t``.

        Only subjects carrying a ``time:inSeconds`` literal are eligible —
        entity metadata, zones and interval-timestamped events survive.

        Returns:
            ``(subjects removed, triples removed)``.
        """
        timestamp_id = self.dictionary.try_encode(V.PROP_TIMESTAMP)
        if timestamp_id is None:
            return (0, 0)
        doomed: list[Term] = []
        for partition in self.partitions:
            for s, __p, o in partition.match(p=timestamp_id):
                term = self.dictionary.decode(o)
                if isinstance(term, Literal):
                    try:
                        if float(term.value) < t:
                            doomed.append(self.dictionary.decode(s))
                    except (TypeError, ValueError):
                        continue
        triples_removed = 0
        for subject in doomed:
            triples_removed += self.remove_subject(subject)
        return (len(doomed), triples_removed)

    # -- pruning & statistics --------------------------------------------------

    def partitions_for_bbox(self, bbox: BBox) -> set[int]:
        """Partitions that can hold position documents inside the box.

        Falls back to *all* partitions when any position document was
        routed without a spatio-temporal key (pruning would be unsound).
        """
        if not self._spatial_pruning_sound:
            return set(range(self.n_partitions))
        return self.partitioner.partitions_for_bbox(bbox)

    def stats(self) -> PartitionStats:
        """Balance statistics for experiment E4."""
        triples = tuple(len(p) for p in self.partitions)
        subjects: list[int] = [0] * self.n_partitions
        # lint: allow[D5] integer bucket counting is commutative — every iteration order yields the same subjects_per_partition tuple
        for partition_idx in self._subject_partition.values():
            subjects[partition_idx] += 1
        mean = float(np.mean(triples)) if triples else 0.0
        imbalance = (max(triples) / mean) if mean > 0 else 1.0
        return PartitionStats(
            triples_per_partition=triples,
            subjects_per_partition=tuple(subjects),
            imbalance=imbalance,
        )

"""One partition: an in-memory triple store with three orderings.

Triples are stored as integer id tuples in nested-dict indexes — SPO, POS
and OSP — so every triple-pattern shape (bound/unbound combinations of
subject, predicate, object) has an index-backed access path.
"""

from __future__ import annotations

from typing import Iterable, Iterator

_WILDCARD = None


class TripleStore:
    """An id-encoded triple store for one partition.

    All methods speak integer ids; the owning :class:`ParallelRDFStore`
    translates terms through the shared dictionary.
    """

    def __init__(self) -> None:
        # s -> p -> set[o]
        self._spo: dict[int, dict[int, set[int]]] = {}
        # p -> o -> set[s]
        self._pos: dict[int, dict[int, set[int]]] = {}
        # o -> s -> set[p]
        self._osp: dict[int, dict[int, set[int]]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, s: int, p: int, o: int) -> bool:
        """Insert one triple; returns False when it already existed."""
        objects = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in objects:
            return False
        objects.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._count += 1
        return True

    def add_triples(self, triples: Iterable[tuple[int, int, int]]) -> int:
        """Bulk-insert id triples; returns how many were actually new.

        The hot-path batch insert: one method dispatch for the whole
        batch, index dict lookups hoisted out of the loop. Semantically
        identical to calling :meth:`add` per triple (same final indexes,
        same new-triple count) — the micro-batch store path relies on
        that equivalence.
        """
        spo_get = self._spo.setdefault
        pos_get = self._pos.setdefault
        osp_get = self._osp.setdefault
        added = 0
        for s, p, o in triples:
            objects = spo_get(s, {}).setdefault(p, set())
            if o in objects:
                continue
            objects.add(o)
            pos_get(p, {}).setdefault(o, set()).add(s)
            osp_get(o, {}).setdefault(s, set()).add(p)
            added += 1
        self._count += added
        return added

    def remove(self, s: int, p: int, o: int) -> bool:
        """Delete one triple; returns False when it was absent."""
        objects = self._spo.get(s, {}).get(p)
        if objects is None or o not in objects:
            return False
        objects.discard(o)
        self._pos[p][o].discard(s)
        self._osp[o][s].discard(p)
        self._count -= 1
        return True

    def contains(self, s: int, p: int, o: int) -> bool:
        """Membership test for a fully bound triple."""
        return o in self._spo.get(s, {}).get(p, ())

    def match(
        self,
        s: int | None = _WILDCARD,
        p: int | None = _WILDCARD,
        o: int | None = _WILDCARD,
    ) -> Iterator[tuple[int, int, int]]:
        """Iterate triples matching a pattern; ``None`` is a wildcard.

        Picks the best index for the bound positions:

        ========= =========
        pattern   index
        ========= =========
        s p o     SPO probe
        s p ?     SPO
        s ? o     OSP
        s ? ?     SPO
        ? p o     POS
        ? p ?     POS
        ? ? o     OSP
        ? ? ?     SPO scan
        ========= =========
        """
        if s is not None:
            if p is not None:
                objects = self._spo.get(s, {}).get(p, ())
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                else:
                    for oo in objects:
                        yield (s, p, oo)
            elif o is not None:
                for pp in self._osp.get(o, {}).get(s, ()):
                    yield (s, pp, o)
            else:
                for pp, objects in self._spo.get(s, {}).items():
                    for oo in objects:
                        yield (s, pp, oo)
        elif p is not None:
            by_o = self._pos.get(p, {})
            if o is not None:
                for ss in by_o.get(o, ()):
                    yield (ss, p, o)
            else:
                for oo, subjects in by_o.items():
                    for ss in subjects:
                        yield (ss, p, oo)
        elif o is not None:
            for ss, predicates in self._osp.get(o, {}).items():
                for pp in predicates:
                    yield (ss, pp, o)
        else:
            for ss, by_p in self._spo.items():
                for pp, objects in by_p.items():
                    for oo in objects:
                        yield (ss, pp, oo)

    def count_matches(
        self,
        s: int | None = _WILDCARD,
        p: int | None = _WILDCARD,
        o: int | None = _WILDCARD,
    ) -> int:
        """Number of triples matching a pattern (cheap for common shapes)."""
        if s is None and p is None and o is None:
            return self._count
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if s is None and p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is None and p is not None and o is None:
            return sum(len(subs) for subs in self._pos.get(p, {}).values())
        return sum(1 for __ in self.match(s, p, o))

    def subjects(self) -> Iterator[int]:
        """All distinct subject ids."""
        return iter(self._spo)

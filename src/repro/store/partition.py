"""Partitioning strategies for the parallel RDF store.

The unit of placement is the *subject document*: all triples sharing a
subject are routed together, so star-shaped queries never cross partitions.
Spatially-aware strategies route by the subject's spatio-temporal key
(see :meth:`repro.rdf.transform.RdfTransformer.st_key`); subjects without
a key (entity metadata, complex events) fall back to hashing.

Strategies:

- :class:`HashPartitioner` — perfect balance, zero locality (baseline).
- :class:`GridPartitioner` — contiguous runs of grid cells per partition;
  good locality, skew-prone under non-uniform traffic.
- :class:`HilbertPartitioner` — cells ordered along a Hilbert curve and
  split into equal-count ranges from a sample; locality *and* balance.
"""

from __future__ import annotations

import bisect

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.geo.hilbert import hilbert_xy2d


class Partitioner:
    """Strategy interface: route subjects and prune partitions."""

    #: Whether the strategy wants to route keyed subjects by their
    #: spatio-temporal key. Hash sets this False: it routes everything by
    #: subject id, which is what gives it its perfect balance.
    uses_spatial_key: bool = True

    def __init__(self, n_partitions: int) -> None:
        if n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        self.n_partitions = n_partitions

    def partition_for_key(self, st_key: int) -> int:
        """Partition of a subject with a spatio-temporal key."""
        raise NotImplementedError

    def partition_for_subject(self, subject_id: int) -> int:
        """Fallback partition for subjects without a key."""
        return subject_id % self.n_partitions

    def partitions_for_bbox(self, bbox: BBox) -> set[int]:
        """Partitions that may hold position subjects inside ``bbox``.

        Hash has no locality, so it must return every partition; spatial
        strategies return the subset covering the box — this is the pruning
        power experiment E4 measures.
        """
        return set(range(self.n_partitions))

    @property
    def name(self) -> str:
        """Strategy name used in benchmark tables."""
        return type(self).__name__.removesuffix("Partitioner").lower()


class HashPartitioner(Partitioner):
    """Route everything by subject id hash; ignore geometry entirely."""

    uses_spatial_key = False

    def partition_for_key(self, st_key: int) -> int:
        # Never used for routing (uses_spatial_key is False); kept for the
        # interface so pruning experiments can call it uniformly.
        return (st_key * 2654435761) % self.n_partitions


class GridPartitioner(Partitioner):
    """Split the grid's cells into ``n`` contiguous row-major runs."""

    def __init__(self, grid: GeoGrid, n_partitions: int) -> None:
        super().__init__(n_partitions)
        self.grid = grid
        cells = grid.n_cells
        if n_partitions > cells:
            raise ValueError("more partitions than grid cells")
        self._cells_per_part = cells / n_partitions

    def _partition_of_cell(self, cell_id: int) -> int:
        return min(int(cell_id / self._cells_per_part), self.n_partitions - 1)

    def partition_for_key(self, st_key: int) -> int:
        from repro.rdf.transform import RdfTransformer

        cell_id, __ = RdfTransformer.decode_st_key(st_key)
        return self._partition_of_cell(cell_id % self.grid.n_cells)

    def partitions_for_bbox(self, bbox: BBox) -> set[int]:
        out = set()
        for ix, iy in self.grid.cells_intersecting(bbox):
            out.add(self._partition_of_cell(iy * self.grid.nx + ix))
        return out


class QuadTreePartitioner(Partitioner):
    """Load-adaptive spatial partitioning via a quadtree over a sample.

    A quadtree is grown over the sampled traffic (leaf capacity set so
    the tree produces a few leaves per partition); leaves are then
    ordered along a Hilbert curve of their centres and cut into
    contiguous runs of roughly equal sample weight. The tree adapts the
    *resolution* to the load (hotspots split finer, empty ocean stays
    coarse) while the curve order keeps each partition spatially
    contiguous — balance and pruning together, where greedy bin-packing
    of leaves would buy balance at the cost of all locality.

    Args:
        grid: The st-key minting grid (keys decode through it).
        n_partitions: Number of partitions.
        sample_keys: Sampled st-keys representing the load distribution;
            an empty sample degenerates to one leaf (all → partition 0).
        leaves_per_partition: Target quadtree granularity.
    """

    def __init__(
        self,
        grid: GeoGrid,
        n_partitions: int,
        sample_keys: list[int] | None = None,
        leaves_per_partition: int = 8,
    ) -> None:
        super().__init__(n_partitions)
        self.grid = grid
        sample_keys = sample_keys or []
        positions = [self._key_position(key) for key in sample_keys]
        capacity = max(1, len(positions) // (n_partitions * leaves_per_partition))
        from repro.geo.quadtree import QuadTree

        self._tree = QuadTree(grid.bbox, capacity=capacity, max_depth=10)
        for lon, lat in positions:
            self._tree.insert(lon, lat)
        self._leaf_partition: dict[BBox, int] = {}
        leaves = list(self._tree.leaves())
        # Order leaves spatially along a Hilbert curve of their centres,
        # then cut the sequence into n contiguous runs of ~equal weight.
        order = 8
        side = 1 << order

        def curve_position(leaf_bbox: BBox) -> int:
            cx, cy = leaf_bbox.center
            ix = min(side - 1, int((cx - grid.bbox.min_lon) / grid.bbox.width * side))
            iy = min(side - 1, int((cy - grid.bbox.min_lat) / grid.bbox.height * side))
            return hilbert_xy2d(order, max(0, ix), max(0, iy))

        leaves.sort(key=lambda lc: curve_position(lc[0]))
        total_weight = sum(max(count, 1) for __, count in leaves)
        target_weight = total_weight / n_partitions
        cumulative = 0.0
        for leaf_bbox, count in leaves:
            partition = min(int(cumulative / target_weight), n_partitions - 1)
            self._leaf_partition[leaf_bbox] = partition
            cumulative += max(count, 1)

    def _key_position(self, st_key: int) -> tuple[float, float]:
        from repro.rdf.transform import RdfTransformer

        cell_id, __ = RdfTransformer.decode_st_key(st_key)
        cell_id %= self.grid.n_cells
        ix = cell_id % self.grid.nx
        iy = cell_id // self.grid.nx
        return self.grid.cell_bbox(ix, iy).center

    def partition_for_key(self, st_key: int) -> int:
        lon, lat = self._key_position(st_key)
        leaf = self._tree.leaf_bbox(lon, lat)
        return self._leaf_partition.get(leaf, 0)

    def partitions_for_bbox(self, bbox: BBox) -> set[int]:
        out = set()
        for leaf_bbox, partition in self._leaf_partition.items():
            if leaf_bbox.intersects(bbox):
                out.add(partition)
        return out or set(range(self.n_partitions))


class HilbertPartitioner(Partitioner):
    """Order cells along a Hilbert curve, split into balanced ranges.

    Args:
        grid: The spatial grid the st-keys were minted against. The grid
            must be square with a power-of-two side for the curve mapping;
            other grids are embedded into the smallest covering curve.
        n_partitions: Number of ranges.
        sample_keys: Optional sample of st-keys; when given, range
            boundaries are the sample's Hilbert-position quantiles so
            partitions balance under spatial skew. Without a sample the
            curve is split into equal-length ranges.
    """

    def __init__(
        self,
        grid: GeoGrid,
        n_partitions: int,
        sample_keys: list[int] | None = None,
    ) -> None:
        super().__init__(n_partitions)
        self.grid = grid
        self._order = self._curve_order(max(grid.nx, grid.ny))
        side = 1 << self._order
        self._side = side
        total = side * side
        if sample_keys:
            positions = sorted(self._key_to_curve(k) for k in sample_keys)
            self._bounds = [
                positions[min(len(positions) - 1, (i + 1) * len(positions) // n_partitions)]
                for i in range(n_partitions - 1)
            ]
        else:
            self._bounds = [
                (i + 1) * total // n_partitions for i in range(n_partitions - 1)
            ]

    @staticmethod
    def _curve_order(side: int) -> int:
        order = 0
        while (1 << order) < side:
            order += 1
        return max(order, 1)

    def _cell_to_curve(self, cell_id: int) -> int:
        ix = cell_id % self.grid.nx
        iy = cell_id // self.grid.nx
        return hilbert_xy2d(self._order, ix, iy)

    def _key_to_curve(self, st_key: int) -> int:
        from repro.rdf.transform import RdfTransformer

        cell_id, __ = RdfTransformer.decode_st_key(st_key)
        return self._cell_to_curve(cell_id % self.grid.n_cells)

    def _partition_of_curve(self, position: int) -> int:
        return bisect.bisect_right(self._bounds, position)

    def partition_for_key(self, st_key: int) -> int:
        return self._partition_of_curve(self._key_to_curve(st_key))

    def partitions_for_bbox(self, bbox: BBox) -> set[int]:
        out = set()
        for ix, iy in self.grid.cells_intersecting(bbox):
            position = hilbert_xy2d(self._order, ix, iy)
            out.add(self._partition_of_curve(position))
        return out

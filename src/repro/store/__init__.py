"""Parallel RDF store with spatio-temporal partitioning.

Implements the paper's "spatiotemporal query-answering component ...
parallel query processing techniques ... over interlinked data stored in
parallel RDF stores, using sophisticated RDF partitioning algorithms":

- :mod:`repro.store.dictionary` — term dictionary (term ↔ integer id).
- :mod:`repro.store.triple_store` — one partition: SPO/POS/OSP-indexed
  in-memory triple store over encoded ids.
- :mod:`repro.store.partition` — partitioning strategies: hash (baseline),
  uniform spatial grid, Hilbert-curve ranges (locality + balance).
- :mod:`repro.store.parallel` — the multi-partition store with
  subject-document routing, partition pruning by spatio-temporal key and a
  simulated-parallel execution cost model.
"""

from repro.store.dictionary import TermDictionary
from repro.store.triple_store import TripleStore
from repro.store.partition import (
    Partitioner,
    HashPartitioner,
    GridPartitioner,
    HilbertPartitioner,
    QuadTreePartitioner,
)
from repro.store.parallel import ParallelRDFStore, PartitionStats
from repro.store.persistence import export_store, import_store

__all__ = [
    "TermDictionary",
    "TripleStore",
    "Partitioner",
    "HashPartitioner",
    "GridPartitioner",
    "HilbertPartitioner",
    "QuadTreePartitioner",
    "ParallelRDFStore",
    "PartitionStats",
    "export_store",
    "import_store",
]

"""The end-to-end mobility analytics pipeline.

Per report (in event-time order):

1. **in-situ cleaning** — duplicate and plausibility filters;
2. **synopses** — keep/drop with critical-point annotation;
3. **transformation + storage** — kept reports become RDF documents in the
   parallel store (entities and zones are loaded at construction);
4. **simple events** — derived from every *clean* report (detection runs
   on the full-rate stream: alerting must not wait for the synopsis);
5. **complex events** — collision risk, loitering, rendezvous, capacity
   demand; matches are persisted as RDF too.

Every stage is timed per record; :meth:`MobilityPipeline.run` returns a
:class:`PipelineResult` with counts, latency summaries and handles to the
store/query layer for follow-up analysis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.cep.detectors import (
    CapacityDemandDetector,
    CollisionRiskDetector,
    LoiteringDetector,
    RendezvousDetector,
)
from repro.cep.simple import SimpleEventExtractor
from repro.core.config import PipelineConfig
from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.geo.polygon import Polygon
from repro.insitu.filters import DeduplicateFilter, PlausibilityFilter
from repro.insitu.synopses import SynopsesGenerator
from repro.model.entities import EntityRegistry
from repro.model.events import ComplexEvent, SimpleEvent
from repro.model.points import Domain
from repro.model.reports import PositionReport
from repro.query.executor import QueryExecutor
from repro.rdf.transform import RdfTransformer
from repro.store.parallel import ParallelRDFStore
from repro.sources.weather import WeatherGridSource
from repro.store.partition import GridPartitioner, HashPartitioner, HilbertPartitioner
from repro.streams.metrics import LatencyHistogram


@dataclass
class PipelineResult:
    """Counters and latency summaries of one pipeline run.

    Attributes map 1:1 to the numbers E2/E7 report.
    """

    reports_in: int = 0
    reports_clean: int = 0
    reports_kept: int = 0
    triples_stored: int = 0
    simple_events: list[SimpleEvent] = field(default_factory=list)
    complex_events: list[ComplexEvent] = field(default_factory=list)
    stage_latency: dict[str, dict[str, float]] = field(default_factory=dict)
    end_to_end: dict[str, float] = field(default_factory=dict)
    wall_time_s: float = 0.0

    @property
    def compression_ratio(self) -> float:
        """Fraction of clean reports dropped by the synopses stage."""
        if self.reports_clean == 0:
            return 0.0
        return 1.0 - self.reports_kept / self.reports_clean

    @property
    def throughput_rps(self) -> float:
        """End-to-end reports per wall-clock second."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.reports_in / self.wall_time_s


class MobilityPipeline:
    """The full datAcron flow over one geographic world."""

    def __init__(
        self,
        bbox: BBox,
        config: PipelineConfig | None = None,
        registry: EntityRegistry | None = None,
        zones: Iterable[Polygon] = (),
        domain: Domain = Domain.MARITIME,
        weather: "WeatherGridSource | None" = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.registry = registry or EntityRegistry()
        self.zones = list(zones)
        self.domain = domain
        self.grid = GeoGrid(bbox=bbox, nx=self.config.grid_nx, ny=self.config.grid_ny)

        # In-situ layer.
        self._dedup = DeduplicateFilter()
        self._plausibility = PlausibilityFilter(registry=self.registry)
        if self.config.adaptive_keep_rate is not None:
            from repro.insitu.adaptive import AdaptiveConfig, AdaptiveSynopsesGenerator

            self._synopses = AdaptiveSynopsesGenerator(
                base=self.config.synopses,
                adaptive=AdaptiveConfig(target_keep_rate=self.config.adaptive_keep_rate),
            )
        else:
            self._synopses = SynopsesGenerator(self.config.synopses)

        # Transformation + storage.
        self.transformer = RdfTransformer(
            st_grid=self.grid, time_bucket_s=self.config.time_bucket_s
        )
        self.store = ParallelRDFStore(self._build_partitioner())
        self.weather = weather
        self._stored_weather_cells: set[tuple[int, float]] = set()
        self.executor = QueryExecutor(self.store)
        if self.config.persist_rdf:
            for entity in self.registry:
                self.store.add_document(self.transformer.entity_to_triples(entity))
            for zone in self.zones:
                self.store.add_document(self.transformer.zone_to_triples(zone))

        # Analytics layer.
        self._extractor = SimpleEventExtractor(
            config=self.config.simple_events,
            zones=self.zones,
            registry=self.registry,
            grid=None,
        )
        self._collision = CollisionRiskDetector(
            cpa_threshold_m=self.config.collision_cpa_m,
            tcpa_threshold_s=self.config.collision_tcpa_s,
        )
        self._loitering = LoiteringDetector(
            radius_m=self.config.loitering_radius_m,
            min_duration_s=self.config.loitering_duration_s,
        )
        self._rendezvous = RendezvousDetector(
            radius_m=self.config.rendezvous_radius_m,
            min_duration_s=self.config.rendezvous_duration_s,
        )
        self._capacity = (
            CapacityDemandDetector(
                sectors=self.zones,
                capacity=self.config.capacity_limit,
                window_s=self.config.capacity_window_s,
            )
            if domain is Domain.AVIATION and self.zones
            else None
        )
        if self.config.hotspots:
            from repro.cep.hotspot_stream import StreamingHotspotDetector

            self._hotspots = StreamingHotspotDetector(
                self.grid,
                window_s=self.config.hotspot_window_s,
                z_threshold=self.config.hotspot_z_threshold,
            )
        else:
            self._hotspots = None

        self._latency = {
            stage: LatencyHistogram()
            for stage in ("clean", "synopses", "rdf", "events", "detectors")
        }
        self._end_to_end = LatencyHistogram()
        self._result = PipelineResult()

    def _build_partitioner(self):
        n = self.config.n_partitions
        if self.config.partitioner == "hash":
            return HashPartitioner(n)
        if self.config.partitioner == "grid":
            return GridPartitioner(self.grid, n)
        return HilbertPartitioner(self.grid, n)

    # -- processing -------------------------------------------------------------

    def process_report(self, report: PositionReport) -> list[ComplexEvent]:
        """Push one report through every stage; returns new complex events."""
        result = self._result
        result.reports_in += 1
        record_started = time.perf_counter()

        started = record_started
        ok = self._dedup.accept(report) and self._plausibility.accept(report)
        self._latency["clean"].record(time.perf_counter() - started)
        if not ok:
            self._end_to_end.record(time.perf_counter() - record_started)
            return []
        result.reports_clean += 1

        started = time.perf_counter()
        annotated, keep = self._synopses.process(report)
        self._latency["synopses"].record(time.perf_counter() - started)

        if keep:
            result.reports_kept += 1
            if self.config.persist_rdf:
                started = time.perf_counter()
                triples = self.transformer.report_to_triples(annotated)
                if self.config.interlink:
                    triples.extend(self._interlink(report, triples[0].s))
                self.store.add_document(triples)
                result.triples_stored += len(triples)
                self._latency["rdf"].record(time.perf_counter() - started)
        elif self.config.persist_rdf and self.config.persist_raw_reports:
            started = time.perf_counter()
            triples = self.transformer.report_to_triples(report)
            self.store.add_document(triples)
            result.triples_stored += len(triples)
            self._latency["rdf"].record(time.perf_counter() - started)

        started = time.perf_counter()
        simple_events = self._extractor.process(report)
        result.simple_events.extend(simple_events)
        self._latency["events"].record(time.perf_counter() - started)

        started = time.perf_counter()
        new_complex: list[ComplexEvent] = []
        new_complex.extend(self._collision.process(report))
        new_complex.extend(self._loitering.process(report))
        for event in simple_events:
            new_complex.extend(self._rendezvous.process(event))
        new_complex.extend(self._rendezvous.tick(report.t))
        if self._capacity is not None:
            new_complex.extend(self._capacity.process(report))
        if self._hotspots is not None:
            new_complex.extend(self._hotspots.process(report))
        self._latency["detectors"].record(time.perf_counter() - started)

        for event in new_complex:
            result.complex_events.append(event)
            if self.config.persist_rdf:
                triples = self.transformer.event_to_triples(event)
                self.store.add_document(triples)
                result.triples_stored += len(triples)

        self._end_to_end.record(time.perf_counter() - record_started)
        return new_complex

    def _interlink(self, report: PositionReport, node) -> list:
        """Online integration: zone containment + weather enrichment links."""
        from repro.rdf import vocabulary as V
        from repro.rdf.terms import Triple
        from repro.rdf.transform import weather_iri, zone_iri

        links = []
        for zone in self.zones:
            if zone.contains(report.lon, report.lat):
                links.append(Triple(node, V.PROP_WITHIN_ZONE, zone_iri(zone.name)))
        if self.weather is not None:
            cell = self.weather.observation_at(report.lon, report.lat, report.t)
            cell_key = (cell.cell_id, cell.t_start)
            if cell_key not in self._stored_weather_cells:
                self._stored_weather_cells.add(cell_key)
                weather_doc = self.transformer.weather_to_triples(cell)
                self.store.add_document(weather_doc)
                self._result.triples_stored += len(weather_doc)
            links.append(
                Triple(node, V.PROP_HAS_WEATHER, weather_iri(cell.cell_id, cell.t_start))
            )
        return links

    def run(self, reports: Iterable[PositionReport]) -> PipelineResult:
        """Process a whole (event-time ordered) stream and finalize."""
        run_started = time.perf_counter()
        for report in reports:
            self.process_report(report)
        for detector in (self._capacity, self._hotspots):
            if detector is None:
                continue
            for event in detector.flush():
                self._result.complex_events.append(event)
                if self.config.persist_rdf:
                    self.store.add_document(self.transformer.event_to_triples(event))
        self._result.wall_time_s = time.perf_counter() - run_started
        self._result.stage_latency = {
            stage: hist.summary() for stage, hist in self._latency.items()
        }
        self._result.end_to_end = self._end_to_end.summary()
        return self._result

    @property
    def result(self) -> PipelineResult:
        """The (possibly still accumulating) run result."""
        return self._result

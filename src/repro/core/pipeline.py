"""The end-to-end mobility analytics pipeline.

Per report (in event-time order):

1. **in-situ cleaning** — duplicate and plausibility filters;
2. **synopses** — keep/drop with critical-point annotation;
3. **transformation + storage** — kept reports become RDF documents in the
   parallel store (entities and zones are loaded at construction);
4. **simple events** — derived from every *clean* report (detection runs
   on the full-rate stream: alerting must not wait for the synopsis);
5. **complex events** — collision risk, loitering, rendezvous, capacity
   demand; matches are persisted as RDF too.

Every stage is timed per record; :meth:`MobilityPipeline.run` returns a
:class:`PipelineResult` with counts, latency summaries and handles to the
store/query layer for follow-up analysis.
"""

from __future__ import annotations

import copy
import itertools
import math
import random
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

import numpy as np

from repro.cep.detectors import (
    CapacityDemandDetector,
    CollisionRiskDetector,
    LoiteringDetector,
    RendezvousDetector,
)
from repro.cep.simple import _METERS_PER_DEG_LAT_FLOOR, SimpleEventExtractor
from repro.core.config import PipelineConfig
from repro.core.recordbatch import RecordBatch, recordbatches
from repro.core.results import canonical_bytes, digest_of
from repro.geo.bbox import BBox
from repro.geo.geodesy import EARTH_RADIUS_M, haversine_m_arrays
from repro.geo.grid import GeoGrid
from repro.geo.polygon import Polygon
from repro.geo.zone_index import PREFILTER_MIN_ZONES, ZoneIndex
from repro.hashing import stable_hash
from repro.insitu.filters import DeduplicateFilter, PlausibilityFilter
from repro.insitu.synopses import SynopsesGenerator
from repro.model.entities import EntityRegistry
from repro.obs.clock import monotonic
from repro.model.events import ComplexEvent, SimpleEvent
from repro.model.points import Domain
from repro.model.reports import PositionReport
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_SPAN
from repro.query.executor import QueryExecutor
from repro.rdf.emitter import CompiledReportEmitter
from repro.rdf.transform import RdfTransformer
from repro.store.parallel import ParallelRDFStore
from repro.sources.weather import WeatherGridSource
from repro.store.partition import GridPartitioner, HashPartitioner, HilbertPartitioner
from repro.streams.chaos import (
    ChaosConfig,
    DeadLetter,
    TransientFault,
    TransientFaultInjector,
)
from repro.streams.checkpoint import Checkpoint, CheckpointStore
from repro.streams.replay import ReplayLog

T = TypeVar("T")

#: Below this many records the columnar path's array set-up costs more
#: than it saves; such batches run through the stage-sliced scalar path.
_COLUMNAR_MIN_BATCH = 16

_DEG2RAD = math.pi / 180.0


def _cpa_may_fire(
    lon1, lat1, spd1, hdg1,
    lon2, lat2, spd2, hdg2,
    cpa_threshold_m: float,
    tcpa_threshold_s: float,
) -> np.ndarray:
    """Conservative vectorized pre-check of the 2-D CPA/TCPA thresholds.

    Mirrors :func:`repro.geo.cpa.cpa_tcpa` (midpoint tangent plane, same
    3600 s horizon clamp) with margins that dominate the vector-vs-scalar
    float spread, so ``False`` proves the exact scalar check cannot fire:

    - CPA distance banded by 1 m. The clamped vertex is the constrained
      minimum of the separation parabola, and the vectorized separation
      differs from the scalar one by well under a millimetre at these
      scales, so a scalar CPA under the threshold keeps the vector CPA
      under ``threshold + 1``.
    - TCPA banded by 1 s — valid only while ``dv2`` is not tiny (the
      vertex position is ``ε/dv2``-conditioned), so pairs with relative
      speed under ~3 cm/s skip the TCPA cut entirely: their separation
      barely changes over the horizon and the distance band already
      decides them (this also covers the scalar ``dv2 < 1e-12``
      constant-separation branch, which reports TCPA 0).

    Only valid when every current-record altitude is ``None``: that forces
    the scalar computation 2-D and its fire condition to the maritime
    branch for any other/seed altitude.
    """
    k = _DEG2RAD * EARTH_RADIUS_M
    dx = (lon1 - lon2) * k * np.cos(np.radians((lat1 + lat2) / 2.0))
    dy = (lat1 - lat2) * k
    th1 = np.radians(hdg1)
    th2 = np.radians(hdg2)
    dvx = spd1 * np.sin(th1) - spd2 * np.sin(th2)
    dvy = spd1 * np.cos(th1) - spd2 * np.cos(th2)
    dv2 = dvx * dvx + dvy * dvy
    tcpa = -(dx * dvx + dy * dvy) / np.where(dv2 > 0.0, dv2, 1.0)
    tcpa = np.clip(tcpa, 0.0, 3600.0)
    tcpa = np.where(dv2 < 1e-12, 0.0, tcpa)
    cx = dx + dvx * tcpa
    cy = dy + dvy * tcpa
    lim = cpa_threshold_m + 1.0
    return (cx * cx + cy * cy <= lim * lim) & (
        (tcpa <= tcpa_threshold_s + 1.0) | (dv2 < 1e-3)
    )


@dataclass(frozen=True, slots=True)
class BatchOptions:
    """Micro-batching options for :meth:`MobilityPipeline.run`.

    Attributes:
        size: Records per micro-batch when the source is a plain report
            stream. Ignored for sources that already emit
            :class:`RecordBatch` instances (those arrive pre-sliced).
    """

    size: int = 256

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("batch size must be positive")


@dataclass(frozen=True, slots=True)
class CheckpointOptions:
    """Checkpoint/resume options for :meth:`MobilityPipeline.run`.

    Attributes:
        store: Where checkpoints are saved to and resumed from.
        interval: Save a checkpoint every this many records (at the first
            batch boundary past each multiple when batching). ``None``
            saves nothing — only meaningful together with ``resume``.
        resume: Restore the store's latest checkpoint before processing
            and skip the source prefix it already covers. The source must
            then be the *full* stream the interrupted run consumed
            (ideally a :class:`~repro.streams.replay.ReplayLog`).
        start_offset: Absolute offset of the source's first record
            (non-zero when the caller already trimmed the stream).
            Ignored with ``resume`` — the checkpoint knows its offset.
    """

    store: CheckpointStore
    interval: int | None = None
    resume: bool = False
    start_offset: int = 0

    def __post_init__(self) -> None:
        if self.interval is not None and self.interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        if self.interval is None and not self.resume:
            raise ValueError(
                "CheckpointOptions needs an interval, resume=True, or both"
            )
        if self.start_offset < 0:
            raise ValueError("start_offset must be non-negative")


class _DeadLettered(Exception):
    """Internal control flow: the current report exhausted its retries."""


def _flatten_records(
    source: "Iterable[PositionReport | RecordBatch]",
) -> Iterator[PositionReport]:
    """Record-level view of a source that may emit RecordBatches."""
    for item in source:
        if isinstance(item, RecordBatch):
            yield from item.reports
        else:
            yield item


def _iter_batches(
    reports: Iterable[PositionReport], batch_size: int
) -> Iterator[list[PositionReport]]:
    """Slice a stream into order-preserving batches of up to ``batch_size``."""
    batch: list[PositionReport] = []
    for report in reports:
        batch.append(report)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


@dataclass
class PipelineResult:
    """Counters and latency summaries of one pipeline run.

    Attributes map 1:1 to the numbers E2/E7 report. ``metrics`` is the
    full observability-registry snapshot (counters, gauges, histogram
    percentiles, trace stats) in the same schema
    :class:`repro.query.executor.ExecutionReport` carries — one format
    for every benchmark and test to read.
    """

    reports_in: int = 0
    reports_clean: int = 0
    reports_kept: int = 0
    triples_stored: int = 0
    simple_events: list[SimpleEvent] = field(default_factory=list)
    complex_events: list[ComplexEvent] = field(default_factory=list)
    stage_latency: dict[str, dict[str, float]] = field(default_factory=dict)
    end_to_end: dict[str, float] = field(default_factory=dict)
    wall_time_s: float = 0.0
    #: Degraded-mode accounting (all zero/empty without a chaos config):
    #: transient failures observed per stage,
    stage_failures: dict[str, int] = field(default_factory=dict)
    #: retries performed per stage,
    stage_retries: dict[str, int] = field(default_factory=dict)
    #: reports that exhausted the retry budget,
    dead_letters: list[DeadLetter] = field(default_factory=list)
    #: reports that failed at least once but ultimately completed,
    records_recovered: int = 0
    #: and the total backoff delay the retries would have waited.
    simulated_backoff_s: float = 0.0
    #: Snapshot of the pipeline's :class:`~repro.obs.MetricsRegistry`
    #: at finalize time (``{"counters", "gauges", "histograms", "trace"}``).
    metrics: dict = field(default_factory=dict)

    @property
    def dead_letter_count(self) -> int:
        """Number of reports parked in the dead-letter queue."""
        return len(self.dead_letters)

    @property
    def recovery_rate(self) -> float:
        """Fraction of transiently-failing reports that still completed.

        1.0 when no report ever failed (nothing needed recovering).
        """
        troubled = self.records_recovered + len(self.dead_letters)
        if troubled == 0:
            return 1.0
        return self.records_recovered / troubled

    @property
    def compression_ratio(self) -> float:
        """Fraction of clean reports dropped by the synopses stage."""
        if self.reports_clean == 0:
            return 0.0
        return 1.0 - self.reports_kept / self.reports_clean

    @property
    def throughput_rps(self) -> float:
        """End-to-end reports per wall-clock second."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.reports_in / self.wall_time_s

    def summary(self) -> dict[str, float]:
        """Flat numeric summary (the common report shape, see as_dict)."""
        out: dict[str, float] = {
            "reports_in": float(self.reports_in),
            "reports_clean": float(self.reports_clean),
            "reports_kept": float(self.reports_kept),
            "triples_stored": float(self.triples_stored),
            "simple_events": float(len(self.simple_events)),
            "complex_events": float(len(self.complex_events)),
            "compression_ratio": self.compression_ratio,
            "throughput_rps": self.throughput_rps,
            "wall_time_s": self.wall_time_s,
            "dead_letters": float(self.dead_letter_count),
            "recovery_rate": self.recovery_rate,
        }
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            if key in self.end_to_end:
                out[f"end_to_end_{key}"] = self.end_to_end[key]
        return out

    def as_dict(self) -> dict:
        """The common observability report shape.

        ``{"kind", "summary", "metrics"}`` — the same schema as
        :meth:`repro.query.executor.ExecutionReport.as_dict`, so
        benchmarks and tests read one format across tiers.
        """
        return {"kind": "pipeline", "summary": self.summary(), "metrics": self.metrics}

    def deterministic_payload(self) -> dict:
        """Everything the run's content determines, nothing timing does.

        The batch/per-record differential oracle: wall-clock, latency and
        backoff values are excluded by construction; counts, the full
        event streams and the dead-letter ledger are included. Dead
        letters are sorted (stage-major and record-major execution park
        them in different orders; the *set* is identical), and
        ``simulated_backoff_s`` is deliberately absent — the two paths sum
        the same per-retry delays in different order, which floating-point
        addition does not preserve bit-for-bit.
        """
        return {
            "reports_in": self.reports_in,
            "reports_clean": self.reports_clean,
            "reports_kept": self.reports_kept,
            "triples_stored": self.triples_stored,
            "records_recovered": self.records_recovered,
            "stage_failures": dict(sorted(self.stage_failures.items())),
            "stage_retries": dict(sorted(self.stage_retries.items())),
            "simple_events": [
                [e.event_type, e.entity_id, e.t] for e in self.simple_events
            ],
            "complex_events": [
                [e.event_type, list(e.entity_ids), e.t_start, e.t_end]
                for e in self.complex_events
            ],
            "dead_letters": sorted(
                [d.stage, d.event_time, d.attempts] for d in self.dead_letters
            ),
        }

    def deterministic_bytes(self) -> bytes:
        """Canonical JSON encoding of :meth:`deterministic_payload`."""
        return canonical_bytes(self.deterministic_payload())

    def deterministic_digest(self) -> str:
        """SHA-256 of :meth:`deterministic_bytes`."""
        return digest_of(self.deterministic_payload())


@dataclass(frozen=True)
class PipelineSpec:
    """A picklable recipe for building identical pipelines in any process.

    The shardable run API: the multi-process runtime
    (:mod:`repro.runtime`) ships one spec to every worker, each worker
    calls :meth:`build`, and all shards run structurally identical
    pipelines over their own key-routed substream. Everything in the spec
    must be picklable and immutable-in-practice (the entity registry and
    zones are only read by the pipeline).

    ``metrics_seed``/``metrics_enabled`` describe the observability
    registry each build creates, so per-worker registries are seeded
    identically and merge deterministically (see
    :meth:`repro.obs.MetricsRegistry.merge`).
    """

    bbox: BBox
    config: PipelineConfig = field(default_factory=PipelineConfig)
    registry: EntityRegistry | None = None
    zones: tuple[Polygon, ...] = ()
    domain: Domain = Domain.MARITIME
    chaos: ChaosConfig | None = None
    metrics_enabled: bool = True
    metrics_seed: int = 2017

    def build(self, metrics: MetricsRegistry | None = None) -> "MobilityPipeline":
        """Construct a fresh pipeline exactly as the spec describes."""
        if metrics is None:
            metrics = MetricsRegistry(
                seed=self.metrics_seed, enabled=self.metrics_enabled
            )
        return MobilityPipeline(
            bbox=self.bbox,
            config=self.config,
            registry=self.registry,
            zones=self.zones,
            domain=self.domain,
            chaos=self.chaos,
            metrics=metrics,
        )


class MobilityPipeline:
    """The full datAcron flow over one geographic world.

    Args:
        chaos: When given, stage executions fail transiently with the
            configured probability and are retried with exponential
            backoff; reports that exhaust the budget land in the result's
            dead-letter queue instead of killing the run (degraded mode).
        metrics: The observability registry shared by every tier of this
            pipeline (in-situ, store, query, CEP). Defaults to a fresh
            enabled registry; pass ``MetricsRegistry(enabled=False)`` for
            a zero-overhead run.
    """

    def __init__(
        self,
        bbox: BBox,
        config: PipelineConfig | None = None,
        registry: EntityRegistry | None = None,
        zones: Iterable[Polygon] = (),
        domain: Domain = Domain.MARITIME,
        weather: "WeatherGridSource | None" = None,
        chaos: ChaosConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.registry = registry or EntityRegistry()
        self.zones = list(zones)
        self.domain = domain
        self.grid = GeoGrid(bbox=bbox, nx=self.config.grid_nx, ny=self.config.grid_ny)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

        # In-situ layer.
        self._dedup = DeduplicateFilter()
        self._plausibility = PlausibilityFilter(registry=self.registry)
        if self.config.adaptive_keep_rate is not None:
            from repro.insitu.adaptive import AdaptiveConfig, AdaptiveSynopsesGenerator

            self._synopses = AdaptiveSynopsesGenerator(
                base=self.config.synopses,
                adaptive=AdaptiveConfig(target_keep_rate=self.config.adaptive_keep_rate),
                metrics=self.metrics,
            )
        else:
            self._synopses = SynopsesGenerator(self.config.synopses, metrics=self.metrics)

        # Transformation + storage.
        self.transformer = RdfTransformer(
            st_grid=self.grid, time_bucket_s=self.config.time_bucket_s
        )
        self.store = ParallelRDFStore(self._build_partitioner(), metrics=self.metrics)
        self.weather = weather
        self._stored_weather_cells: set[tuple[int, float]] = set()
        self.executor = QueryExecutor(self.store, metrics=self.metrics)
        if self.config.persist_rdf:
            for entity in self.registry:
                self.store.add_document(self.transformer.entity_to_triples(entity))
            for zone in self.zones:
                self.store.add_document(self.transformer.zone_to_triples(zone))

        # Analytics layer. With enough zones, one grid-prefiltered
        # containment index is shared by the simple-event extractor and
        # _interlink — both used to linearly scan every polygon per record.
        self._zone_index = (
            ZoneIndex(self.zones) if len(self.zones) >= PREFILTER_MIN_ZONES else None
        )
        self._extractor = SimpleEventExtractor(
            config=self.config.simple_events,
            zones=self.zones,
            registry=self.registry,
            grid=None,
            metrics=self.metrics,
            zone_index=self._zone_index,
        )
        self._collision = CollisionRiskDetector(
            cpa_threshold_m=self.config.collision_cpa_m,
            tcpa_threshold_s=self.config.collision_tcpa_s,
        )
        self._loitering = LoiteringDetector(
            radius_m=self.config.loitering_radius_m,
            min_duration_s=self.config.loitering_duration_s,
        )
        self._rendezvous = RendezvousDetector(
            radius_m=self.config.rendezvous_radius_m,
            min_duration_s=self.config.rendezvous_duration_s,
        )
        self._capacity = (
            CapacityDemandDetector(
                sectors=self.zones,
                capacity=self.config.capacity_limit,
                window_s=self.config.capacity_window_s,
            )
            if domain is Domain.AVIATION and self.zones
            else None
        )
        if self.config.hotspots:
            from repro.cep.hotspot_stream import StreamingHotspotDetector

            self._hotspots = StreamingHotspotDetector(
                self.grid,
                window_s=self.config.hotspot_window_s,
                z_threshold=self.config.hotspot_z_threshold,
            )
        else:
            self._hotspots = None

        # Stage latency histograms live on the shared registry (one
        # instrument surface across tiers); the dict keeps the short
        # stage-name view the result reports.
        self._latency = {
            stage: self.metrics.histogram(f"pipeline.{stage}")
            for stage in ("clean", "synopses", "rdf", "events", "detectors")
        }
        self._end_to_end = self.metrics.histogram("pipeline.end_to_end")
        # Hot-path discipline: per-record samples go into plain lists
        # (one bound append each) and land on the histograms in batches —
        # see _flush_latency. With a disabled registry the whole timing
        # path is skipped, so no-op mode costs nothing per record.
        self._obs = self.metrics.enabled
        self._trace_every = self.config.trace_every_n if self._obs else 0
        self._lat_buf: dict[str, list[float]] = {
            stage: []
            for stage in (
                "clean", "synopses", "rdf", "events", "detectors", "end_to_end"
            )
        }
        # Raw (un-normalized) wall-clock accumulated per stage at the same
        # boundaries that feed the latency buffers — the ground truth for
        # "which stage dominates" time-share artifacts. Zero when the
        # registry is disabled (same hot-path discipline as _lat_buf).
        self._stage_wall: dict[str, float] = {stage: 0.0 for stage in self._lat_buf}
        self._trace_this_record = False
        self._record_end = 0.0
        self._result = PipelineResult()

        # Degraded-mode (chaos) path.
        self._chaos = chaos
        if chaos is not None and chaos.fail_prob > 0:
            self._injector = TransientFaultInjector(
                chaos.fail_prob, seed=chaos.seed, stages=chaos.stages
            )
        else:
            self._injector = None
        # One backoff-jitter RNG per stage (lazily seeded, stable hash of
        # (seed, stage)): the i-th retry of a given stage draws the same
        # jitter no matter how other stages' retries interleave, which
        # keeps record-major and stage-major (micro-batch) execution on
        # identical draw sequences — same reason the fault injector keeps
        # per-stage streams.
        self._retry_rngs: dict[str, random.Random] = {}
        self._record_faulted = False

        # Compiled id-level RDF emission (columnar path only). Built
        # last: probe verification failure must be observable on the
        # metrics registry configured above.
        self._emitter = self._build_emitter()

    def _build_emitter(self) -> CompiledReportEmitter | None:
        """The compiled emitter, or ``None`` when the object path must run.

        ``None`` when persistence is off, the config disables the
        emitter, or — the graceful-fallback contract — the probe-set
        self-verification against ``report_to_triples`` fails (counted
        on ``rdf.emitter.fallback``; the transformer stays authoritative
        and the object path takes over everywhere).
        """
        if not (self.config.persist_rdf and self.config.compiled_rdf_emitter):
            return None
        emitter = CompiledReportEmitter(self.transformer, self.store.dictionary)
        if not emitter.engaged:
            if self._obs:
                self.metrics.counter("rdf.emitter.fallback").inc()
            return None
        return emitter

    def _build_partitioner(self):
        n = self.config.n_partitions
        if self.config.partitioner == "hash":
            return HashPartitioner(n)
        if self.config.partitioner == "grid":
            return GridPartitioner(self.grid, n)
        return HilbertPartitioner(self.grid, n)

    @property
    def live_result(self) -> "PipelineResult":
        """The run-in-progress result (a live view, not a copy).

        Counters and event streams update as records are processed;
        latency summaries and ``metrics`` are only populated at finalize
        time. The always-on serving tier (:mod:`repro.serving`) reads
        this between ingest batches — a pipeline that never "finishes"
        still has to account for what it has done so far.
        """
        return self._result

    # -- processing -------------------------------------------------------------

    def process_report(self, report: PositionReport) -> list[ComplexEvent]:
        """Push one report through every stage; returns new complex events.

        Under a chaos config, stage executions may fail transiently and be
        retried; a report that exhausts its retry budget is parked in the
        dead-letter queue and dropped (the run continues degraded).
        """
        result = self._result
        result.reports_in += 1
        obs = self._obs
        record_span = NULL_SPAN
        record_started = 0.0
        if obs:
            every_n = self._trace_every
            self._trace_this_record = (
                every_n > 0 and (result.reports_in - 1) % every_n == 0
            )
            if self._trace_this_record:
                record_span = self.metrics.span("pipeline.record", records=1)
            record_started = monotonic()
        self._record_faulted = False
        with record_span:
            try:
                new_complex = self._process_stages(report, record_started)
            except _DeadLettered:
                if obs:
                    elapsed = monotonic() - record_started
                    self._lat_buf["end_to_end"].append(elapsed)
                    self._stage_wall["end_to_end"] += elapsed
                return []
        if self._record_faulted:
            result.records_recovered += 1
        if obs:
            # _process_stages leaves its final clock read in _record_end,
            # so closing the end-to-end sample costs no extra read.
            self._lat_buf["end_to_end"].append(self._record_end - record_started)
            self._stage_wall["end_to_end"] += self._record_end - record_started
            if result.reports_in % 4096 == 0:
                self._flush_latency()
        return new_complex

    def process_batch(self, reports: Sequence[PositionReport]) -> list[ComplexEvent]:
        """Push a micro-batch through the pipeline, stage-sliced.

        Instead of running all five stages per record, the whole batch is
        cleaned, then synopsized, then transformed/stored (one bulk
        :meth:`ParallelRDFStore.add_documents` call), then run through
        simple-event extraction and the detectors. Per-record span and
        timing overhead collapses to per-batch: one clock read per stage,
        one amortized per-record histogram sample per stage per batch.

        Equivalence contract (enforced by the differential suite): the
        result's :meth:`PipelineResult.deterministic_bytes` — counts,
        event streams, dead letters, fault/retry accounting — is
        byte-identical to feeding the same records one at a time through
        :meth:`process_report`, for any batch size, with or without a
        chaos config. Store *content* (decoded triples) is identical too;
        only dictionary ids differ, because the batch path lands event
        documents after all report documents instead of interleaved.
        Under chaos, stage bodies run per record (stage-major order) so
        the per-stage fault and backoff RNG streams line up with the
        per-record path; without chaos, cleaning runs through the
        vectorised :meth:`PlausibilityFilter.accept_batch`.

        Returns the new complex events, in the same order the per-record
        path would emit them.
        """
        batch = list(reports)
        n = len(batch)
        if n == 0:
            return []
        if (
            self._chaos is None
            and n >= _COLUMNAR_MIN_BATCH
            and type(self._synopses) is SynopsesGenerator
        ):
            # Columnar fast path: same decisions, array-at-a-time. Chaos
            # needs per-record stage-major execution for RNG-stream
            # alignment, and the adaptive generator re-tunes thresholds
            # record-by-record, so both stay on the scalar stage loop.
            return self._process_recordbatch(
                RecordBatch.from_reports(batch, offset=self._result.reports_in)
            )
        result = self._result
        obs = self._obs
        chaos = self._chaos
        base = result.reports_in
        result.reports_in += n

        batch_span = NULL_SPAN
        if obs:
            every = self._trace_every
            # Trace the batch when the per-record path would have traced
            # one of its records: a multiple of trace_every_n in [base, base+n).
            if every > 0 and ((base + every - 1) // every) * every < base + n:
                batch_span = self.metrics.span("pipeline.batch", records=n)
            self._trace_this_record = False
            pc = monotonic
            buf = self._lat_buf
            wall = self._stage_wall
            t_batch = pc()
            t_prev = t_batch

        # dead[i]: record i exhausted a retry budget somewhere (chaos only);
        # faulted[i]: record i failed transiently at least once.
        dead = [False] * n
        faulted = [False] * n

        with batch_span:
            # -- clean: dedup + plausibility over the whole batch ------------
            if chaos is None:
                survivors = [i for i in range(n) if self._dedup.accept(batch[i])]
                flags = self._plausibility.accept_batch([batch[i] for i in survivors])
                active = [i for i, ok in zip(survivors, flags) if ok]
            else:
                active = []
                for i in range(n):
                    report = batch[i]
                    self._record_faulted = False
                    try:
                        ok = self._stage_call(
                            "clean",
                            report,
                            lambda r=report: self._dedup.accept(r)
                            and self._plausibility.accept(r),
                        )
                    except _DeadLettered:
                        dead[i] = True
                        continue
                    if self._record_faulted:
                        faulted[i] = True
                    if ok:
                        active.append(i)
            result.reports_clean += len(active)
            if obs:
                t_now = pc()
                buf["clean"].append((t_now - t_prev) / n)
                wall["clean"] += t_now - t_prev
                t_prev = t_now

            # -- synopses ----------------------------------------------------
            stage_n = len(active)
            decisions: list[tuple[int, tuple[Any, bool]]] = []
            if chaos is None:
                decisions = list(
                    zip(active, self._synopses.process_batch([batch[i] for i in active]))
                )
            else:
                for i in active:
                    report = batch[i]
                    self._record_faulted = False
                    try:
                        pair = self._stage_call(
                            "synopses", report, lambda r=report: self._synopses.process(r)
                        )
                    except _DeadLettered:
                        dead[i] = True
                        continue
                    if self._record_faulted:
                        faulted[i] = True
                    decisions.append((i, pair))
            for __, (__a, keep) in decisions:
                if keep:
                    result.reports_kept += 1
            if obs:
                t_now = pc()
                if stage_n:
                    buf["synopses"].append((t_now - t_prev) / stage_n)
                wall["synopses"] += t_now - t_prev
                t_prev = t_now

            # -- rdf: transform + bulk store ---------------------------------
            stage_n = 0
            if self.config.persist_rdf:
                raw = self.config.persist_raw_reports
                interlink = self.config.interlink
                if chaos is None:
                    docs: list[list] = []
                    for i, (annotated, keep) in decisions:
                        report = batch[i]
                        if keep:
                            triples = self.transformer.report_to_triples(annotated)
                            if interlink:
                                triples.extend(
                                    self._interlink(report, triples[0].s, doc_sink=docs)
                                )
                        elif raw:
                            triples = self.transformer.report_to_triples(report)
                        else:
                            continue
                        docs.append(triples)
                        result.triples_stored += len(triples)
                        stage_n += 1
                    if docs:
                        self.store.add_documents(docs)
                else:
                    still: list[tuple[int, tuple[Any, bool]]] = []
                    for i, (annotated, keep) in decisions:
                        report = batch[i]
                        if not keep and not raw:
                            still.append((i, (annotated, keep)))
                            continue
                        self._record_faulted = False
                        try:
                            if keep:
                                added = self._stage_call(
                                    "rdf",
                                    report,
                                    lambda a=annotated, r=report: self._store_report_doc(
                                        a, r, interlink=interlink
                                    ),
                                )
                            else:
                                added = self._stage_call(
                                    "rdf",
                                    report,
                                    lambda r=report: self._store_report_doc(
                                        r, r, interlink=False
                                    ),
                                )
                        except _DeadLettered:
                            dead[i] = True
                            continue
                        if self._record_faulted:
                            faulted[i] = True
                        result.triples_stored += added
                        stage_n += 1
                        still.append((i, (annotated, keep)))
                    decisions = still
                if obs:
                    t_now = pc()
                    if stage_n:
                        buf["rdf"].append((t_now - t_prev) / stage_n)
                    wall["rdf"] += t_now - t_prev
                    t_prev = t_now

            # -- simple events -----------------------------------------------
            stage_n = len(decisions)
            per_record_events: list[tuple[int, list[SimpleEvent]]] = []
            if chaos is None:
                for i, __pair in decisions:
                    events = self._extractor.process(batch[i])
                    result.simple_events.extend(events)
                    per_record_events.append((i, events))
            else:
                for i, __pair in decisions:
                    report = batch[i]
                    self._record_faulted = False
                    try:
                        events = self._stage_call(
                            "events", report, lambda r=report: self._extractor.process(r)
                        )
                    except _DeadLettered:
                        dead[i] = True
                        continue
                    if self._record_faulted:
                        faulted[i] = True
                    result.simple_events.extend(events)
                    per_record_events.append((i, events))
            if obs:
                t_now = pc()
                if stage_n:
                    buf["events"].append((t_now - t_prev) / stage_n)
                wall["events"] += t_now - t_prev
                t_prev = t_now

            # -- detectors + bulk event persistence --------------------------
            stage_n = len(per_record_events)
            out: list[ComplexEvent] = []
            event_docs: list[list] = []
            persist = self.config.persist_rdf
            for i, simple_events in per_record_events:
                report = batch[i]
                if chaos is None:
                    new_complex = self._run_detectors(report, simple_events)
                else:
                    self._record_faulted = False
                    try:
                        new_complex = self._stage_call(
                            "detectors",
                            report,
                            lambda r=report, e=simple_events: self._run_detectors(r, e),
                        )
                    except _DeadLettered:
                        dead[i] = True
                        continue
                    if self._record_faulted:
                        faulted[i] = True
                # Complex-event persistence sits outside the fault scope on
                # the per-record path too, so bulk-landing the documents
                # after the loop is safe under chaos as well.
                for event in new_complex:
                    result.complex_events.append(event)
                    if persist:
                        triples = self.transformer.event_to_triples(event)
                        event_docs.append(triples)
                        result.triples_stored += len(triples)
                out.extend(new_complex)
            if event_docs:
                self.store.add_documents(event_docs)

        if chaos is not None:
            for i in range(n):
                if faulted[i] and not dead[i]:
                    result.records_recovered += 1
        if obs:
            t_now = pc()
            if stage_n:
                buf["detectors"].append((t_now - t_prev) / stage_n)
            wall["detectors"] += t_now - t_prev
            buf["end_to_end"].append((t_now - t_batch) / n)
            wall["end_to_end"] += t_now - t_batch
            if (base // 4096) != (result.reports_in // 4096):
                self._flush_latency()
        return out

    def process_recordbatch(self, rb: RecordBatch) -> list[ComplexEvent]:
        """Push one columnar :class:`RecordBatch` through the pipeline.

        The native entry point for sources that emit batches directly:
        no per-record work happens until the RDF/store boundary. Falls
        back to :meth:`process_batch` whenever the columnar path cannot
        run (chaos config, tiny batch, adaptive synopses), so callers
        never need to pick a path themselves.
        """
        if (
            self._chaos is None
            and len(rb) >= _COLUMNAR_MIN_BATCH
            and type(self._synopses) is SynopsesGenerator
        ):
            return self._process_recordbatch(rb)
        return self.process_batch(list(rb.reports))

    def _process_recordbatch(self, rb: RecordBatch) -> list[ComplexEvent]:
        """Columnar core: clean, synopsize, store and detect over arrays.

        Equivalence contract (same as :meth:`process_batch`, enforced by
        the differential suite): every decision — filter accepts,
        synopses keeps, events, detector fires, counters — is identical
        to the per-record path. The strategy throughout is *exact
        conservative guards*: cheap vectorized or cached-scalar checks
        prove most records can take no branch that emits an event or
        mutates non-trivial state; only the flagged remainder replays
        through the unchanged scalar components, after lazily syncing
        the per-entity state those components read.

        Observability: stage samples land on the same histograms, except
        that simple-event extraction and detection run as one fused walk
        whose time is recorded under ``pipeline.detectors`` (the
        ``events`` histogram receives no columnar samples).
        """
        n = len(rb)
        result = self._result
        obs = self._obs
        base = result.reports_in
        result.reports_in += n

        batch_span = NULL_SPAN
        if obs:
            every = self._trace_every
            if every > 0 and ((base + every - 1) // every) * every < base + n:
                batch_span = self.metrics.span("pipeline.batch", records=n)
            self._trace_this_record = False
            pc = monotonic
            buf = self._lat_buf
            wall = self._stage_wall
            t_batch = pc()
            t_prev = t_batch

        with batch_span:
            # -- clean: columnar dedup + plausibility ------------------------
            mask = self._plausibility.accept_recordbatch(
                rb, self._dedup.accept_recordbatch(rb)
            )
            active = np.flatnonzero(mask)
            result.reports_clean += int(active.size)
            if obs:
                t_now = pc()
                buf["clean"].append((t_now - t_prev) / n)
                wall["clean"] += t_now - t_prev
                t_prev = t_now

            # -- synopses: chord-walk keep/drop ------------------------------
            stage_n = int(active.size)
            decisions = self._synopses.process_recordbatch(rb, mask)
            active_l = active.tolist()
            for p in active_l:
                if decisions[p][1]:
                    result.reports_kept += 1
            if obs:
                t_now = pc()
                if stage_n:
                    buf["synopses"].append((t_now - t_prev) / stage_n)
                wall["synopses"] += t_now - t_prev
                t_prev = t_now

            # Zone containment, one vectorized ray-cast per zone over the
            # whole batch — shared by interlinking (exact containment per
            # kept record) and the zone entry/exit guard below.
            zones = self.zones
            n_zones = len(zones)
            inside_cols = (
                [z.contains_batch(rb.lon, rb.lat) for z in zones] if n_zones else []
            )

            reports = rb.reports

            # -- rdf: transform + bulk store ---------------------------------
            stage_n = 0
            if self.config.persist_rdf:
                raw = self.config.persist_raw_reports
                interlink = self.config.interlink
                # Compiled id-level emission: the emitter (probe-verified
                # against report_to_triples at build) assembles id triples
                # straight from the columns — vectorized st-keys over the
                # whole batch, interned constant/literal ids — and the
                # store routes them by key without decoding a term. The
                # weather interlink keeps the object path (its first-sight
                # document logic lives in _interlink).
                em = self._emitter if self.weather is None else None
                if em is not None:
                    keys = (
                        em.st_keys(rb.lon, rb.lat, rb.t) if active_l else None
                    )
                    keys_l = keys.tolist() if keys is not None else None
                    id_docs: list = []
                    emit = em.emit_ids
                    p_within = em.prop_within_zone_id
                    zone_id_of = em.zone_id
                    for p in active_l:
                        annotated, keep = decisions[p]
                        key = keys_l[p] if keys_l is not None else None
                        if keep:
                            sid, ids = emit(annotated, key)
                            if interlink:
                                for zi in range(n_zones):
                                    if inside_cols[zi][p]:
                                        ids.append(
                                            (sid, p_within, zone_id_of(zones[zi].name))
                                        )
                        elif raw:
                            sid, ids = emit(reports[p], key)
                        else:
                            continue
                        id_docs.append((sid, ids, key, True))
                        result.triples_stored += len(ids)
                        stage_n += 1
                    if id_docs:
                        self.store.add_id_documents(id_docs)
                else:
                    docs: list[list] = []
                    for p in active_l:
                        annotated, keep = decisions[p]
                        if keep:
                            triples = self.transformer.report_to_triples(annotated)
                            if interlink:
                                containing = [
                                    zones[zi]
                                    for zi in range(n_zones)
                                    if inside_cols[zi][p]
                                ]
                                triples.extend(
                                    self._interlink(
                                        reports[p],
                                        triples[0].s,
                                        doc_sink=docs,
                                        containing=containing,
                                    )
                                )
                        elif raw:
                            triples = self.transformer.report_to_triples(reports[p])
                        else:
                            continue
                        docs.append(triples)
                        result.triples_stored += len(triples)
                        stage_n += 1
                    if docs:
                        self.store.add_documents(docs)
                if obs:
                    t_now = pc()
                    if stage_n:
                        buf["rdf"].append((t_now - t_prev) / stage_n)
                    wall["rdf"] += t_now - t_prev
                    t_prev = t_now

            # -- simple events + detectors: one guarded walk -----------------
            ex = self._extractor
            ex_states = ex._states
            ex_latest = ex._latest
            cfg = ex.config
            gap_th = cfg.gap_threshold_s
            stop_sp = cfg.stop_speed_mps
            # Same two config floats, same single multiply as the scalar
            # Schmitt trigger — the cached product is float-identical.
            stop_hi = stop_sp * cfg.stop_hysteresis
            prox_stale = cfg.proximity_staleness_s
            prox_rad = cfg.proximity_radius_m
            coll = self._collision
            coll_latest = coll._latest
            loit = self._loitering
            rdv = self._rendezvous
            rdv_pairs = rdv._pair_since
            cap = self._capacity
            hot = self._hotspots
            persist = self.config.persist_rdf

            codes_l = rb.entity_codes.tolist()
            t_l = rb.t.tolist()
            vocab = rb.vocabulary
            n_codes = len(vocab)

            # Anomaly ceiling per entity: the identical `max_speed *
            # factor` product the scalar check computes, one registry
            # lookup per entity instead of one per record.
            if ex.registry is not None:
                factor = cfg.speed_anomaly_factor
                ceilings: list[float | None] = []
                for eid in vocab:
                    ent = ex.registry.get_or_none(eid)
                    ceilings.append(
                        None if ent is None else ent.max_speed_mps * factor
                    )
            else:
                ceilings = [None] * n_codes

            # Which records *must* run a scalar component, decided
            # entirely up front with vectorized exact-or-conservative
            # guards: `ex_int` (simple-event extraction) and `coll_int`
            # (collision pair checks). Everything else provably emits
            # nothing and only advances per-entity latest state, applied
            # lazily through `pending`.
            ex_int = np.zeros(n, dtype=bool)
            coll_int = np.zeros(n, dtype=bool)
            # Loitering is strictly per-entity (window, refractory and
            # block state are all keyed by entity), so it runs bulk per
            # segment here; events come back tagged with the position
            # that raised them and are re-interleaved by the walk below
            # in exact per-record order.
            loit_map: dict[int, ComplexEvent] = {}

            # Zone entry/exit + gap + stop + anomaly guards, per segment.
            for code, eid, seg in rb.segments():
                pos = seg[mask[seg]]
                m = pos.size
                if m == 0:
                    continue
                t_seg = rb.t[pos]
                spd_seg = rb.speed[pos]
                loit_hits = loit.process_positions(
                    eid,
                    t_seg.tolist(),
                    rb.lon[pos].tolist(),
                    rb.lat[pos].tolist(),
                )
                if loit_hits:
                    pos_l = pos.tolist()
                    for k, levent in loit_hits:
                        loit_map[pos_l[k]] = levent
                st = ex_states.get(eid)
                has_prev = st is not None and st.last is not None
                # Zone guard: membership of each zone evolves only at
                # containment transitions along the entity's active
                # records (seeded from pre-batch state.zones), so exactly
                # the transition records can emit zone events or mutate
                # state.zones.
                if n_zones:
                    member = st.zones if st is not None else ()
                    for zi in range(n_zones):
                        vals = inside_cols[zi][pos]
                        if bool(vals[0]) != (zones[zi].name in member):
                            ex_int[pos[0]] = True
                        if m > 1:
                            hits = pos[1:][vals[1:] != vals[:-1]]
                            if hits.size:
                                ex_int[hits] = True
                # Gap guard: exact — same float subtraction and compare.
                flag = np.zeros(m, dtype=bool)
                if m > 1:
                    flag[1:] = (t_seg[1:] - t_seg[:-1]) > gap_th
                if has_prev:
                    flag[0] = (t_seg[0] - st.last.t) > gap_th
                # Anomaly guard: exact vector replica of the scalar
                # compare (NaN speeds compare False, like `is None`).
                ceiling = ceilings[code]
                if ceiling is not None:
                    flag |= spd_seg > ceiling
                # Stop guard: simulate the Schmitt trigger exactly. With
                # real speeds the stop state toggles *only* on records
                # this marks, so the simulated state stays in lockstep
                # with the scalar path. A NaN speed (derived distance/dt
                # speed, unknown here) is marked whenever a previous
                # report exists and degrades the simulation to a
                # conservative superset: while the state is unknown,
                # every record that could toggle either way is marked.
                sim = st.stopped if st is not None else False
                unknown = False
                stop_idx = []
                for k, s in enumerate(spd_seg.tolist()):
                    if s != s:
                        if k > 0 or has_prev:
                            stop_idx.append(k)
                            unknown = True
                        continue
                    if unknown:
                        if s < stop_sp or s >= stop_hi:
                            stop_idx.append(k)
                    elif sim:
                        if s >= stop_hi:
                            stop_idx.append(k)
                            sim = False
                    elif s < stop_sp:
                        stop_idx.append(k)
                        sim = True
                if stop_idx:
                    flag[stop_idx] = True
                ex_int[pos[flag]] = True

            # Proximity and collision guards: one as-of pair join over
            # the active records. For each record and each other entity,
            # the other's position "as of" that record is its latest
            # earlier active record in the batch, or its pre-batch
            # latest-map entry. The masks replicate the freshness +
            # latitude-band prefilters of `_proximity_events` /
            # `_candidates` exactly (same floats, same IEEE compares),
            # band the exact-distance cut by 1e-9 relative (vector vs
            # scalar haversine ulp spread), and — for collision — add a
            # conservative vectorized CPA/TCPA pre-check with metre/
            # millisecond margins. A record left unmasked provably takes
            # no event-emitting branch.
            A = active
            nA = len(active_l)
            codesA = rb.entity_codes[A]
            tA = rb.t[A]
            latA = rb.lat[A]
            lonA = rb.lon[A]
            spdA = rb.speed[A]
            hdgA = rb.heading[A]
            kinA = ~(np.isnan(spdA) | np.isnan(hdgA))
            # All-None current altitudes force the scalar CPA 2-D and its
            # fire condition to the maritime branch (see _cpa_may_fire).
            use_cpa = bool(np.isnan(rb.alt).all())
            batch_ids = frozenset(vocab)
            coll_stale = coll.staleness_s
            coll_rad = coll.candidate_radius_m
            cpa_thr = coll.cpa_threshold_m
            tcpa_thr = coll.tcpa_threshold_s
            prox_may = np.zeros(nA, dtype=bool)
            coll_may = np.zeros(nA, dtype=bool)
            # One 2-D as-of join for every code at once: src2[c, i] is
            # the latest active row of code c at or before row i (-1 when
            # none). A row's own code resolves to itself and is masked by
            # `notself2`, so everywhere the join is consumed src2 points
            # at a *strictly earlier* row — exactly the per-code
            # searchsorted join this replaces, at ~n_codes fewer numpy
            # dispatches per batch. Distances and the CPA pre-check run
            # on the candidate pairs only; the 1e-9 bands already absorb
            # elementwise-kernel ulp spread, which covers subset-vs-full
            # evaluation too.
            idx_row = np.arange(nA)
            eye = codesA[None, :] == np.arange(n_codes)[:, None]
            src2 = np.maximum.accumulate(np.where(eye, idx_row[None, :], -1), axis=1)
            has2 = src2 >= 0
            notself2 = ~eye
            # Pre-batch fallback columns per code. An entity can be in
            # the batch vocabulary with zero *active* rows (every record
            # masked, e.g. dropped as out-of-order on re-ingest); its
            # join column is then all-fallback. -inf timestamps make the
            # staleness check unsatisfiable where no state exists.
            fp_t = np.full(n_codes, -np.inf)
            fp_lat = np.zeros(n_codes)
            fp_lon = np.zeros(n_codes)
            fc_t = np.full(n_codes, -np.inf)
            fc_lat = np.zeros(n_codes)
            fc_lon = np.zeros(n_codes)
            fc_spd = np.zeros(n_codes)
            fc_hdg = np.zeros(n_codes)
            fc_kin = np.zeros(n_codes, dtype=bool)
            for c2, eid2 in enumerate(vocab):
                o = ex_latest.get(eid2)
                if o is not None:
                    fp_t[c2] = o.t
                    fp_lat[c2] = o.lat
                    fp_lon[c2] = o.lon
                oc = coll_latest.get(eid2)
                if oc is not None and oc.speed is not None and oc.heading is not None:
                    fc_t[c2] = oc.t
                    fc_lat[c2] = oc.lat
                    fc_lon[c2] = oc.lon
                    fc_spd[c2] = oc.speed
                    fc_hdg[c2] = oc.heading
                    fc_kin[c2] = True
            # src2 == -1 wraps to the last row under fancy indexing —
            # harmless, np.where discards it where has2 is False.
            t_src = tA[src2]
            lat_src = latA[src2]
            T2 = np.where(has2, t_src, fp_t[:, None])
            LAT2 = np.where(has2, lat_src, fp_lat[:, None])
            cand = (
                notself2
                & ((tA[None, :] - T2) <= prox_stale)
                & (np.abs(latA[None, :] - LAT2) * _METERS_PER_DEG_LAT_FLOOR <= prox_rad)
            )
            if cand.any():
                rows, cols = np.nonzero(cand)
                hs = has2[rows, cols]
                ss = src2[rows, cols]
                d = haversine_m_arrays(
                    lonA[cols],
                    latA[cols],
                    np.where(hs, lonA[ss], fp_lon[rows]),
                    LAT2[rows, cols],
                )
                hit = d <= prox_rad * (1.0 + 1e-9)
                if hit.any():
                    prox_may[cols[hit]] = True
            T2 = np.where(has2, t_src, fc_t[:, None])
            LAT2 = np.where(has2, lat_src, fc_lat[:, None])
            KIN2 = np.where(has2, kinA[src2], fc_kin[:, None])
            cand = (
                notself2
                & kinA[None, :]
                & KIN2
                & ((tA[None, :] - T2) <= coll_stale)
                & (np.abs(latA[None, :] - LAT2) * _METERS_PER_DEG_LAT_FLOOR <= coll_rad)
            )
            if cand.any():
                rows, cols = np.nonzero(cand)
                hs = has2[rows, cols]
                ss = src2[rows, cols]
                LON2 = np.where(hs, lonA[ss], fc_lon[rows])
                LAT2s = LAT2[rows, cols]
                d = haversine_m_arrays(lonA[cols], latA[cols], LON2, LAT2s)
                near = d <= coll_rad * (1.0 + 1e-9)
                if use_cpa and near.any():
                    rows = rows[near]
                    cols = cols[near]
                    hs = hs[near]
                    ss = ss[near]
                    fire = _cpa_may_fire(
                        lonA[cols], latA[cols], spdA[cols], hdgA[cols],
                        LON2[near], LAT2s[near],
                        np.where(hs, spdA[ss], fc_spd[rows]),
                        np.where(hs, hdgA[ss], fc_hdg[rows]),
                        cpa_thr, tcpa_thr,
                    )
                    coll_may[cols[fire]] = True
                elif not use_cpa:
                    coll_may[cols[near]] = True
            # Latest-map entries outside the batch are frozen during it:
            # one constant column each.
            for oid, o in ex_latest.items():
                if oid in batch_ids:
                    continue
                cand = ((tA - o.t) <= prox_stale) & (
                    np.abs(latA - o.lat) * _METERS_PER_DEG_LAT_FLOOR <= prox_rad
                )
                if cand.any():
                    d = haversine_m_arrays(lonA, latA, o.lon, o.lat)
                    prox_may |= cand & (d <= prox_rad * (1.0 + 1e-9))
            for oid, o in coll_latest.items():
                if oid in batch_ids or o.speed is None or o.heading is None:
                    continue
                cand = (
                    kinA
                    & ((tA - o.t) <= coll_stale)
                    & (np.abs(latA - o.lat) * _METERS_PER_DEG_LAT_FLOOR <= coll_rad)
                )
                if cand.any():
                    d = haversine_m_arrays(lonA, latA, o.lon, o.lat)
                    cand &= d <= coll_rad * (1.0 + 1e-9)
                    if use_cpa and cand.any():
                        cand &= _cpa_may_fire(
                            lonA, latA, spdA, hdgA,
                            o.lon, o.lat, o.speed, o.heading,
                            cpa_thr, tcpa_thr,
                        )
                    coll_may |= cand
            ex_int[A] |= prox_may
            coll_int[A] = coll_may
            ex_l = ex_int.tolist()
            coll_l = coll_int.tolist()

            stage_n = nA
            out: list[ComplexEvent] = []
            event_docs: list[list] = []
            # Latest unsynced record per code. Flushed (in first-
            # appearance order, preserving dict insertion order of new
            # entities) before every scalar component call and at batch
            # end; a flush is the exact state residue of the scalar call
            # for a no-event record, and re-flushing after a scalar call
            # is idempotent.
            pending: dict[int, int] = {}

            def _flush_pending() -> None:
                for c2, p2 in pending.items():
                    r2 = reports[p2]
                    eid2 = r2.entity_id
                    st2 = ex_states.get(eid2)
                    if st2 is None:
                        ex.advance_quiet(r2)
                    else:
                        st2.last = r2
                        ex_latest[eid2] = r2
                    coll_latest[eid2] = r2
                pending.clear()

            loit_get = loit_map.get
            rdv_process = rdv.process
            rdv_tick = rdv.tick
            for p in active_l:
                r = reports[p]
                if ex_l[p]:
                    if pending:
                        _flush_pending()
                    events = ex.process(r)
                    result.simple_events.extend(events)
                else:
                    events = ()
                if coll_l[p]:
                    if pending:
                        _flush_pending()
                    cev = coll.process(r)
                else:
                    cev = ()
                pending[codes_l[p]] = p

                # --- remaining detectors, in _run_detectors order -------
                new_complex = list(cev) if cev else None
                lev = loit_get(p)
                if lev is not None:
                    if new_complex is None:
                        new_complex = [lev]
                    else:
                        new_complex.append(lev)
                if events:
                    if new_complex is None:
                        new_complex = []
                    for event in events:
                        new_complex.extend(rdv_process(event))
                    new_complex.extend(rdv_tick(t_l[p]))
                elif rdv_pairs:
                    # tick() with no co-stopped pairs is a pure no-op.
                    ticked = rdv_tick(t_l[p])
                    if ticked:
                        if new_complex is None:
                            new_complex = ticked
                        else:
                            new_complex.extend(ticked)
                if cap is not None:
                    if new_complex is None:
                        new_complex = []
                    new_complex.extend(cap.process(r))
                if hot is not None:
                    if new_complex is None:
                        new_complex = []
                    new_complex.extend(hot.process(r))
                if new_complex:
                    if obs:
                        # Created lazily, exactly like _run_detectors: a
                        # run with no complex events never registers it.
                        self.metrics.counter("cep.complex_events").inc(
                            len(new_complex)
                        )
                    for event in new_complex:
                        result.complex_events.append(event)
                        if persist:
                            triples = self.transformer.event_to_triples(event)
                            event_docs.append(triples)
                            result.triples_stored += len(triples)
                    out.extend(new_complex)

            if pending:
                _flush_pending()
            if event_docs:
                self.store.add_documents(event_docs)

        if obs:
            t_now = pc()
            if stage_n:
                buf["detectors"].append((t_now - t_prev) / stage_n)
            wall["detectors"] += t_now - t_prev
            buf["end_to_end"].append((t_now - t_batch) / n)
            wall["end_to_end"] += t_now - t_batch
            if (base // 4096) != (result.reports_in // 4096):
                self._flush_latency()
        return out

    def _span(self, name: str, records: int = 0):
        """A child span when the current record is being traced, else a no-op."""
        if self._trace_this_record:
            return self.metrics.span(name, records=records)
        return NULL_SPAN

    def _retry_rng_for(self, stage: str) -> random.Random:
        """The per-stage backoff-jitter RNG stream (lazily created)."""
        rng = self._retry_rngs.get(stage)
        if rng is None:
            seed = self._chaos.seed if self._chaos is not None else 0
            rng = random.Random(stable_hash((seed, "retry", stage)))
            self._retry_rngs[stage] = rng
        return rng

    def _stage_call(self, stage: str, report: PositionReport, fn: Callable[[], T]) -> T:
        """Run one stage body under the chaos retry policy.

        Faults are injected at stage entry, before ``fn`` executes, so a
        retried attempt never observes a partially-applied stage. When the
        retry budget is exhausted, the report is dead-lettered and record
        processing aborts via :class:`_DeadLettered`.
        """
        if self._chaos is None:
            return fn()
        result = self._result
        policy = self._chaos.retry
        attempt = 0
        while True:
            try:
                if self._injector is not None:
                    self._injector.maybe_fail(stage)
                return fn()
            except TransientFault as exc:
                self._record_faulted = True
                result.stage_failures[stage] = result.stage_failures.get(stage, 0) + 1
                self.metrics.counter(f"pipeline.{stage}.failures").inc()
                if attempt >= policy.max_retries:
                    result.dead_letters.append(
                        DeadLetter(
                            stage=stage,
                            value=report,
                            event_time=report.t,
                            error=str(exc),
                            attempts=attempt + 1,
                        )
                    )
                    self.metrics.counter(f"pipeline.{stage}.dead_letters").inc()
                    raise _DeadLettered(stage) from exc
                result.simulated_backoff_s += policy.backoff_s(
                    attempt, self._retry_rng_for(stage)
                )
                result.stage_retries[stage] = result.stage_retries.get(stage, 0) + 1
                self.metrics.counter(f"pipeline.{stage}.retries").inc()
                attempt += 1

    def _process_stages(
        self, report: PositionReport, t_start: float = 0.0
    ) -> list[ComplexEvent]:
        result = self._result
        obs = self._obs
        # Chained timestamps: the record start passed by the caller doubles
        # as the first stage's start and each stage's end doubles as the
        # next stage's start, so timing all five stages costs one clock
        # read per stage (inter-stage bookkeeping is charged to the
        # following stage).
        if obs:
            pc = monotonic
            buf = self._lat_buf
            wall = self._stage_wall
            t_prev = t_start

        with self._span("pipeline.clean", records=1):
            ok = self._stage_call(
                "clean",
                report,
                lambda: self._dedup.accept(report) and self._plausibility.accept(report),
            )
        if obs:
            t_now = pc()
            buf["clean"].append(t_now - t_prev)
            wall["clean"] += t_now - t_prev
            t_prev = t_now
        if not ok:
            return []
        result.reports_clean += 1

        with self._span("pipeline.synopses", records=1):
            annotated, keep = self._stage_call(
                "synopses", report, lambda: self._synopses.process(report)
            )
        if obs:
            t_now = pc()
            buf["synopses"].append(t_now - t_prev)
            wall["synopses"] += t_now - t_prev
            t_prev = t_now

        if keep:
            result.reports_kept += 1
            if self.config.persist_rdf:
                with self._span("pipeline.rdf", records=1):
                    result.triples_stored += self._stage_call(
                        "rdf",
                        report,
                        lambda: self._store_report_doc(
                            annotated, report, interlink=self.config.interlink
                        ),
                    )
                if obs:
                    t_now = pc()
                    buf["rdf"].append(t_now - t_prev)
                    wall["rdf"] += t_now - t_prev
                    t_prev = t_now
        elif self.config.persist_rdf and self.config.persist_raw_reports:
            with self._span("pipeline.rdf", records=1):
                result.triples_stored += self._stage_call(
                    "rdf",
                    report,
                    lambda: self._store_report_doc(report, report, interlink=False),
                )
            if obs:
                t_now = pc()
                buf["rdf"].append(t_now - t_prev)
                wall["rdf"] += t_now - t_prev
                t_prev = t_now

        with self._span("pipeline.events", records=1):
            simple_events = self._stage_call(
                "events", report, lambda: self._extractor.process(report)
            )
        result.simple_events.extend(simple_events)
        if obs:
            t_now = pc()
            buf["events"].append(t_now - t_prev)
            wall["events"] += t_now - t_prev
            t_prev = t_now

        with self._span("pipeline.detectors", records=1):
            new_complex = self._stage_call(
                "detectors", report, lambda: self._run_detectors(report, simple_events)
            )
        if obs:
            t_now = pc()
            buf["detectors"].append(t_now - t_prev)
            wall["detectors"] += t_now - t_prev
            self._record_end = t_now

        for event in new_complex:
            result.complex_events.append(event)
            if self.config.persist_rdf:
                triples = self.transformer.event_to_triples(event)
                self.store.add_document(triples)
                result.triples_stored += len(triples)
        if new_complex and obs:
            self._record_end = pc()

        return new_complex

    def _store_report_doc(
        self, item, report: PositionReport, interlink: bool
    ) -> int:
        """Persist one report document; returns the triple count added."""
        triples = self.transformer.report_to_triples(item)
        if interlink:
            triples.extend(self._interlink(report, triples[0].s))
        self.store.add_document(triples)
        return len(triples)

    def _run_detectors(
        self, report: PositionReport, simple_events: list[SimpleEvent]
    ) -> list[ComplexEvent]:
        """Run every complex-event detector over one report."""
        new_complex: list[ComplexEvent] = []
        with self._span("cep.collision"):
            new_complex.extend(self._collision.process(report))
        with self._span("cep.loitering"):
            new_complex.extend(self._loitering.process(report))
        with self._span("cep.rendezvous", records=len(simple_events)):
            for event in simple_events:
                new_complex.extend(self._rendezvous.process(event))
            new_complex.extend(self._rendezvous.tick(report.t))
        if self._capacity is not None:
            with self._span("cep.capacity"):
                new_complex.extend(self._capacity.process(report))
        if self._hotspots is not None:
            with self._span("cep.hotspots"):
                new_complex.extend(self._hotspots.process(report))
        if new_complex and self._obs:
            self.metrics.counter("cep.complex_events").inc(len(new_complex))
        return new_complex

    def _interlink(
        self,
        report: PositionReport,
        node,
        doc_sink: list | None = None,
        containing: "Sequence[Polygon] | None" = None,
    ) -> list:
        """Online integration: zone containment + weather enrichment links.

        Containment goes through the shared :class:`ZoneIndex` when one
        was built (same containing zones, same order, without the linear
        polygon scan); the columnar path passes ``containing`` precomputed
        from one bulk ray-cast per zone, which yields the identical zone
        list. ``doc_sink`` is the micro-batch hook: when given, a newly
        seen weather cell's document is appended there (for one bulk
        insert at stage end) instead of being stored immediately; the
        accounting is identical either way.
        """
        from repro.rdf import vocabulary as V
        from repro.rdf.terms import Triple
        from repro.rdf.transform import weather_iri, zone_iri

        links = []
        if containing is None:
            if self._zone_index is not None:
                containing = self._zone_index.containing(report.lon, report.lat)
            else:
                containing = (
                    z for z in self.zones if z.contains(report.lon, report.lat)
                )
        for zone in containing:
            links.append(Triple(node, V.PROP_WITHIN_ZONE, zone_iri(zone.name)))
        if self.weather is not None:
            cell = self.weather.observation_at(report.lon, report.lat, report.t)
            cell_key = (cell.cell_id, cell.t_start)
            if cell_key not in self._stored_weather_cells:
                self._stored_weather_cells.add(cell_key)
                weather_doc = self.transformer.weather_to_triples(cell)
                if doc_sink is None:
                    self.store.add_document(weather_doc)
                else:
                    doc_sink.append(weather_doc)
                self._result.triples_stored += len(weather_doc)
            links.append(
                Triple(node, V.PROP_HAS_WEATHER, weather_iri(cell.cell_id, cell.t_start))
            )
        return links

    def run(
        self,
        source: "Iterable[PositionReport] | Iterable[RecordBatch]",
        *,
        batch: BatchOptions | None = None,
        checkpoints: CheckpointOptions | None = None,
    ) -> PipelineResult:
        """Process one (event-time ordered) source end to end and finalize.

        The single run entry point. ``source`` is either a plain report
        stream or a stream of :class:`RecordBatch` instances (native
        columnar emission — e.g.
        :meth:`~repro.sources.generators.TrafficSample.record_batches`);
        the two keyword groups select the execution mode:

        - ``batch``: slice a report stream into micro-batches of
          ``batch.size`` and push them through :meth:`process_batch`
          (RecordBatch sources are already sliced and always run
          batched). Content-equivalent to the record-at-a-time path for
          any size — batching only trades per-record overhead against
          buffering.
        - ``checkpoints``: save a checkpoint every ``interval`` records
          (at the first batch boundary past each multiple when batching),
          and/or ``resume`` from the store's latest checkpoint, skipping
          the source prefix it covers. Resuming re-batches the remaining
          suffix, which is safe under batch-slicing invariance; a
          RecordBatch source is flattened to its record view for the
          skip.

        Replaces the deprecated ``run_batched``, ``run_with_checkpoints``,
        ``run_batches_with_checkpoints`` and ``resume_from_checkpoint``.
        """
        run_started = monotonic()
        offset = 0
        cp_store: CheckpointStore | None = None
        cp_interval: int | None = None
        if checkpoints is not None:
            cp_store = checkpoints.store
            cp_interval = checkpoints.interval
            offset = checkpoints.start_offset
            if checkpoints.resume:
                checkpoint = cp_store.latest()
                if checkpoint is None:
                    raise ValueError("no checkpoint to resume from")
                self.restore(checkpoint.states)
                offset = checkpoint.source_offset
                if isinstance(source, ReplayLog):
                    source = source.read(offset)
                else:
                    source = itertools.islice(
                        _flatten_records(source), offset, None
                    )
        stream = iter(source)
        first = next(stream, None)
        if first is None:
            return self._finalize(run_started)

        def save(at_offset: int) -> None:
            cp_store.save(
                Checkpoint(
                    checkpoint_id=cp_store.next_id(),
                    source_offset=at_offset,
                    states=self.snapshot(),
                )
            )

        if isinstance(first, RecordBatch) or batch is not None:
            if isinstance(first, RecordBatch):
                batches: Iterable[Any] = itertools.chain((first,), stream)
                process: Callable[[Any], list[ComplexEvent]] = (
                    self.process_recordbatch
                )
            else:
                batches = _iter_batches(
                    itertools.chain((first,), stream), batch.size
                )
                process = self.process_batch
            boundary = offset // cp_interval if cp_interval else 0
            for b in batches:
                if len(b) == 0:
                    continue
                process(b)
                offset += len(b)
                if cp_interval and offset // cp_interval > boundary:
                    boundary = offset // cp_interval
                    save(offset)
            return self._finalize(run_started)
        for report in itertools.chain((first,), stream):
            self.process_report(report)
            offset += 1
            if cp_interval and offset % cp_interval == 0:
                save(offset)
        return self._finalize(run_started)

    def run_batched(
        self, reports: Iterable[PositionReport], batch_size: int = 256
    ) -> PipelineResult:
        """Deprecated alias for ``run(reports, batch=BatchOptions(size))``."""
        warnings.warn(
            "MobilityPipeline.run_batched is deprecated; use "
            "run(reports, batch=BatchOptions(size=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return self.run(reports, batch=BatchOptions(size=batch_size))

    def _finalize(self, run_started: float) -> PipelineResult:
        """Flush windowed detectors and summarize the run."""
        for detector in (self._capacity, self._hotspots):
            if detector is None:
                continue
            for event in detector.flush():
                self._result.complex_events.append(event)
                if self.config.persist_rdf:
                    triples = self.transformer.event_to_triples(event)
                    self.store.add_document(triples)
                    self._result.triples_stored += len(triples)
        self._result.wall_time_s = monotonic() - run_started
        self._flush_latency()
        self._result.stage_latency = {
            stage: hist.summary() for stage, hist in self._latency.items()
        }
        self._result.end_to_end = self._end_to_end.summary()
        if self.metrics.enabled:
            self._synopses.publish_metrics()
            self.metrics.gauge("pipeline.throughput_rps").set(
                self._result.throughput_rps
            )
            self._result.metrics = self.metrics.as_dict()
        return self._result

    def stage_wall_seconds(self) -> dict[str, float]:
        """Cumulative wall-clock seconds spent per stage since construction.

        Raw (un-normalized) elapsed time accumulated at the same stage
        boundaries that feed the latency histograms, on every ingest path
        (per-record, stage-sliced batch, columnar). ``end_to_end`` is the
        total pipeline wall, so per-stage shares are directly comparable
        across batch sizes. All zeros when the registry is disabled.
        """
        return dict(self._stage_wall)

    def _flush_latency(self) -> None:
        """Land the buffered per-record samples on the registry histograms."""
        if not self._obs:
            return
        for stage in sorted(self._lat_buf):
            buf = self._lat_buf[stage]
            if not buf:
                continue
            hist = self._end_to_end if stage == "end_to_end" else self._latency[stage]
            hist.record_many(buf)
            buf.clear()

    # -- checkpoint / recovery --------------------------------------------------

    #: Every attribute holding mutable run state. The transformer and the
    #: geo/config objects are immutable configuration and are rebuilt by
    #: the constructor; the executor is rebound to the restored store.
    _STATEFUL_COMPONENTS: tuple[str, ...] = (
        "_dedup",
        "_plausibility",
        "_synopses",
        "_extractor",
        "_collision",
        "_loitering",
        "_rendezvous",
        "_capacity",
        "_hotspots",
        "store",
        "_stored_weather_cells",
        "metrics",
        "_latency",
        "_end_to_end",
        "_result",
        "_injector",
        "_retry_rngs",
        "_stage_wall",
    )

    # lint: allow[C1] per-record transients (_trace_this_record, _record_faulted, _record_end) are dead at the record-boundary barrier; _lat_buf is drained into the checkpointed registry by _flush_latency() below
    def snapshot(self) -> dict[str, Any]:
        """Deep-copy every stateful component into a checkpoint payload.

        One deepcopy call over the whole component dict, so references
        shared *between* components — notably the observability registry,
        whose instruments the store, synopses and extractor all hold —
        stay shared inside the snapshot. Buffered latency samples and
        deferred synopses counters are flushed first so the checkpointed
        registry reflects every record processed so far.
        """
        self._flush_latency()
        if self.metrics.enabled:
            self._synopses.publish_metrics()
        return copy.deepcopy(
            {name: getattr(self, name) for name in self._STATEFUL_COMPONENTS}
        )

    # lint: allow[C1] per-record transients (_trace_this_record, _record_faulted, _record_end) are reinitialized per record; resume always starts at a record boundary
    def restore(self, states: dict[str, Any]) -> None:
        """Reinstate a :meth:`snapshot` payload on a compatibly-built pipeline.

        The payload is copied in, so the stored checkpoint stays pristine
        and can serve further resume attempts. The copy is again a single
        deepcopy, preserving cross-component sharing (one registry).
        """
        missing = [n for n in self._STATEFUL_COMPONENTS if n not in states]
        if missing:
            raise KeyError(f"checkpoint is missing component state: {missing}")
        copied = copy.deepcopy(states)
        for name in self._STATEFUL_COMPONENTS:
            setattr(self, name, copied[name])
        self.executor = QueryExecutor(self.store, metrics=self.metrics)
        # Cached obs state follows the restored registry; unflushed samples
        # from after the checkpoint was taken must not leak into it.
        self._obs = self.metrics.enabled
        self._trace_every = self.config.trace_every_n if self._obs else 0
        for buf in self._lat_buf.values():
            buf.clear()
        # The emitter's interning caches are bound to the *replaced*
        # store's dictionary; rebuild (and re-verify) against the
        # restored one. Derived state only — nothing to checkpoint.
        self._emitter = self._build_emitter()

    def run_with_checkpoints(
        self,
        reports: Iterable[PositionReport],
        checkpoint_store: CheckpointStore,
        checkpoint_interval: int,
        start_offset: int = 0,
    ) -> PipelineResult:
        """Deprecated alias for ``run(reports, checkpoints=...)``."""
        warnings.warn(
            "MobilityPipeline.run_with_checkpoints is deprecated; use "
            "run(reports, checkpoints=CheckpointOptions(store=..., "
            "interval=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        return self.run(
            reports,
            checkpoints=CheckpointOptions(
                store=checkpoint_store,
                interval=checkpoint_interval,
                start_offset=start_offset,
            ),
        )

    def run_batches_with_checkpoints(
        self,
        batches: Iterable[Sequence[PositionReport]],
        checkpoint_store: CheckpointStore,
        checkpoint_interval: int,
        start_offset: int = 0,
    ) -> PipelineResult:
        """Deprecated alias for ``run(recordbatches(batches), checkpoints=...)``.

        The pre-sliced batches are wrapped as :class:`RecordBatch`
        instances (offsets running from ``start_offset``) and pushed
        through the unified entry point; checkpoints land at the first
        batch boundary at or past each multiple of the interval, exactly
        as before.
        """
        warnings.warn(
            "MobilityPipeline.run_batches_with_checkpoints is deprecated; "
            "use run(recordbatches(batches), "
            "checkpoints=CheckpointOptions(store=..., interval=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        return self.run(
            recordbatches(batches, start_offset=start_offset),
            checkpoints=CheckpointOptions(
                store=checkpoint_store,
                interval=checkpoint_interval,
                start_offset=start_offset,
            ),
        )

    def resume_from_checkpoint(
        self,
        checkpoint_store: CheckpointStore,
        reports: "ReplayLog[PositionReport] | Sequence[PositionReport]",
        checkpoint_interval: int | None = None,
        batch_size: int | None = None,
    ) -> PipelineResult:
        """Deprecated alias for ``run(reports, checkpoints=...resume=True)``."""
        warnings.warn(
            "MobilityPipeline.resume_from_checkpoint is deprecated; use "
            "run(reports, checkpoints=CheckpointOptions(store=..., "
            "resume=True))",
            DeprecationWarning,
            stacklevel=2,
        )
        if batch_size is not None and batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return self.run(
            reports,
            batch=BatchOptions(size=batch_size) if batch_size is not None else None,
            checkpoints=CheckpointOptions(
                store=checkpoint_store,
                interval=checkpoint_interval,
                resume=True,
            ),
        )

    @property
    def result(self) -> PipelineResult:
        """The (possibly still accumulating) run result."""
        return self._result

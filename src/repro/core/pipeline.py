"""The end-to-end mobility analytics pipeline.

Per report (in event-time order):

1. **in-situ cleaning** — duplicate and plausibility filters;
2. **synopses** — keep/drop with critical-point annotation;
3. **transformation + storage** — kept reports become RDF documents in the
   parallel store (entities and zones are loaded at construction);
4. **simple events** — derived from every *clean* report (detection runs
   on the full-rate stream: alerting must not wait for the synopsis);
5. **complex events** — collision risk, loitering, rendezvous, capacity
   demand; matches are persisted as RDF too.

Every stage is timed per record; :meth:`MobilityPipeline.run` returns a
:class:`PipelineResult` with counts, latency summaries and handles to the
store/query layer for follow-up analysis.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from repro.cep.detectors import (
    CapacityDemandDetector,
    CollisionRiskDetector,
    LoiteringDetector,
    RendezvousDetector,
)
from repro.cep.simple import SimpleEventExtractor
from repro.core.config import PipelineConfig
from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.geo.polygon import Polygon
from repro.geo.zone_index import PREFILTER_MIN_ZONES, ZoneIndex
from repro.hashing import stable_hash
from repro.insitu.filters import DeduplicateFilter, PlausibilityFilter
from repro.insitu.synopses import SynopsesGenerator
from repro.model.entities import EntityRegistry
from repro.obs.clock import monotonic
from repro.model.events import ComplexEvent, SimpleEvent
from repro.model.points import Domain
from repro.model.reports import PositionReport
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_SPAN
from repro.query.executor import QueryExecutor
from repro.rdf.transform import RdfTransformer
from repro.store.parallel import ParallelRDFStore
from repro.sources.weather import WeatherGridSource
from repro.store.partition import GridPartitioner, HashPartitioner, HilbertPartitioner
from repro.streams.chaos import (
    ChaosConfig,
    DeadLetter,
    TransientFault,
    TransientFaultInjector,
)
from repro.streams.checkpoint import Checkpoint, CheckpointStore
from repro.streams.replay import ReplayLog

T = TypeVar("T")


class _DeadLettered(Exception):
    """Internal control flow: the current report exhausted its retries."""


def _iter_batches(
    reports: Iterable[PositionReport], batch_size: int
) -> Iterator[list[PositionReport]]:
    """Slice a stream into order-preserving batches of up to ``batch_size``."""
    batch: list[PositionReport] = []
    for report in reports:
        batch.append(report)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


@dataclass
class PipelineResult:
    """Counters and latency summaries of one pipeline run.

    Attributes map 1:1 to the numbers E2/E7 report. ``metrics`` is the
    full observability-registry snapshot (counters, gauges, histogram
    percentiles, trace stats) in the same schema
    :class:`repro.query.executor.ExecutionReport` carries — one format
    for every benchmark and test to read.
    """

    reports_in: int = 0
    reports_clean: int = 0
    reports_kept: int = 0
    triples_stored: int = 0
    simple_events: list[SimpleEvent] = field(default_factory=list)
    complex_events: list[ComplexEvent] = field(default_factory=list)
    stage_latency: dict[str, dict[str, float]] = field(default_factory=dict)
    end_to_end: dict[str, float] = field(default_factory=dict)
    wall_time_s: float = 0.0
    #: Degraded-mode accounting (all zero/empty without a chaos config):
    #: transient failures observed per stage,
    stage_failures: dict[str, int] = field(default_factory=dict)
    #: retries performed per stage,
    stage_retries: dict[str, int] = field(default_factory=dict)
    #: reports that exhausted the retry budget,
    dead_letters: list[DeadLetter] = field(default_factory=list)
    #: reports that failed at least once but ultimately completed,
    records_recovered: int = 0
    #: and the total backoff delay the retries would have waited.
    simulated_backoff_s: float = 0.0
    #: Snapshot of the pipeline's :class:`~repro.obs.MetricsRegistry`
    #: at finalize time (``{"counters", "gauges", "histograms", "trace"}``).
    metrics: dict = field(default_factory=dict)

    @property
    def dead_letter_count(self) -> int:
        """Number of reports parked in the dead-letter queue."""
        return len(self.dead_letters)

    @property
    def recovery_rate(self) -> float:
        """Fraction of transiently-failing reports that still completed.

        1.0 when no report ever failed (nothing needed recovering).
        """
        troubled = self.records_recovered + len(self.dead_letters)
        if troubled == 0:
            return 1.0
        return self.records_recovered / troubled

    @property
    def compression_ratio(self) -> float:
        """Fraction of clean reports dropped by the synopses stage."""
        if self.reports_clean == 0:
            return 0.0
        return 1.0 - self.reports_kept / self.reports_clean

    @property
    def throughput_rps(self) -> float:
        """End-to-end reports per wall-clock second."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.reports_in / self.wall_time_s

    def summary(self) -> dict[str, float]:
        """Flat numeric summary (the common report shape, see as_dict)."""
        out: dict[str, float] = {
            "reports_in": float(self.reports_in),
            "reports_clean": float(self.reports_clean),
            "reports_kept": float(self.reports_kept),
            "triples_stored": float(self.triples_stored),
            "simple_events": float(len(self.simple_events)),
            "complex_events": float(len(self.complex_events)),
            "compression_ratio": self.compression_ratio,
            "throughput_rps": self.throughput_rps,
            "wall_time_s": self.wall_time_s,
            "dead_letters": float(self.dead_letter_count),
            "recovery_rate": self.recovery_rate,
        }
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            if key in self.end_to_end:
                out[f"end_to_end_{key}"] = self.end_to_end[key]
        return out

    def as_dict(self) -> dict:
        """The common observability report shape.

        ``{"kind", "summary", "metrics"}`` — the same schema as
        :meth:`repro.query.executor.ExecutionReport.as_dict`, so
        benchmarks and tests read one format across tiers.
        """
        return {"kind": "pipeline", "summary": self.summary(), "metrics": self.metrics}

    def deterministic_payload(self) -> dict:
        """Everything the run's content determines, nothing timing does.

        The batch/per-record differential oracle: wall-clock, latency and
        backoff values are excluded by construction; counts, the full
        event streams and the dead-letter ledger are included. Dead
        letters are sorted (stage-major and record-major execution park
        them in different orders; the *set* is identical), and
        ``simulated_backoff_s`` is deliberately absent — the two paths sum
        the same per-retry delays in different order, which floating-point
        addition does not preserve bit-for-bit.
        """
        return {
            "reports_in": self.reports_in,
            "reports_clean": self.reports_clean,
            "reports_kept": self.reports_kept,
            "triples_stored": self.triples_stored,
            "records_recovered": self.records_recovered,
            "stage_failures": dict(sorted(self.stage_failures.items())),
            "stage_retries": dict(sorted(self.stage_retries.items())),
            "simple_events": [
                [e.event_type, e.entity_id, e.t] for e in self.simple_events
            ],
            "complex_events": [
                [e.event_type, list(e.entity_ids), e.t_start, e.t_end]
                for e in self.complex_events
            ],
            "dead_letters": sorted(
                [d.stage, d.event_time, d.attempts] for d in self.dead_letters
            ),
        }

    def deterministic_bytes(self) -> bytes:
        """Canonical JSON encoding of :meth:`deterministic_payload`."""
        return json.dumps(
            self.deterministic_payload(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def deterministic_digest(self) -> str:
        """SHA-256 of :meth:`deterministic_bytes`."""
        return hashlib.sha256(self.deterministic_bytes()).hexdigest()


@dataclass(frozen=True)
class PipelineSpec:
    """A picklable recipe for building identical pipelines in any process.

    The shardable run API: the multi-process runtime
    (:mod:`repro.runtime`) ships one spec to every worker, each worker
    calls :meth:`build`, and all shards run structurally identical
    pipelines over their own key-routed substream. Everything in the spec
    must be picklable and immutable-in-practice (the entity registry and
    zones are only read by the pipeline).

    ``metrics_seed``/``metrics_enabled`` describe the observability
    registry each build creates, so per-worker registries are seeded
    identically and merge deterministically (see
    :meth:`repro.obs.MetricsRegistry.merge`).
    """

    bbox: BBox
    config: PipelineConfig = field(default_factory=PipelineConfig)
    registry: EntityRegistry | None = None
    zones: tuple[Polygon, ...] = ()
    domain: Domain = Domain.MARITIME
    chaos: ChaosConfig | None = None
    metrics_enabled: bool = True
    metrics_seed: int = 2017

    def build(self, metrics: MetricsRegistry | None = None) -> "MobilityPipeline":
        """Construct a fresh pipeline exactly as the spec describes."""
        if metrics is None:
            metrics = MetricsRegistry(
                seed=self.metrics_seed, enabled=self.metrics_enabled
            )
        return MobilityPipeline(
            bbox=self.bbox,
            config=self.config,
            registry=self.registry,
            zones=self.zones,
            domain=self.domain,
            chaos=self.chaos,
            metrics=metrics,
        )


class MobilityPipeline:
    """The full datAcron flow over one geographic world.

    Args:
        chaos: When given, stage executions fail transiently with the
            configured probability and are retried with exponential
            backoff; reports that exhaust the budget land in the result's
            dead-letter queue instead of killing the run (degraded mode).
        metrics: The observability registry shared by every tier of this
            pipeline (in-situ, store, query, CEP). Defaults to a fresh
            enabled registry; pass ``MetricsRegistry(enabled=False)`` for
            a zero-overhead run.
    """

    def __init__(
        self,
        bbox: BBox,
        config: PipelineConfig | None = None,
        registry: EntityRegistry | None = None,
        zones: Iterable[Polygon] = (),
        domain: Domain = Domain.MARITIME,
        weather: "WeatherGridSource | None" = None,
        chaos: ChaosConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.registry = registry or EntityRegistry()
        self.zones = list(zones)
        self.domain = domain
        self.grid = GeoGrid(bbox=bbox, nx=self.config.grid_nx, ny=self.config.grid_ny)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

        # In-situ layer.
        self._dedup = DeduplicateFilter()
        self._plausibility = PlausibilityFilter(registry=self.registry)
        if self.config.adaptive_keep_rate is not None:
            from repro.insitu.adaptive import AdaptiveConfig, AdaptiveSynopsesGenerator

            self._synopses = AdaptiveSynopsesGenerator(
                base=self.config.synopses,
                adaptive=AdaptiveConfig(target_keep_rate=self.config.adaptive_keep_rate),
                metrics=self.metrics,
            )
        else:
            self._synopses = SynopsesGenerator(self.config.synopses, metrics=self.metrics)

        # Transformation + storage.
        self.transformer = RdfTransformer(
            st_grid=self.grid, time_bucket_s=self.config.time_bucket_s
        )
        self.store = ParallelRDFStore(self._build_partitioner(), metrics=self.metrics)
        self.weather = weather
        self._stored_weather_cells: set[tuple[int, float]] = set()
        self.executor = QueryExecutor(self.store, metrics=self.metrics)
        if self.config.persist_rdf:
            for entity in self.registry:
                self.store.add_document(self.transformer.entity_to_triples(entity))
            for zone in self.zones:
                self.store.add_document(self.transformer.zone_to_triples(zone))

        # Analytics layer. With enough zones, one grid-prefiltered
        # containment index is shared by the simple-event extractor and
        # _interlink — both used to linearly scan every polygon per record.
        self._zone_index = (
            ZoneIndex(self.zones) if len(self.zones) >= PREFILTER_MIN_ZONES else None
        )
        self._extractor = SimpleEventExtractor(
            config=self.config.simple_events,
            zones=self.zones,
            registry=self.registry,
            grid=None,
            metrics=self.metrics,
            zone_index=self._zone_index,
        )
        self._collision = CollisionRiskDetector(
            cpa_threshold_m=self.config.collision_cpa_m,
            tcpa_threshold_s=self.config.collision_tcpa_s,
        )
        self._loitering = LoiteringDetector(
            radius_m=self.config.loitering_radius_m,
            min_duration_s=self.config.loitering_duration_s,
        )
        self._rendezvous = RendezvousDetector(
            radius_m=self.config.rendezvous_radius_m,
            min_duration_s=self.config.rendezvous_duration_s,
        )
        self._capacity = (
            CapacityDemandDetector(
                sectors=self.zones,
                capacity=self.config.capacity_limit,
                window_s=self.config.capacity_window_s,
            )
            if domain is Domain.AVIATION and self.zones
            else None
        )
        if self.config.hotspots:
            from repro.cep.hotspot_stream import StreamingHotspotDetector

            self._hotspots = StreamingHotspotDetector(
                self.grid,
                window_s=self.config.hotspot_window_s,
                z_threshold=self.config.hotspot_z_threshold,
            )
        else:
            self._hotspots = None

        # Stage latency histograms live on the shared registry (one
        # instrument surface across tiers); the dict keeps the short
        # stage-name view the result reports.
        self._latency = {
            stage: self.metrics.histogram(f"pipeline.{stage}")
            for stage in ("clean", "synopses", "rdf", "events", "detectors")
        }
        self._end_to_end = self.metrics.histogram("pipeline.end_to_end")
        # Hot-path discipline: per-record samples go into plain lists
        # (one bound append each) and land on the histograms in batches —
        # see _flush_latency. With a disabled registry the whole timing
        # path is skipped, so no-op mode costs nothing per record.
        self._obs = self.metrics.enabled
        self._trace_every = self.config.trace_every_n if self._obs else 0
        self._lat_buf: dict[str, list[float]] = {
            stage: []
            for stage in (
                "clean", "synopses", "rdf", "events", "detectors", "end_to_end"
            )
        }
        self._trace_this_record = False
        self._record_end = 0.0
        self._result = PipelineResult()

        # Degraded-mode (chaos) path.
        self._chaos = chaos
        if chaos is not None and chaos.fail_prob > 0:
            self._injector = TransientFaultInjector(
                chaos.fail_prob, seed=chaos.seed, stages=chaos.stages
            )
        else:
            self._injector = None
        # One backoff-jitter RNG per stage (lazily seeded, stable hash of
        # (seed, stage)): the i-th retry of a given stage draws the same
        # jitter no matter how other stages' retries interleave, which
        # keeps record-major and stage-major (micro-batch) execution on
        # identical draw sequences — same reason the fault injector keeps
        # per-stage streams.
        self._retry_rngs: dict[str, random.Random] = {}
        self._record_faulted = False

    def _build_partitioner(self):
        n = self.config.n_partitions
        if self.config.partitioner == "hash":
            return HashPartitioner(n)
        if self.config.partitioner == "grid":
            return GridPartitioner(self.grid, n)
        return HilbertPartitioner(self.grid, n)

    # -- processing -------------------------------------------------------------

    def process_report(self, report: PositionReport) -> list[ComplexEvent]:
        """Push one report through every stage; returns new complex events.

        Under a chaos config, stage executions may fail transiently and be
        retried; a report that exhausts its retry budget is parked in the
        dead-letter queue and dropped (the run continues degraded).
        """
        result = self._result
        result.reports_in += 1
        obs = self._obs
        record_span = NULL_SPAN
        record_started = 0.0
        if obs:
            every_n = self._trace_every
            self._trace_this_record = (
                every_n > 0 and (result.reports_in - 1) % every_n == 0
            )
            if self._trace_this_record:
                record_span = self.metrics.span("pipeline.record", records=1)
            record_started = monotonic()
        self._record_faulted = False
        with record_span:
            try:
                new_complex = self._process_stages(report, record_started)
            except _DeadLettered:
                if obs:
                    self._lat_buf["end_to_end"].append(
                        monotonic() - record_started
                    )
                return []
        if self._record_faulted:
            result.records_recovered += 1
        if obs:
            # _process_stages leaves its final clock read in _record_end,
            # so closing the end-to-end sample costs no extra read.
            self._lat_buf["end_to_end"].append(self._record_end - record_started)
            if result.reports_in % 4096 == 0:
                self._flush_latency()
        return new_complex

    def process_batch(self, reports: Sequence[PositionReport]) -> list[ComplexEvent]:
        """Push a micro-batch through the pipeline, stage-sliced.

        Instead of running all five stages per record, the whole batch is
        cleaned, then synopsized, then transformed/stored (one bulk
        :meth:`ParallelRDFStore.add_documents` call), then run through
        simple-event extraction and the detectors. Per-record span and
        timing overhead collapses to per-batch: one clock read per stage,
        one amortized per-record histogram sample per stage per batch.

        Equivalence contract (enforced by the differential suite): the
        result's :meth:`PipelineResult.deterministic_bytes` — counts,
        event streams, dead letters, fault/retry accounting — is
        byte-identical to feeding the same records one at a time through
        :meth:`process_report`, for any batch size, with or without a
        chaos config. Store *content* (decoded triples) is identical too;
        only dictionary ids differ, because the batch path lands event
        documents after all report documents instead of interleaved.
        Under chaos, stage bodies run per record (stage-major order) so
        the per-stage fault and backoff RNG streams line up with the
        per-record path; without chaos, cleaning runs through the
        vectorised :meth:`PlausibilityFilter.accept_batch`.

        Returns the new complex events, in the same order the per-record
        path would emit them.
        """
        batch = list(reports)
        n = len(batch)
        if n == 0:
            return []
        result = self._result
        obs = self._obs
        chaos = self._chaos
        base = result.reports_in
        result.reports_in += n

        batch_span = NULL_SPAN
        if obs:
            every = self._trace_every
            # Trace the batch when the per-record path would have traced
            # one of its records: a multiple of trace_every_n in [base, base+n).
            if every > 0 and ((base + every - 1) // every) * every < base + n:
                batch_span = self.metrics.span("pipeline.batch", records=n)
            self._trace_this_record = False
            pc = monotonic
            buf = self._lat_buf
            t_batch = pc()
            t_prev = t_batch

        # dead[i]: record i exhausted a retry budget somewhere (chaos only);
        # faulted[i]: record i failed transiently at least once.
        dead = [False] * n
        faulted = [False] * n

        with batch_span:
            # -- clean: dedup + plausibility over the whole batch ------------
            if chaos is None:
                survivors = [i for i in range(n) if self._dedup.accept(batch[i])]
                flags = self._plausibility.accept_batch([batch[i] for i in survivors])
                active = [i for i, ok in zip(survivors, flags) if ok]
            else:
                active = []
                for i in range(n):
                    report = batch[i]
                    self._record_faulted = False
                    try:
                        ok = self._stage_call(
                            "clean",
                            report,
                            lambda r=report: self._dedup.accept(r)
                            and self._plausibility.accept(r),
                        )
                    except _DeadLettered:
                        dead[i] = True
                        continue
                    if self._record_faulted:
                        faulted[i] = True
                    if ok:
                        active.append(i)
            result.reports_clean += len(active)
            if obs:
                t_now = pc()
                buf["clean"].append((t_now - t_prev) / n)
                t_prev = t_now

            # -- synopses ----------------------------------------------------
            stage_n = len(active)
            decisions: list[tuple[int, tuple[Any, bool]]] = []
            if chaos is None:
                decisions = list(
                    zip(active, self._synopses.process_batch([batch[i] for i in active]))
                )
            else:
                for i in active:
                    report = batch[i]
                    self._record_faulted = False
                    try:
                        pair = self._stage_call(
                            "synopses", report, lambda r=report: self._synopses.process(r)
                        )
                    except _DeadLettered:
                        dead[i] = True
                        continue
                    if self._record_faulted:
                        faulted[i] = True
                    decisions.append((i, pair))
            for __, (__a, keep) in decisions:
                if keep:
                    result.reports_kept += 1
            if obs:
                t_now = pc()
                if stage_n:
                    buf["synopses"].append((t_now - t_prev) / stage_n)
                t_prev = t_now

            # -- rdf: transform + bulk store ---------------------------------
            stage_n = 0
            if self.config.persist_rdf:
                raw = self.config.persist_raw_reports
                interlink = self.config.interlink
                if chaos is None:
                    docs: list[list] = []
                    for i, (annotated, keep) in decisions:
                        report = batch[i]
                        if keep:
                            triples = self.transformer.report_to_triples(annotated)
                            if interlink:
                                triples.extend(
                                    self._interlink(report, triples[0].s, doc_sink=docs)
                                )
                        elif raw:
                            triples = self.transformer.report_to_triples(report)
                        else:
                            continue
                        docs.append(triples)
                        result.triples_stored += len(triples)
                        stage_n += 1
                    if docs:
                        self.store.add_documents(docs)
                else:
                    still: list[tuple[int, tuple[Any, bool]]] = []
                    for i, (annotated, keep) in decisions:
                        report = batch[i]
                        if not keep and not raw:
                            still.append((i, (annotated, keep)))
                            continue
                        self._record_faulted = False
                        try:
                            if keep:
                                added = self._stage_call(
                                    "rdf",
                                    report,
                                    lambda a=annotated, r=report: self._store_report_doc(
                                        a, r, interlink=interlink
                                    ),
                                )
                            else:
                                added = self._stage_call(
                                    "rdf",
                                    report,
                                    lambda r=report: self._store_report_doc(
                                        r, r, interlink=False
                                    ),
                                )
                        except _DeadLettered:
                            dead[i] = True
                            continue
                        if self._record_faulted:
                            faulted[i] = True
                        result.triples_stored += added
                        stage_n += 1
                        still.append((i, (annotated, keep)))
                    decisions = still
                if obs:
                    t_now = pc()
                    if stage_n:
                        buf["rdf"].append((t_now - t_prev) / stage_n)
                    t_prev = t_now

            # -- simple events -----------------------------------------------
            stage_n = len(decisions)
            per_record_events: list[tuple[int, list[SimpleEvent]]] = []
            if chaos is None:
                for i, __pair in decisions:
                    events = self._extractor.process(batch[i])
                    result.simple_events.extend(events)
                    per_record_events.append((i, events))
            else:
                for i, __pair in decisions:
                    report = batch[i]
                    self._record_faulted = False
                    try:
                        events = self._stage_call(
                            "events", report, lambda r=report: self._extractor.process(r)
                        )
                    except _DeadLettered:
                        dead[i] = True
                        continue
                    if self._record_faulted:
                        faulted[i] = True
                    result.simple_events.extend(events)
                    per_record_events.append((i, events))
            if obs:
                t_now = pc()
                if stage_n:
                    buf["events"].append((t_now - t_prev) / stage_n)
                t_prev = t_now

            # -- detectors + bulk event persistence --------------------------
            stage_n = len(per_record_events)
            out: list[ComplexEvent] = []
            event_docs: list[list] = []
            persist = self.config.persist_rdf
            for i, simple_events in per_record_events:
                report = batch[i]
                if chaos is None:
                    new_complex = self._run_detectors(report, simple_events)
                else:
                    self._record_faulted = False
                    try:
                        new_complex = self._stage_call(
                            "detectors",
                            report,
                            lambda r=report, e=simple_events: self._run_detectors(r, e),
                        )
                    except _DeadLettered:
                        dead[i] = True
                        continue
                    if self._record_faulted:
                        faulted[i] = True
                # Complex-event persistence sits outside the fault scope on
                # the per-record path too, so bulk-landing the documents
                # after the loop is safe under chaos as well.
                for event in new_complex:
                    result.complex_events.append(event)
                    if persist:
                        triples = self.transformer.event_to_triples(event)
                        event_docs.append(triples)
                        result.triples_stored += len(triples)
                out.extend(new_complex)
            if event_docs:
                self.store.add_documents(event_docs)

        if chaos is not None:
            for i in range(n):
                if faulted[i] and not dead[i]:
                    result.records_recovered += 1
        if obs:
            t_now = pc()
            if stage_n:
                buf["detectors"].append((t_now - t_prev) / stage_n)
            buf["end_to_end"].append((t_now - t_batch) / n)
            if (base // 4096) != (result.reports_in // 4096):
                self._flush_latency()
        return out

    def _span(self, name: str, records: int = 0):
        """A child span when the current record is being traced, else a no-op."""
        if self._trace_this_record:
            return self.metrics.span(name, records=records)
        return NULL_SPAN

    def _retry_rng_for(self, stage: str) -> random.Random:
        """The per-stage backoff-jitter RNG stream (lazily created)."""
        rng = self._retry_rngs.get(stage)
        if rng is None:
            seed = self._chaos.seed if self._chaos is not None else 0
            rng = random.Random(stable_hash((seed, "retry", stage)))
            self._retry_rngs[stage] = rng
        return rng

    def _stage_call(self, stage: str, report: PositionReport, fn: Callable[[], T]) -> T:
        """Run one stage body under the chaos retry policy.

        Faults are injected at stage entry, before ``fn`` executes, so a
        retried attempt never observes a partially-applied stage. When the
        retry budget is exhausted, the report is dead-lettered and record
        processing aborts via :class:`_DeadLettered`.
        """
        if self._chaos is None:
            return fn()
        result = self._result
        policy = self._chaos.retry
        attempt = 0
        while True:
            try:
                if self._injector is not None:
                    self._injector.maybe_fail(stage)
                return fn()
            except TransientFault as exc:
                self._record_faulted = True
                result.stage_failures[stage] = result.stage_failures.get(stage, 0) + 1
                self.metrics.counter(f"pipeline.{stage}.failures").inc()
                if attempt >= policy.max_retries:
                    result.dead_letters.append(
                        DeadLetter(
                            stage=stage,
                            value=report,
                            event_time=report.t,
                            error=str(exc),
                            attempts=attempt + 1,
                        )
                    )
                    self.metrics.counter(f"pipeline.{stage}.dead_letters").inc()
                    raise _DeadLettered(stage) from exc
                result.simulated_backoff_s += policy.backoff_s(
                    attempt, self._retry_rng_for(stage)
                )
                result.stage_retries[stage] = result.stage_retries.get(stage, 0) + 1
                self.metrics.counter(f"pipeline.{stage}.retries").inc()
                attempt += 1

    def _process_stages(
        self, report: PositionReport, t_start: float = 0.0
    ) -> list[ComplexEvent]:
        result = self._result
        obs = self._obs
        # Chained timestamps: the record start passed by the caller doubles
        # as the first stage's start and each stage's end doubles as the
        # next stage's start, so timing all five stages costs one clock
        # read per stage (inter-stage bookkeeping is charged to the
        # following stage).
        if obs:
            pc = monotonic
            buf = self._lat_buf
            t_prev = t_start

        with self._span("pipeline.clean", records=1):
            ok = self._stage_call(
                "clean",
                report,
                lambda: self._dedup.accept(report) and self._plausibility.accept(report),
            )
        if obs:
            t_now = pc()
            buf["clean"].append(t_now - t_prev)
            t_prev = t_now
        if not ok:
            return []
        result.reports_clean += 1

        with self._span("pipeline.synopses", records=1):
            annotated, keep = self._stage_call(
                "synopses", report, lambda: self._synopses.process(report)
            )
        if obs:
            t_now = pc()
            buf["synopses"].append(t_now - t_prev)
            t_prev = t_now

        if keep:
            result.reports_kept += 1
            if self.config.persist_rdf:
                with self._span("pipeline.rdf", records=1):
                    result.triples_stored += self._stage_call(
                        "rdf",
                        report,
                        lambda: self._store_report_doc(
                            annotated, report, interlink=self.config.interlink
                        ),
                    )
                if obs:
                    t_now = pc()
                    buf["rdf"].append(t_now - t_prev)
                    t_prev = t_now
        elif self.config.persist_rdf and self.config.persist_raw_reports:
            with self._span("pipeline.rdf", records=1):
                result.triples_stored += self._stage_call(
                    "rdf",
                    report,
                    lambda: self._store_report_doc(report, report, interlink=False),
                )
            if obs:
                t_now = pc()
                buf["rdf"].append(t_now - t_prev)
                t_prev = t_now

        with self._span("pipeline.events", records=1):
            simple_events = self._stage_call(
                "events", report, lambda: self._extractor.process(report)
            )
        result.simple_events.extend(simple_events)
        if obs:
            t_now = pc()
            buf["events"].append(t_now - t_prev)
            t_prev = t_now

        with self._span("pipeline.detectors", records=1):
            new_complex = self._stage_call(
                "detectors", report, lambda: self._run_detectors(report, simple_events)
            )
        if obs:
            t_now = pc()
            buf["detectors"].append(t_now - t_prev)
            self._record_end = t_now

        for event in new_complex:
            result.complex_events.append(event)
            if self.config.persist_rdf:
                triples = self.transformer.event_to_triples(event)
                self.store.add_document(triples)
                result.triples_stored += len(triples)
        if new_complex and obs:
            self._record_end = pc()

        return new_complex

    def _store_report_doc(
        self, item, report: PositionReport, interlink: bool
    ) -> int:
        """Persist one report document; returns the triple count added."""
        triples = self.transformer.report_to_triples(item)
        if interlink:
            triples.extend(self._interlink(report, triples[0].s))
        self.store.add_document(triples)
        return len(triples)

    def _run_detectors(
        self, report: PositionReport, simple_events: list[SimpleEvent]
    ) -> list[ComplexEvent]:
        """Run every complex-event detector over one report."""
        new_complex: list[ComplexEvent] = []
        with self._span("cep.collision"):
            new_complex.extend(self._collision.process(report))
        with self._span("cep.loitering"):
            new_complex.extend(self._loitering.process(report))
        with self._span("cep.rendezvous", records=len(simple_events)):
            for event in simple_events:
                new_complex.extend(self._rendezvous.process(event))
            new_complex.extend(self._rendezvous.tick(report.t))
        if self._capacity is not None:
            with self._span("cep.capacity"):
                new_complex.extend(self._capacity.process(report))
        if self._hotspots is not None:
            with self._span("cep.hotspots"):
                new_complex.extend(self._hotspots.process(report))
        if new_complex and self._obs:
            self.metrics.counter("cep.complex_events").inc(len(new_complex))
        return new_complex

    def _interlink(
        self, report: PositionReport, node, doc_sink: list | None = None
    ) -> list:
        """Online integration: zone containment + weather enrichment links.

        Containment goes through the shared :class:`ZoneIndex` when one
        was built (same containing zones, same order, without the linear
        polygon scan). ``doc_sink`` is the micro-batch hook: when given,
        a newly seen weather cell's document is appended there (for one
        bulk insert at stage end) instead of being stored immediately;
        the accounting is identical either way.
        """
        from repro.rdf import vocabulary as V
        from repro.rdf.terms import Triple
        from repro.rdf.transform import weather_iri, zone_iri

        links = []
        if self._zone_index is not None:
            containing: Iterable[Polygon] = self._zone_index.containing(
                report.lon, report.lat
            )
        else:
            containing = (
                z for z in self.zones if z.contains(report.lon, report.lat)
            )
        for zone in containing:
            links.append(Triple(node, V.PROP_WITHIN_ZONE, zone_iri(zone.name)))
        if self.weather is not None:
            cell = self.weather.observation_at(report.lon, report.lat, report.t)
            cell_key = (cell.cell_id, cell.t_start)
            if cell_key not in self._stored_weather_cells:
                self._stored_weather_cells.add(cell_key)
                weather_doc = self.transformer.weather_to_triples(cell)
                if doc_sink is None:
                    self.store.add_document(weather_doc)
                else:
                    doc_sink.append(weather_doc)
                self._result.triples_stored += len(weather_doc)
            links.append(
                Triple(node, V.PROP_HAS_WEATHER, weather_iri(cell.cell_id, cell.t_start))
            )
        return links

    def run(self, reports: Iterable[PositionReport]) -> PipelineResult:
        """Process a whole (event-time ordered) stream and finalize."""
        run_started = monotonic()
        for report in reports:
            self.process_report(report)
        return self._finalize(run_started)

    def run_batched(
        self, reports: Iterable[PositionReport], batch_size: int = 256
    ) -> PipelineResult:
        """Like :meth:`run`, pushing micro-batches through :meth:`process_batch`.

        Content-equivalent to :meth:`run` for any ``batch_size`` (see the
        :meth:`process_batch` contract); the batch size only trades
        per-record overhead against buffering.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        run_started = monotonic()
        for batch in _iter_batches(reports, batch_size):
            self.process_batch(batch)
        return self._finalize(run_started)

    def _finalize(self, run_started: float) -> PipelineResult:
        """Flush windowed detectors and summarize the run."""
        for detector in (self._capacity, self._hotspots):
            if detector is None:
                continue
            for event in detector.flush():
                self._result.complex_events.append(event)
                if self.config.persist_rdf:
                    triples = self.transformer.event_to_triples(event)
                    self.store.add_document(triples)
                    self._result.triples_stored += len(triples)
        self._result.wall_time_s = monotonic() - run_started
        self._flush_latency()
        self._result.stage_latency = {
            stage: hist.summary() for stage, hist in self._latency.items()
        }
        self._result.end_to_end = self._end_to_end.summary()
        if self.metrics.enabled:
            self._synopses.publish_metrics()
            self.metrics.gauge("pipeline.throughput_rps").set(
                self._result.throughput_rps
            )
            self._result.metrics = self.metrics.as_dict()
        return self._result

    def _flush_latency(self) -> None:
        """Land the buffered per-record samples on the registry histograms."""
        if not self._obs:
            return
        for stage, buf in self._lat_buf.items():
            if not buf:
                continue
            hist = self._end_to_end if stage == "end_to_end" else self._latency[stage]
            hist.record_many(buf)
            buf.clear()

    # -- checkpoint / recovery --------------------------------------------------

    #: Every attribute holding mutable run state. The transformer and the
    #: geo/config objects are immutable configuration and are rebuilt by
    #: the constructor; the executor is rebound to the restored store.
    _STATEFUL_COMPONENTS: tuple[str, ...] = (
        "_dedup",
        "_plausibility",
        "_synopses",
        "_extractor",
        "_collision",
        "_loitering",
        "_rendezvous",
        "_capacity",
        "_hotspots",
        "store",
        "_stored_weather_cells",
        "metrics",
        "_latency",
        "_end_to_end",
        "_result",
        "_injector",
        "_retry_rngs",
    )

    # lint: allow[C1] per-record transients (_trace_this_record, _record_faulted, _record_end) are dead at the record-boundary barrier; _lat_buf is drained into the checkpointed registry by _flush_latency() below
    def snapshot(self) -> dict[str, Any]:
        """Deep-copy every stateful component into a checkpoint payload.

        One deepcopy call over the whole component dict, so references
        shared *between* components — notably the observability registry,
        whose instruments the store, synopses and extractor all hold —
        stay shared inside the snapshot. Buffered latency samples and
        deferred synopses counters are flushed first so the checkpointed
        registry reflects every record processed so far.
        """
        self._flush_latency()
        if self.metrics.enabled:
            self._synopses.publish_metrics()
        return copy.deepcopy(
            {name: getattr(self, name) for name in self._STATEFUL_COMPONENTS}
        )

    # lint: allow[C1] per-record transients (_trace_this_record, _record_faulted, _record_end) are reinitialized per record; resume always starts at a record boundary
    def restore(self, states: dict[str, Any]) -> None:
        """Reinstate a :meth:`snapshot` payload on a compatibly-built pipeline.

        The payload is copied in, so the stored checkpoint stays pristine
        and can serve further resume attempts. The copy is again a single
        deepcopy, preserving cross-component sharing (one registry).
        """
        missing = [n for n in self._STATEFUL_COMPONENTS if n not in states]
        if missing:
            raise KeyError(f"checkpoint is missing component state: {missing}")
        copied = copy.deepcopy(states)
        for name in self._STATEFUL_COMPONENTS:
            setattr(self, name, copied[name])
        self.executor = QueryExecutor(self.store, metrics=self.metrics)
        # Cached obs state follows the restored registry; unflushed samples
        # from after the checkpoint was taken must not leak into it.
        self._obs = self.metrics.enabled
        self._trace_every = self.config.trace_every_n if self._obs else 0
        for buf in self._lat_buf.values():
            buf.clear()

    def run_with_checkpoints(
        self,
        reports: Iterable[PositionReport],
        checkpoint_store: CheckpointStore,
        checkpoint_interval: int,
        start_offset: int = 0,
    ) -> PipelineResult:
        """Like :meth:`run`, saving a checkpoint every N reports.

        If the source raises mid-stream (a crash), the checkpoints already
        saved allow :meth:`resume_from_checkpoint` on a *fresh* pipeline to
        finish the run with results identical to an uninterrupted one.
        ``start_offset`` is the absolute offset of the first report in
        ``reports`` (non-zero only on resume).
        """
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        run_started = monotonic()
        offset = start_offset
        for report in reports:
            self.process_report(report)
            offset += 1
            if offset % checkpoint_interval == 0:
                checkpoint_store.save(
                    Checkpoint(
                        checkpoint_id=checkpoint_store.next_id(),
                        source_offset=offset,
                        states=self.snapshot(),
                    )
                )
        return self._finalize(run_started)

    def run_batches_with_checkpoints(
        self,
        batches: Iterable[Sequence[PositionReport]],
        checkpoint_store: CheckpointStore,
        checkpoint_interval: int,
        start_offset: int = 0,
    ) -> PipelineResult:
        """Micro-batch counterpart of :meth:`run_with_checkpoints`.

        A checkpoint is taken at the first batch boundary at or past each
        multiple of ``checkpoint_interval`` (batches are not split), with
        the checkpoint's ``source_offset`` recording the exact record
        offset reached. A resume re-batches the stream suffix from that
        offset — safe because :meth:`process_batch` results are invariant
        to how the stream is sliced into batches.
        """
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        run_started = monotonic()
        offset = start_offset
        boundary = offset // checkpoint_interval
        for batch in batches:
            batch = list(batch)
            if not batch:
                continue
            self.process_batch(batch)
            offset += len(batch)
            if offset // checkpoint_interval > boundary:
                boundary = offset // checkpoint_interval
                checkpoint_store.save(
                    Checkpoint(
                        checkpoint_id=checkpoint_store.next_id(),
                        source_offset=offset,
                        states=self.snapshot(),
                    )
                )
        return self._finalize(run_started)

    def resume_from_checkpoint(
        self,
        checkpoint_store: CheckpointStore,
        reports: "ReplayLog[PositionReport] | Sequence[PositionReport]",
        checkpoint_interval: int | None = None,
        batch_size: int | None = None,
    ) -> PipelineResult:
        """Recover from the latest checkpoint and replay the source suffix.

        ``reports`` must be the same full source the crashed run consumed
        (ideally a :class:`ReplayLog`); the prefix up to the checkpoint's
        offset is skipped, which deduplicates replayed records. Pass
        ``checkpoint_interval`` to keep checkpointing during the replay,
        and ``batch_size`` to replay through the micro-batch path (the
        suffix is re-batched from the checkpoint offset — batch-slicing
        invariance makes the result independent of where the crash fell).
        The returned result's counts match an uninterrupted run (wall-time
        and latency *values* cover only the resumed suffix).
        """
        checkpoint = checkpoint_store.latest()
        if checkpoint is None:
            raise ValueError("no checkpoint to resume from")
        self.restore(checkpoint.states)
        if isinstance(reports, ReplayLog):
            suffix: Iterable[PositionReport] = reports.read(checkpoint.source_offset)
        else:
            suffix = itertools.islice(iter(reports), checkpoint.source_offset, None)
        if batch_size is not None:
            if batch_size <= 0:
                raise ValueError("batch_size must be positive")
            if checkpoint_interval is not None:
                return self.run_batches_with_checkpoints(
                    _iter_batches(suffix, batch_size),
                    checkpoint_store,
                    checkpoint_interval,
                    start_offset=checkpoint.source_offset,
                )
            run_started = monotonic()
            for batch in _iter_batches(suffix, batch_size):
                self.process_batch(batch)
            return self._finalize(run_started)
        if checkpoint_interval is not None:
            return self.run_with_checkpoints(
                suffix,
                checkpoint_store,
                checkpoint_interval,
                start_offset=checkpoint.source_offset,
            )
        run_started = monotonic()
        for report in suffix:
            self.process_report(report)
        return self._finalize(run_started)

    @property
    def result(self) -> PipelineResult:
        """The (possibly still accumulating) run result."""
        return self._result

"""End-to-end orchestration: the datAcron pipeline.

:class:`MobilityPipeline` wires every component of the architecture in
Section 2 of the paper into one flow:

    sources → in-situ cleaning & synopses → RDF transformation →
    parallel store   +   simple events → complex event detection →
    (events also persisted as RDF) → query answering & visual analytics

with per-stage and end-to-end latency accounting so the "operational
latency requirements (i.e. in ms)" claim is measurable (experiment E2/E7).
"""

from repro.core.config import PipelineConfig
from repro.hashing import stable_hash, stable_shard
from repro.core.pipeline import (
    BatchOptions,
    CheckpointOptions,
    MobilityPipeline,
    PipelineResult,
    PipelineSpec,
)
from repro.core.recordbatch import RecordBatch, recordbatches
from repro.core.results import (
    RESULT_SCHEMA_VERSION,
    ResultSchema,
    load_result_document,
    result_document,
)

__all__ = [
    "BatchOptions",
    "CheckpointOptions",
    "PipelineConfig",
    "MobilityPipeline",
    "PipelineResult",
    "PipelineSpec",
    "RecordBatch",
    "recordbatches",
    "RESULT_SCHEMA_VERSION",
    "ResultSchema",
    "load_result_document",
    "result_document",
    "stable_hash",
    "stable_shard",
]

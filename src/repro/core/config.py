"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cep.simple import SimpleEventConfig
from repro.insitu.synopses import SynopsesConfig


@dataclass(frozen=True)
class PipelineConfig:
    """Every knob of the end-to-end pipeline in one place.

    Attributes:
        synopses: In-situ compression configuration.
        simple_events: Simple-event thresholds.
        grid_nx / grid_ny: Spatio-temporal encoding grid resolution.
        time_bucket_s: Temporal bucket of the st-key encoding.
        n_partitions: RDF store partition count.
        partitioner: ``"hash"``, ``"grid"`` or ``"hilbert"``.
        persist_rdf: Whether to transform + store triples at all (off for
            pure-latency measurements of the analytics path).
        persist_raw_reports: Store every cleaned report (not just the
            synopsis) — expensive; default keeps synopses only, which is
            the datAcron design point.
        interlink: Run the integration layer online — kept position nodes
            get ``dac:withinZone`` links to containing zones and (when a
            weather source is attached) ``dac:hasWeatherCondition`` links
            to their weather cell, whose document is stored on first
            reference.
        compiled_rdf_emitter: Use the id-level compiled RDF emitter on
            the columnar path (probe-verified against the transformer at
            build time; falls back to the object path on any mismatch or
            when a weather source is attached). Off forces the object
            path everywhere — the ablation arm for differential tests.
        adaptive_keep_rate: When set (e.g. 0.05), the synopses threshold
            floats to hold this keep-rate target (load shedding) instead
            of staying fixed.
        trace_every_n: Trace every Nth record with a full hierarchical
            span tree (record → stages → per-detector). Sampling keeps
            the flamegraph representative while bounding instrumentation
            overhead; ``0`` disables record-level tracing (stage latency
            histograms are always on when the registry is enabled).
        collision / loitering / rendezvous / capacity thresholds mirror the
        corresponding detector constructor arguments.
    """

    synopses: SynopsesConfig = field(default_factory=SynopsesConfig)
    simple_events: SimpleEventConfig = field(default_factory=SimpleEventConfig)
    grid_nx: int = 32
    grid_ny: int = 32
    time_bucket_s: float = 3600.0
    n_partitions: int = 4
    partitioner: str = "hilbert"
    persist_rdf: bool = True
    persist_raw_reports: bool = False
    interlink: bool = False
    compiled_rdf_emitter: bool = True
    collision_cpa_m: float = 1_000.0
    collision_tcpa_s: float = 1_200.0
    loitering_radius_m: float = 1_000.0
    loitering_duration_s: float = 900.0
    rendezvous_radius_m: float = 500.0
    rendezvous_duration_s: float = 600.0
    capacity_limit: int = 10
    capacity_window_s: float = 600.0
    hotspots: bool = False
    hotspot_window_s: float = 1800.0
    hotspot_z_threshold: float = 2.5
    adaptive_keep_rate: float | None = None
    trace_every_n: int = 100

    def __post_init__(self) -> None:
        if self.grid_nx <= 0 or self.grid_ny <= 0:
            raise ValueError("grid dimensions must be positive")
        if self.n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        if self.partitioner not in ("hash", "grid", "hilbert"):
            raise ValueError(f"unknown partitioner {self.partitioner!r}")

"""The shared result schema every tier's run report implements.

Three classes tell the story of a run —
:class:`~repro.core.pipeline.PipelineResult` (one pipeline),
:class:`~repro.query.executor.ExecutionReport` (one query) and
:class:`~repro.runtime.merge.RuntimeResult` (one multi-process run).
They historically converged on the same trio of methods; this module
makes the contract explicit as the :class:`ResultSchema` protocol and
adds a versioned on-disk envelope around it:

- ``summary()``: flat numeric summary (floats only — plot/table ready);
- ``as_dict()``: ``{"kind", "summary", "metrics"}`` — the common
  observability report shape, ``metrics`` being the registry snapshot;
- ``deterministic_payload()`` / ``deterministic_bytes()`` /
  ``deterministic_digest()``: everything the run's *content* determines
  and nothing timing does, canonically JSON-encoded and hashed — the
  differential-testing oracle (two execution strategies computed the
  same thing iff their digests match).

:func:`result_document` wraps any :class:`ResultSchema` into a
self-verifying document (schema version + content digest);
:func:`load_result_document` is its inverse and recomputes the digest,
so a result that survived serialization provably survived unchanged.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Protocol, runtime_checkable

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "ResultSchema",
    "canonical_bytes",
    "digest_of",
    "result_document",
    "load_result_document",
]

#: Version of the result-document envelope. Bump on any change to the
#: envelope keys or to the canonical encoding (which would change every
#: digest); readers reject versions they do not know.
RESULT_SCHEMA_VERSION = 1


@runtime_checkable
class ResultSchema(Protocol):
    """What every run report exposes, regardless of tier."""

    metrics: dict

    def summary(self) -> dict[str, float]:
        """Flat numeric summary of the run."""
        ...

    def as_dict(self) -> dict:
        """``{"kind", "summary", "metrics"}`` — the common report shape."""
        ...

    def deterministic_payload(self) -> dict:
        """Content-determined fields only — no wall-clock, no latency."""
        ...

    def deterministic_bytes(self) -> bytes:
        """Canonical JSON encoding of :meth:`deterministic_payload`."""
        ...

    def deterministic_digest(self) -> str:
        """SHA-256 hex digest of :meth:`deterministic_bytes`."""
        ...


def canonical_bytes(payload: Any) -> bytes:
    """The one canonical JSON encoding digests are computed over.

    Key-sorted, separator-minimal UTF-8 — byte-stable across Python
    versions and dict insertion orders, so equal payloads always hash
    equal.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def digest_of(payload: Any) -> str:
    """SHA-256 hex digest of a payload's canonical encoding."""
    return hashlib.sha256(canonical_bytes(payload)).hexdigest()


def result_document(result: ResultSchema) -> dict:
    """A self-verifying, versioned document for one run report.

    The envelope carries the common report shape plus the deterministic
    payload and its digest, so a reader can both consume the numbers and
    verify the content hash without the producing class on its path.
    """
    doc = dict(result.as_dict())
    doc["schema_version"] = RESULT_SCHEMA_VERSION
    doc["deterministic"] = result.deterministic_payload()
    doc["digest"] = result.deterministic_digest()
    return doc


def load_result_document(data: "str | bytes | dict") -> dict:
    """Parse and verify a :func:`result_document` envelope.

    Accepts the JSON text/bytes or an already-parsed dict. Raises
    :class:`ValueError` when the schema version is unknown, required keys
    are missing, or the embedded digest does not match the deterministic
    payload (i.e. the document was corrupted or hand-edited).
    """
    doc = json.loads(data) if isinstance(data, (str, bytes)) else data
    if not isinstance(doc, dict):
        raise ValueError("result document must be a JSON object")
    version = doc.get("schema_version")
    if version != RESULT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported result schema version: {version!r} "
            f"(supported: {RESULT_SCHEMA_VERSION})"
        )
    missing = [k for k in ("kind", "summary", "deterministic", "digest") if k not in doc]
    if missing:
        raise ValueError(f"result document missing keys: {missing}")
    expected = digest_of(doc["deterministic"])
    if doc["digest"] != expected:
        raise ValueError(
            "result document digest mismatch: "
            f"document says {doc['digest'][:12]}…, payload hashes to {expected[:12]}…"
        )
    return doc

"""Columnar micro-batches: the structure-of-arrays hot-path representation.

A :class:`RecordBatch` carries one micro-batch of position reports twice:
as the original :class:`~repro.model.reports.PositionReport` tuple (the
record view — RDF transformation, event construction and every scalar
fallback still speak records) and as per-field numpy arrays (the columnar
view — cleaning, synopses, detector predicates and zone lookup consume
whole columns at a time). Optional fields (``speed``, ``heading``,
``alt``) are encoded as NaN, which makes the common None-guards vector
comparisons for free (any comparison against NaN is False, exactly like
the scalar ``is None`` skip paths).

Entity ids are dictionary-encoded: ``entity_codes[i]`` indexes
``vocabulary`` in first-seen order. A stable argsort of the codes gives a
sorted-by-entity layout whose per-entity *segments* are located with
``np.searchsorted`` — each segment lists the batch positions of one
entity's reports in stream order, which is what every per-entity
sequential kernel iterates over.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.model.reports import PositionReport

__all__ = ["RecordBatch", "recordbatches"]


_NAN = math.nan


@dataclass(frozen=True)
class RecordBatch:
    """A frozen structure-of-arrays view of one micro-batch.

    Attributes:
        reports: The original reports, in stream (event-time) order.
        t / lon / lat / speed / heading / alt: float64 columns aligned
            with ``reports``; optional fields hold NaN where the report
            field is ``None``.
        entity_codes: int32 dictionary codes aligned with ``reports``.
        vocabulary: Entity ids by code, in first-seen order.
        order: Batch positions stable-sorted by entity code — segment
            ``c`` occupies ``order[segment_bounds[c]:segment_bounds[c+1]]``
            and lists that entity's positions in ascending stream order.
        segment_bounds: ``len(vocabulary) + 1`` segment boundaries into
            ``order``.
        offset: Absolute source offset of ``reports[0]`` (checkpointable
            batch offsets: ``offset + len(batch)`` is the next batch's
            offset and the exact record offset a checkpoint records).
    """

    reports: tuple[PositionReport, ...]
    t: np.ndarray
    lon: np.ndarray
    lat: np.ndarray
    speed: np.ndarray
    heading: np.ndarray
    alt: np.ndarray
    entity_codes: np.ndarray
    vocabulary: tuple[str, ...]
    order: np.ndarray = field(repr=False)
    segment_bounds: np.ndarray = field(repr=False)
    offset: int = 0

    @classmethod
    def from_reports(
        cls, reports: Iterable[PositionReport], offset: int = 0
    ) -> "RecordBatch":
        """Build the columnar view of a report sequence."""
        rs = tuple(reports)
        n = len(rs)
        vocab: dict[str, int] = {}
        sd = vocab.setdefault
        codes = np.fromiter(
            (sd(r.entity_id, len(vocab)) for r in rs), dtype=np.int32, count=n
        )
        order = np.argsort(codes, kind="stable").astype(np.int64, copy=False)
        bounds = np.searchsorted(codes[order], np.arange(len(vocab) + 1))
        # t/lon/lat are required report fields; only the optional columns
        # pay the None→NaN test. fromiter fills the columns without the
        # intermediate list an array(listcomp) build would allocate.
        return cls(
            reports=rs,
            t=np.fromiter((r.t for r in rs), np.float64, count=n),
            lon=np.fromiter((r.lon for r in rs), np.float64, count=n),
            lat=np.fromiter((r.lat for r in rs), np.float64, count=n),
            speed=np.fromiter(
                (_NAN if (v := r.speed) is None else v for r in rs),
                np.float64,
                count=n,
            ),
            heading=np.fromiter(
                (_NAN if (v := r.heading) is None else v for r in rs),
                np.float64,
                count=n,
            ),
            alt=np.fromiter(
                (_NAN if (v := r.alt) is None else v for r in rs),
                np.float64,
                count=n,
            ),
            entity_codes=codes,
            vocabulary=tuple(vocab),
            order=order,
            segment_bounds=bounds,
            offset=offset,
        )

    @classmethod
    def empty(cls, offset: int = 0) -> "RecordBatch":
        """A zero-record batch (useful as a stream sentinel)."""
        return cls.from_reports((), offset=offset)

    def __len__(self) -> int:
        return len(self.reports)

    @property
    def n_entities(self) -> int:
        """Number of distinct entities in the batch."""
        return len(self.vocabulary)

    def positions_of(self, code: int) -> np.ndarray:
        """Batch positions of entity ``code``, ascending (= stream order)."""
        b = self.segment_bounds
        return self.order[b[code] : b[code + 1]]

    def segments(self) -> Iterator[tuple[int, str, np.ndarray]]:
        """Yield ``(code, entity_id, positions)`` per entity, by code."""
        b = self.segment_bounds
        for code, entity_id in enumerate(self.vocabulary):
            yield (code, entity_id, self.order[b[code] : b[code + 1]])

    def slice(self, start: int, stop: int | None = None) -> "RecordBatch":
        """A new batch over ``reports[start:stop]`` with a shifted offset."""
        rs = self.reports[start:stop]
        return RecordBatch.from_reports(rs, offset=self.offset + start)

    def to_reports(self) -> tuple[PositionReport, ...]:
        """Reconstruct reports purely from the columns.

        Only the columnar fields survive (``source``/``domain``/``extras``
        come from the stored record view in :attr:`reports`; this
        reconstruction exists for round-trip testing and for sources that
        synthesize batches column-first). NaN maps back to ``None``.
        """

        def opt(v: float) -> float | None:
            return None if math.isnan(v) else v

        return tuple(
            PositionReport(
                entity_id=self.vocabulary[self.entity_codes[i]],
                t=float(self.t[i]),
                lon=float(self.lon[i]),
                lat=float(self.lat[i]),
                alt=opt(float(self.alt[i])),
                speed=opt(float(self.speed[i])),
                heading=opt(float(self.heading[i])),
                vertical_rate=r.vertical_rate,
                source=r.source,
                domain=r.domain,
                extras=r.extras,
            )
            for i, r in enumerate(self.reports)
        )


def recordbatches(
    batches: Iterable[Sequence[PositionReport]], start_offset: int = 0
) -> Iterator[RecordBatch]:
    """Wrap pre-sliced report batches as :class:`RecordBatch` instances.

    Offsets run consecutively from ``start_offset``, so a checkpointing
    consumer sees the exact absolute record offset of every batch. Empty
    batches are dropped (they carry no records and would duplicate an
    offset).
    """
    offset = start_offset
    for batch in batches:
        rs = tuple(batch)
        if not rs:
            continue
        yield RecordBatch.from_reports(rs, offset=offset)
        offset += len(rs)

"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``demo``        — run the end-to-end pipeline on a synthetic fleet and
  print the headline numbers (compression, latency, events).
- ``query``       — run a textual spatio-temporal query against a fleet
  freshly loaded into the store.
- ``scenarios``   — run the scripted threat scenarios through the
  recognition stack and print the scorecard.
- ``report``      — produce an HTML situation report (map + events).
"""

from __future__ import annotations

import argparse
import sys


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="datAcron reproduction: mobility analytics pipeline",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="end-to-end pipeline demo")
    demo.add_argument("--vessels", type=int, default=12)
    demo.add_argument("--hours", type=float, default=2.0)
    demo.add_argument("--seed", type=int, default=7)

    query = sub.add_parser("query", help="run a textual query over a fleet")
    query.add_argument("text", help="the SELECT query (see repro.query.parser)")
    query.add_argument("--vessels", type=int, default=12)
    query.add_argument("--seed", type=int, default=7)
    query.add_argument("--limit", type=int, default=10, help="rows to print")

    sub.add_parser("scenarios", help="scripted threat scenario scorecard")

    report = sub.add_parser("report", help="write an HTML situation report")
    report.add_argument("--out", default="situation_report.html")
    report.add_argument("--vessels", type=int, default=12)
    report.add_argument("--seed", type=int, default=7)
    return parser


def _make_pipeline(vessels: int, seed: int, hours: float = 2.0):
    from repro.core.pipeline import MobilityPipeline
    from repro.sources.generators import MaritimeTrafficGenerator

    sample = MaritimeTrafficGenerator(seed=seed).generate(
        n_vessels=vessels, max_duration_s=hours * 3600.0
    )
    pipeline = MobilityPipeline(
        bbox=sample.world.bbox,
        registry=sample.registry,
        zones=sample.world.zones,
    )
    result = pipeline.run(sample.reports)
    return (sample, pipeline, result)


def cmd_demo(args) -> int:
    """Run the end-to-end pipeline demo; prints headline numbers."""
    sample, pipeline, result = _make_pipeline(args.vessels, args.seed, args.hours)
    print(f"vessels            : {sample.n_entities}")
    print(f"reports            : {result.reports_in}")
    print(f"compression        : {result.compression_ratio:.1%}")
    print(f"triples stored     : {result.triples_stored}")
    print(f"simple events      : {len(result.simple_events)}")
    print(f"complex events     : {len(result.complex_events)}")
    print(f"latency p50 / p95  : {result.end_to_end['p50_ms']:.3f} / "
          f"{result.end_to_end['p95_ms']:.3f} ms")
    print(f"throughput         : {result.throughput_rps:,.0f} reports/s")
    return 0


def cmd_query(args) -> int:
    """Parse and execute a textual query; prints rows and the plan report."""
    from repro.query.parser import QueryParseError, parse_query

    try:
        query = parse_query(args.text)
    except QueryParseError as error:
        print(f"query error: {error}", file=sys.stderr)
        return 2
    __, pipeline, __r = _make_pipeline(args.vessels, args.seed)
    rows, report = pipeline.executor.execute(query)
    print(f"{len(rows)} rows "
          f"(scanned {report.partitions_scanned}/{report.partitions_total} "
          f"partitions, pruning {report.pruning_ratio:.0%}, "
          f"strategy {report.strategy})")
    for row in rows[: args.limit]:
        print("  " + "  ".join(f"{var}={term}" for var, term in row.items()))
    if len(rows) > args.limit:
        print(f"  ... {len(rows) - args.limit} more")
    return 0


def cmd_scenarios(__args) -> int:
    """Run the scripted threat scenarios and print the scorecard."""
    from repro.cep.detectors import (
        CollisionRiskDetector,
        LoiteringDetector,
        RendezvousDetector,
    )
    from repro.cep.evaluation import match_events, promote
    from repro.cep.simple import SimpleEventExtractor
    from repro.model.points import Domain
    from repro.sources.scenarios import (
        aviation_near_miss_scenario,
        collision_course_scenario,
        loitering_scenario,
        rendezvous_scenario,
        zone_intrusion_scenario,
    )

    print(f"{'scenario':<18} {'recall':>7} {'precision':>10} {'latency':>9}")
    for scenario in (
        collision_course_scenario(),
        loitering_scenario(),
        zone_intrusion_scenario(),
        rendezvous_scenario(),
        aviation_near_miss_scenario(),
    ):
        extractor = SimpleEventExtractor(zones=scenario.zones)
        if scenario.domain is Domain.AVIATION:
            collision = CollisionRiskDetector(
                cpa_threshold_m=9_000.0,
                vertical_threshold_m=300.0,
                tcpa_threshold_s=600.0,
                candidate_radius_m=150_000.0,
            )
        else:
            collision = CollisionRiskDetector()
        loitering = LoiteringDetector(radius_m=800.0, min_duration_s=900.0)
        rendezvous = RendezvousDetector(radius_m=600.0, min_duration_s=600.0)
        detections = []
        for report in scenario.reports:
            detections.extend(collision.process(report))
            detections.extend(loitering.process(report))
            for event in extractor.process(report):
                detections.extend(rendezvous.process(event))
                if event.event_type.startswith("zone"):
                    detections.append(promote(event))
            detections.extend(rendezvous.tick(report.t))
        expected_types = {e.event_type for e in scenario.expected}
        scripted = {e for exp in scenario.expected for e in exp.entity_ids}
        scoped = [
            d for d in detections
            if set(d.entity_ids) <= scripted and d.event_type in expected_types
        ]
        score = match_events(scoped, scenario.expected)
        print(f"{scenario.name:<18} {score.recall:>7.2f} {score.precision:>10.2f} "
              f"{score.mean_latency_s:>8.0f}s")
    return 0


def cmd_report(args) -> int:
    """Generate and save an HTML situation report."""
    from repro.viz.report import HtmlReport
    from repro.viz.svg import SvgMap

    sample, pipeline, result = _make_pipeline(args.vessels, args.seed)
    svg = SvgMap(sample.world.bbox, width_px=860)
    for zone in sample.world.zones:
        svg.add_zone(zone)
    svg.add_trajectories(sample.truth.values())
    for event in result.complex_events[:100]:
        svg.add_event(event)

    from repro.viz.density import temporal_profile

    report = HtmlReport("datAcron situation report")
    report.add_stat("vessels", sample.n_entities)
    report.add_stat("reports", result.reports_in)
    report.add_stat("compression", result.compression_ratio)
    report.add_stat("complex events", len(result.complex_events))
    report.add_stat("p95 latency (ms)", result.end_to_end["p95_ms"])
    report.set_map(svg.render())
    report.add_timeline(temporal_profile(sample.reports, bucket_s=300.0))
    report.add_events(result.complex_events)
    report.save(args.out)
    print(f"wrote {args.out}")
    return 0


_COMMANDS = {
    "demo": cmd_demo,
    "query": cmd_query,
    "scenarios": cmd_scenarios,
    "report": cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Core data model shared across all datAcron components.

The model package defines the vocabulary of the whole system:

- :class:`STPoint` — a spatio-temporal sample (t, lon, lat[, alt]).
- :class:`PositionReport` — one raw surveillance record (AIS / ADS-B like).
- :class:`Trajectory` — an ordered, numpy-backed sequence of samples for a
  single moving entity.
- :class:`MovingEntity`, :class:`Vessel`, :class:`Aircraft` — static entity
  descriptions.
- :class:`SimpleEvent`, :class:`ComplexEvent` — outputs of the event
  recognition layer.
- :class:`Domain` — maritime (2D) vs aviation (3D).
"""

from repro.model.errors import (
    ModelError,
    EmptyTrajectoryError,
    TimeOrderError,
    UnknownEntityError,
)
from repro.model.points import STPoint, Domain
from repro.model.reports import PositionReport, ReportSource
from repro.model.trajectory import Trajectory
from repro.model.entities import MovingEntity, Vessel, Aircraft, EntityRegistry
from repro.model.events import SimpleEvent, ComplexEvent, EventSeverity

__all__ = [
    "ModelError",
    "EmptyTrajectoryError",
    "TimeOrderError",
    "UnknownEntityError",
    "STPoint",
    "Domain",
    "PositionReport",
    "ReportSource",
    "Trajectory",
    "MovingEntity",
    "Vessel",
    "Aircraft",
    "EntityRegistry",
    "SimpleEvent",
    "ComplexEvent",
    "EventSeverity",
]

"""Spatio-temporal point primitives.

A point is the atom of the whole system: a timestamped position on (or above)
the Earth. Maritime entities move in 2D (altitude is ``None``); aviation
entities move in 3D (altitude in metres above mean sea level).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class Domain(enum.Enum):
    """Application domain of a moving entity, as defined by the paper.

    The paper targets "the challenging Maritime (2D space) and Aviation
    (3D space) domains"; the domain determines dimensionality and the
    defaults used by analytics (e.g. speed ranges, event thresholds).
    """

    MARITIME = "maritime"
    AVIATION = "aviation"

    @property
    def is_3d(self) -> bool:
        """Whether positions in this domain carry an altitude."""
        return self is Domain.AVIATION


@dataclass(frozen=True, slots=True)
class STPoint:
    """A spatio-temporal sample: time plus WGS84 position.

    Attributes:
        t: Timestamp in seconds (monotonic epoch within a scenario).
        lon: Longitude in decimal degrees, range [-180, 180].
        lat: Latitude in decimal degrees, range [-90, 90].
        alt: Altitude in metres MSL, or ``None`` for 2D (maritime) points.
    """

    t: float
    lon: float
    lat: float
    alt: float | None = field(default=None)

    def __post_init__(self) -> None:
        if not math.isfinite(self.t):
            raise ValueError(f"non-finite timestamp: {self.t!r}")
        if not (-180.0 <= self.lon <= 180.0):
            raise ValueError(f"longitude out of range: {self.lon!r}")
        if not (-90.0 <= self.lat <= 90.0):
            raise ValueError(f"latitude out of range: {self.lat!r}")
        if self.alt is not None and not math.isfinite(self.alt):
            raise ValueError(f"non-finite altitude: {self.alt!r}")

    @property
    def is_3d(self) -> bool:
        """True when the point carries an altitude."""
        return self.alt is not None

    def with_time(self, t: float) -> STPoint:
        """Return a copy of this point at a different timestamp."""
        return STPoint(t=t, lon=self.lon, lat=self.lat, alt=self.alt)

    def as_tuple(self) -> tuple[float, float, float, float | None]:
        """Return ``(t, lon, lat, alt)``; ``alt`` may be ``None``."""
        return (self.t, self.lon, self.lat, self.alt)

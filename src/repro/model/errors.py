"""Exceptions raised by the data model layer."""


class ModelError(Exception):
    """Base class for all data-model errors."""


class EmptyTrajectoryError(ModelError):
    """Raised when an operation requires a non-empty trajectory."""


class TimeOrderError(ModelError):
    """Raised when samples violate the strictly-increasing-time invariant."""


class UnknownEntityError(ModelError, KeyError):
    """Raised when an entity id is not present in a registry."""

"""Event model: outputs of the complex event recognition layer.

Simple events are per-entity instantaneous observations (zone entry,
speed anomaly, gap start); complex events are pattern matches over one or
more entities' simple-event histories (collision risk, rendezvous,
capacity overload). Both carry enough provenance to be transformed into the
RDF common representation and rendered by visual analytics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping


class EventSeverity(enum.IntEnum):
    """Operational severity of a detected event."""

    INFO = 0
    ADVISORY = 1
    WARNING = 2
    ALARM = 3


@dataclass(frozen=True, slots=True)
class SimpleEvent:
    """An instantaneous, per-entity event derived from the stream.

    Attributes:
        event_type: Machine-readable type, e.g. ``"zone_entry"``.
        entity_id: The entity the event concerns.
        t: Event time in seconds.
        lon: Longitude of the entity at event time.
        lat: Latitude at event time.
        severity: Operational severity.
        attributes: Type-specific payload (zone name, measured speed, ...).
    """

    event_type: str
    entity_id: str
    t: float
    lon: float
    lat: float
    severity: EventSeverity = EventSeverity.INFO
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.event_type:
            raise ValueError("event_type must be non-empty")
        if not self.entity_id:
            raise ValueError("entity_id must be non-empty")


@dataclass(frozen=True, slots=True)
class ComplexEvent:
    """A recognized pattern over one or more entities.

    Attributes:
        event_type: Pattern name, e.g. ``"collision_risk"``.
        entity_ids: Entities participating in the match, in pattern order.
        t_start: Time of the first contributing observation.
        t_end: Time of the match completion (detection time basis).
        severity: Operational severity.
        attributes: Pattern-specific payload (cpa distance, zone, counts...).
        contributing: The simple events that produced the match, in order.
    """

    event_type: str
    entity_ids: tuple[str, ...]
    t_start: float
    t_end: float
    severity: EventSeverity = EventSeverity.WARNING
    attributes: Mapping[str, Any] = field(default_factory=dict)
    contributing: tuple[SimpleEvent, ...] = ()

    def __post_init__(self) -> None:
        if not self.event_type:
            raise ValueError("event_type must be non-empty")
        if not self.entity_ids:
            raise ValueError("complex event needs at least one entity")
        if self.t_end < self.t_start:
            raise ValueError("t_end must be >= t_start")

    @property
    def duration(self) -> float:
        """Span of the match in seconds."""
        return self.t_end - self.t_start

"""Static descriptions of moving entities and the registry that holds them.

Entity metadata is one of the "archival" (data-at-rest) sources the paper
integrates with streaming positions: vessel particulars (type, dimensions)
and aircraft descriptions both feed the RDF common representation and the
event-recognition thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.model.errors import UnknownEntityError
from repro.model.points import Domain


@dataclass(frozen=True)
class MovingEntity:
    """Base static description of a moving entity.

    Attributes:
        entity_id: Stable identifier (MMSI-like for vessels, ICAO-like for
            aircraft).
        name: Human-readable name or callsign.
        domain: Maritime or aviation.
        max_speed_mps: Physical speed ceiling used for plausibility checks.
    """

    entity_id: str
    name: str
    domain: Domain = Domain.MARITIME
    max_speed_mps: float = 30.0

    def __post_init__(self) -> None:
        if not self.entity_id:
            raise ValueError("entity_id must be non-empty")
        if self.max_speed_mps <= 0:
            raise ValueError("max_speed_mps must be positive")


@dataclass(frozen=True)
class Vessel(MovingEntity):
    """A maritime entity (AIS-carrying ship)."""

    domain: Domain = field(default=Domain.MARITIME)
    max_speed_mps: float = 13.0
    vessel_type: str = "cargo"
    length_m: float = 100.0
    draught_m: float = 8.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.domain is not Domain.MARITIME:
            raise ValueError("a Vessel is always a maritime entity")
        if self.length_m <= 0 or self.draught_m <= 0:
            raise ValueError("vessel dimensions must be positive")


@dataclass(frozen=True)
class Aircraft(MovingEntity):
    """An aviation entity (ADS-B-carrying aircraft)."""

    domain: Domain = field(default=Domain.AVIATION)
    max_speed_mps: float = 260.0
    aircraft_type: str = "A320"
    cruise_alt_m: float = 10_000.0
    climb_rate_mps: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.domain is not Domain.AVIATION:
            raise ValueError("an Aircraft is always an aviation entity")
        if self.cruise_alt_m <= 0 or self.climb_rate_mps <= 0:
            raise ValueError("aircraft performance figures must be positive")


class EntityRegistry:
    """In-memory registry of entity metadata, keyed by entity id."""

    def __init__(self, entities: Mapping[str, MovingEntity] | None = None) -> None:
        self._entities: dict[str, MovingEntity] = dict(entities or {})

    def __len__(self) -> int:
        return len(self._entities)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def __iter__(self) -> Iterator[MovingEntity]:
        return iter(self._entities.values())

    def add(self, entity: MovingEntity) -> None:
        """Register (or replace) an entity description."""
        self._entities[entity.entity_id] = entity

    def get(self, entity_id: str) -> MovingEntity:
        """Look up an entity; raises :class:`UnknownEntityError` when absent."""
        try:
            return self._entities[entity_id]
        except KeyError:
            raise UnknownEntityError(entity_id) from None

    def get_or_none(self, entity_id: str) -> MovingEntity | None:
        """Look up an entity, returning ``None`` when absent."""
        return self._entities.get(entity_id)

    def by_domain(self, domain: Domain) -> list[MovingEntity]:
        """All registered entities of a domain."""
        return [e for e in self._entities.values() if e.domain is domain]

"""Numpy-backed trajectory of a single moving entity.

A :class:`Trajectory` is an immutable, time-ordered sequence of samples.
It is the unit of work for reconstruction, compression-quality evaluation,
similarity, clustering and forecasting.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.geo.geodesy import haversine_m, haversine_m_arrays, initial_bearing_deg
from repro.geo.bbox import BBox
from repro.model.errors import EmptyTrajectoryError, TimeOrderError
from repro.model.points import Domain, STPoint


class Trajectory:
    """An ordered sequence of spatio-temporal samples for one entity.

    Internally stores parallel numpy arrays (t, lon, lat, and optionally
    alt) for efficient vectorised analytics. Timestamps must be strictly
    increasing; construction validates the invariant once so every consumer
    can rely on it.
    """

    __slots__ = ("entity_id", "domain", "_t", "_lon", "_lat", "_alt")

    def __init__(
        self,
        entity_id: str,
        t: Sequence[float] | np.ndarray,
        lon: Sequence[float] | np.ndarray,
        lat: Sequence[float] | np.ndarray,
        alt: Sequence[float] | np.ndarray | None = None,
        domain: Domain = Domain.MARITIME,
    ) -> None:
        self.entity_id = entity_id
        self.domain = domain
        self._t = np.asarray(t, dtype=np.float64)
        self._lon = np.asarray(lon, dtype=np.float64)
        self._lat = np.asarray(lat, dtype=np.float64)
        self._alt = None if alt is None else np.asarray(alt, dtype=np.float64)
        n = len(self._t)
        if len(self._lon) != n or len(self._lat) != n:
            raise ValueError("t, lon, lat must have equal lengths")
        if self._alt is not None and len(self._alt) != n:
            raise ValueError("alt must match the length of t")
        if n > 1 and not np.all(np.diff(self._t) > 0):
            raise TimeOrderError(f"timestamps not strictly increasing for {entity_id!r}")
        for arr in (self._t, self._lon, self._lat):
            arr.setflags(write=False)
        if self._alt is not None:
            self._alt.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_points(
        cls,
        entity_id: str,
        points: Iterable[STPoint],
        domain: Domain = Domain.MARITIME,
    ) -> Trajectory:
        """Build a trajectory from an iterable of :class:`STPoint`.

        Altitude arrays are attached only when *every* point carries one.
        """
        pts = list(points)
        t = [p.t for p in pts]
        lon = [p.lon for p in pts]
        lat = [p.lat for p in pts]
        alts = [p.alt for p in pts]
        alt = alts if pts and all(a is not None for a in alts) else None
        return cls(entity_id, t, lon, lat, alt, domain=domain)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._t)

    def __iter__(self) -> Iterator[STPoint]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, index: int) -> STPoint:
        if isinstance(index, slice):
            raise TypeError("use .slice_index() for sub-trajectories")
        alt = None if self._alt is None else float(self._alt[index])
        return STPoint(
            t=float(self._t[index]),
            lon=float(self._lon[index]),
            lat=float(self._lat[index]),
            alt=alt,
        )

    def __repr__(self) -> str:
        span = f"[{self._t[0]:.0f}..{self._t[-1]:.0f}]" if len(self) else "[]"
        return f"Trajectory({self.entity_id!r}, n={len(self)}, t={span})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        if self.entity_id != other.entity_id or len(self) != len(other):
            return False
        same_alt = (self._alt is None) == (other._alt is None)
        if not same_alt:
            return False
        eq = (
            np.array_equal(self._t, other._t)
            and np.array_equal(self._lon, other._lon)
            and np.array_equal(self._lat, other._lat)
        )
        if self._alt is not None and other._alt is not None:
            eq = eq and np.array_equal(self._alt, other._alt)
        return eq

    # ------------------------------------------------------------------
    # Array views
    # ------------------------------------------------------------------

    @property
    def t(self) -> np.ndarray:
        """Timestamps, seconds (read-only view)."""
        return self._t

    @property
    def lon(self) -> np.ndarray:
        """Longitudes, degrees (read-only view)."""
        return self._lon

    @property
    def lat(self) -> np.ndarray:
        """Latitudes, degrees (read-only view)."""
        return self._lat

    @property
    def alt(self) -> np.ndarray | None:
        """Altitudes, metres, or ``None`` for 2D trajectories."""
        return self._alt

    @property
    def is_3d(self) -> bool:
        """Whether altitude samples are present."""
        return self._alt is not None

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    def _require_nonempty(self) -> None:
        if len(self) == 0:
            raise EmptyTrajectoryError(f"trajectory {self.entity_id!r} is empty")

    @property
    def start_time(self) -> float:
        """First timestamp."""
        self._require_nonempty()
        return float(self._t[0])

    @property
    def end_time(self) -> float:
        """Last timestamp."""
        self._require_nonempty()
        return float(self._t[-1])

    @property
    def duration(self) -> float:
        """Total time span in seconds (0 for single-sample trajectories)."""
        self._require_nonempty()
        return float(self._t[-1] - self._t[0])

    def length_m(self) -> float:
        """Total travelled great-circle distance, in metres."""
        if len(self) < 2:
            return 0.0
        return float(
            np.sum(
                haversine_m_arrays(
                    self._lon[:-1], self._lat[:-1], self._lon[1:], self._lat[1:]
                )
            )
        )

    def segment_distances_m(self) -> np.ndarray:
        """Per-segment great-circle distances (length ``n - 1``)."""
        if len(self) < 2:
            return np.zeros(0)
        return haversine_m_arrays(self._lon[:-1], self._lat[:-1], self._lon[1:], self._lat[1:])

    def speeds_mps(self) -> np.ndarray:
        """Per-segment average ground speeds in m/s (length ``n - 1``)."""
        if len(self) < 2:
            return np.zeros(0)
        dt = np.diff(self._t)
        return self.segment_distances_m() / dt

    def headings_deg(self) -> np.ndarray:
        """Per-segment initial bearings in degrees (length ``n - 1``)."""
        n = len(self)
        if n < 2:
            return np.zeros(0)
        out = np.empty(n - 1)
        for i in range(n - 1):
            out[i] = initial_bearing_deg(
                float(self._lon[i]), float(self._lat[i]),
                float(self._lon[i + 1]), float(self._lat[i + 1]),
            )
        return out

    def bbox(self) -> BBox:
        """Spatial bounding box of the trajectory."""
        self._require_nonempty()
        return BBox(
            float(self._lon.min()),
            float(self._lat.min()),
            float(self._lon.max()),
            float(self._lat.max()),
        )

    # ------------------------------------------------------------------
    # Temporal operations
    # ------------------------------------------------------------------

    def at_time(self, t: float) -> STPoint:
        """Linearly interpolated position at time ``t``.

        Clamps to the endpoints outside the trajectory's span: extrapolation
        is the forecaster's job, not the container's.
        """
        self._require_nonempty()
        if t <= self._t[0]:
            return self[0]
        if t >= self._t[-1]:
            return self[len(self) - 1]
        i = int(np.searchsorted(self._t, t, side="right")) - 1
        t0, t1 = self._t[i], self._t[i + 1]
        frac = (t - t0) / (t1 - t0)
        lon = self._lon[i] + frac * (self._lon[i + 1] - self._lon[i])
        lat = self._lat[i] + frac * (self._lat[i + 1] - self._lat[i])
        alt = None
        if self._alt is not None:
            alt = float(self._alt[i] + frac * (self._alt[i + 1] - self._alt[i]))
        return STPoint(t=t, lon=float(lon), lat=float(lat), alt=alt)

    def slice_time(self, t_from: float, t_to: float) -> Trajectory:
        """Sub-trajectory of samples with ``t_from <= t <= t_to``."""
        mask = (self._t >= t_from) & (self._t <= t_to)
        return self._masked(mask)

    def slice_index(self, start: int, stop: int) -> Trajectory:
        """Sub-trajectory of samples ``[start, stop)`` by index."""
        alt = None if self._alt is None else self._alt[start:stop]
        return Trajectory(
            self.entity_id,
            self._t[start:stop],
            self._lon[start:stop],
            self._lat[start:stop],
            alt,
            domain=self.domain,
        )

    def resample(self, period_s: float) -> Trajectory:
        """Uniformly resampled copy with one sample every ``period_s``.

        Interpolates linearly; the last original sample is always included
        so the resampled trajectory spans the same interval.
        """
        self._require_nonempty()
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if len(self) == 1:
            return self
        times = np.arange(self._t[0], self._t[-1], period_s)
        if len(times) == 0 or times[-1] < self._t[-1]:
            times = np.append(times, self._t[-1])
        points = [self.at_time(float(tt)) for tt in times]
        return Trajectory.from_points(self.entity_id, points, domain=self.domain)

    def gaps(self, min_gap_s: float) -> list[tuple[float, float]]:
        """Time intervals between consecutive samples longer than a threshold."""
        if len(self) < 2:
            return []
        dt = np.diff(self._t)
        idx = np.nonzero(dt > min_gap_s)[0]
        return [(float(self._t[i]), float(self._t[i + 1])) for i in idx]

    def append(self, other: Trajectory) -> Trajectory:
        """Concatenate another trajectory that starts strictly after this one."""
        if other.entity_id != self.entity_id:
            raise ValueError("cannot append trajectory of a different entity")
        if len(self) == 0:
            return other
        if len(other) == 0:
            return self
        if other._t[0] <= self._t[-1]:
            raise TimeOrderError("appended trajectory must start after this one ends")
        if (self._alt is None) != (other._alt is None):
            raise ValueError("cannot mix 2D and 3D trajectories")
        alt = None
        if self._alt is not None and other._alt is not None:
            alt = np.concatenate([self._alt, other._alt])
        return Trajectory(
            self.entity_id,
            np.concatenate([self._t, other._t]),
            np.concatenate([self._lon, other._lon]),
            np.concatenate([self._lat, other._lat]),
            alt,
            domain=self.domain,
        )

    def distance_to_point_m(self, lon: float, lat: float) -> float:
        """Minimum sample-wise distance from the trajectory to a point."""
        self._require_nonempty()
        d = haversine_m_arrays(
            self._lon, self._lat, np.full(len(self), lon), np.full(len(self), lat)
        )
        return float(d.min())

    def _masked(self, mask: np.ndarray) -> Trajectory:
        alt = None if self._alt is None else self._alt[mask]
        return Trajectory(
            self.entity_id, self._t[mask], self._lon[mask], self._lat[mask], alt,
            domain=self.domain,
        )

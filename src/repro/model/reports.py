"""Raw surveillance records as emitted by heterogeneous data sources.

A :class:`PositionReport` is the wire-level record the in-situ layer consumes:
it mirrors the union of the fields found in AIS position messages (maritime)
and ADS-B / radar-track messages (aviation). The paper's "multiple streaming
as well as archival data" sources all produce this record type, tagged with a
:class:`ReportSource` so downstream integration can tell providers apart.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.model.points import STPoint, Domain


class ReportSource(enum.Enum):
    """Provenance of a position report."""

    AIS_TERRESTRIAL = "ais_terrestrial"
    AIS_SATELLITE = "ais_satellite"
    ADSB = "adsb"
    RADAR = "radar"
    ARCHIVE = "archive"
    SYNTHETIC = "synthetic"


@dataclass(frozen=True, slots=True)
class PositionReport:
    """One raw position record for a moving entity.

    Attributes:
        entity_id: Stable identifier of the moving entity (MMSI / ICAO-like).
        t: Event time in seconds.
        lon: Longitude, decimal degrees.
        lat: Latitude, decimal degrees.
        alt: Altitude in metres MSL (``None`` for maritime).
        speed: Speed over ground in m/s, or ``None`` if not reported.
        heading: Course over ground in degrees [0, 360), or ``None``.
        vertical_rate: Climb/descent rate in m/s (aviation), or ``None``.
        source: Which provider produced the record.
        domain: Maritime or aviation.
        extras: Provider-specific payload (e.g. navigational status).
    """

    entity_id: str
    t: float
    lon: float
    lat: float
    alt: float | None = None
    speed: float | None = None
    heading: float | None = None
    vertical_rate: float | None = None
    source: ReportSource = ReportSource.SYNTHETIC
    domain: Domain = Domain.MARITIME
    extras: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.entity_id:
            raise ValueError("entity_id must be non-empty")
        if not math.isfinite(self.t):
            raise ValueError(f"non-finite timestamp: {self.t!r}")
        if not (-180.0 <= self.lon <= 180.0):
            raise ValueError(f"longitude out of range: {self.lon!r}")
        if not (-90.0 <= self.lat <= 90.0):
            raise ValueError(f"latitude out of range: {self.lat!r}")
        if self.heading is not None and not (0.0 <= self.heading < 360.0):
            raise ValueError(f"heading out of range: {self.heading!r}")
        if self.speed is not None and (not math.isfinite(self.speed) or self.speed < 0):
            raise ValueError(f"invalid speed: {self.speed!r}")

    def point(self) -> STPoint:
        """Project the report onto its spatio-temporal point."""
        return STPoint(t=self.t, lon=self.lon, lat=self.lat, alt=self.alt)

    def replace_time(self, t: float) -> PositionReport:
        """Return a copy of the report shifted to a new event time."""
        return PositionReport(
            entity_id=self.entity_id,
            t=t,
            lon=self.lon,
            lat=self.lat,
            alt=self.alt,
            speed=self.speed,
            heading=self.heading,
            vertical_rate=self.vertical_rate,
            source=self.source,
            domain=self.domain,
            extras=self.extras,
        )

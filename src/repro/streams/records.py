"""Stream elements: data records and watermarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generic, TypeVar

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class Record(Generic[T]):
    """A stream element carrying a value and its event time.

    Attributes:
        event_time: Event time in seconds (domain time, not wall clock).
        value: The payload.
        key: Optional partitioning key assigned by keyed operators.
    """

    event_time: float
    value: T
    key: Any = None

    def with_value(self, value: Any) -> Record:
        """Copy with a new value, preserving time and key."""
        return Record(event_time=self.event_time, value=value, key=self.key)

    def with_key(self, key: Any) -> Record[T]:
        """Copy with a new key."""
        return Record(event_time=self.event_time, value=self.value, key=key)


@dataclass(frozen=True, slots=True)
class Watermark:
    """Assertion that no record with event time <= ``time`` will follow.

    Watermarks flow through the topology in-band with records and drive
    event-time window firing.
    """

    time: float

"""Watermark generation strategies.

Surveillance feeds deliver out-of-order records (satellite AIS batches,
multi-sensor fusion); bounded-out-of-orderness watermarks let event-time
windows tolerate a configurable lateness before firing.
"""

from __future__ import annotations


class BoundedOutOfOrdernessWatermarks:
    """Emits watermarks lagging the max seen event time by a fixed bound.

    A record with event time ``t`` advances the watermark to
    ``max_seen - max_out_of_orderness`` — records later than that are
    considered late and dropped (counted) by windowed operators.
    """

    def __init__(self, max_out_of_orderness_s: float) -> None:
        if max_out_of_orderness_s < 0:
            raise ValueError("out-of-orderness bound must be >= 0")
        self.bound = max_out_of_orderness_s
        self._max_seen = float("-inf")
        self._last_emitted = float("-inf")

    def observe(self, event_time: float) -> float | None:
        """Observe a record's event time; return a new watermark or ``None``.

        A watermark is returned only when it advances past the previously
        emitted one, keeping watermark traffic sparse.
        """
        if event_time > self._max_seen:
            self._max_seen = event_time
        candidate = self._max_seen - self.bound
        if candidate > self._last_emitted:
            self._last_emitted = candidate
            return candidate
        return None

    @property
    def current(self) -> float:
        """The last emitted watermark (-inf before any emission)."""
        return self._last_emitted

    def snapshot(self) -> tuple[float, float]:
        """Capture generator state for a checkpoint."""
        return (self._max_seen, self._last_emitted)

    def restore(self, state: tuple[float, float]) -> None:
        """Reinstate state captured by :meth:`snapshot`."""
        self._max_seen, self._last_emitted = state

"""Operator metrics: counters and latency histograms.

The paper states the methods "must comply with operational latency
requirements (i.e. in ms)"; these metrics make that measurable per
operator and end-to-end (experiment E2).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

import numpy as np


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Increase the counter by ``n`` (must be non-negative)."""
        if n < 0:
            raise ValueError("counters only increase")
        self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class LatencyHistogram:
    """Records individual latency samples and reports percentiles.

    Samples are kept in a bounded reservoir (uniformly thinned) so long
    benchmark runs do not grow memory without bound. Thinning uses an
    instance-owned seeded generator — never the global ``random`` module —
    so runs are reproducible regardless of what else draws randomness.
    """

    def __init__(self, max_samples: int = 100_000, seed: int = 2017) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self._max = max_samples
        self._samples: list[float] = []
        self._seen = 0
        self._rng = random.Random(seed)

    def record(self, latency_s: float) -> None:
        """Record one latency sample, in seconds."""
        self._seen += 1
        if len(self._samples) < self._max:
            self._samples.append(latency_s)
        else:
            # Reservoir sampling keeps the sample uniform over all records.
            j = self._rng.randrange(self._seen)
            if j < self._max:
                self._samples[j] = latency_s
        return None

    @property
    def samples(self) -> tuple[float, ...]:
        """The retained reservoir samples (for tests and export)."""
        return tuple(self._samples)

    @property
    def count(self) -> int:
        """Total number of samples recorded (including thinned-out ones)."""
        return self._seen

    def percentile_ms(self, q: float) -> float:
        """The ``q``-th percentile latency in milliseconds (q in [0, 100])."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples), q)) * 1000.0

    def mean_ms(self) -> float:
        """Mean latency in milliseconds."""
        if not self._samples:
            return 0.0
        return float(np.mean(np.asarray(self._samples))) * 1000.0

    def summary(self) -> dict[str, float]:
        """p50/p95/p99/mean in milliseconds plus the count."""
        return {
            "count": float(self.count),
            "mean_ms": self.mean_ms(),
            "p50_ms": self.percentile_ms(50),
            "p95_ms": self.percentile_ms(95),
            "p99_ms": self.percentile_ms(99),
        }


@dataclass
class OperatorMetrics:
    """Per-operator metric bundle collected by the runner."""

    name: str
    records_in: Counter = field(default_factory=Counter)
    records_out: Counter = field(default_factory=Counter)
    processing_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    _started_at: float | None = None
    _ended_at: float | None = None

    def mark_start(self) -> None:
        """Record wall-clock start of processing."""
        if self._started_at is None:
            self._started_at = time.perf_counter()

    def mark_end(self) -> None:
        """Record wall-clock end of processing."""
        self._ended_at = time.perf_counter()

    def throughput_rps(self) -> float:
        """Records-in per wall-clock second over the run."""
        if self._started_at is None or self._ended_at is None:
            return 0.0
        elapsed = self._ended_at - self._started_at
        if elapsed <= 0:
            return 0.0
        return self.records_in.value / elapsed

    def summary(self) -> dict[str, float]:
        """Flat metric summary for reporting."""
        out = {
            "records_in": float(self.records_in.value),
            "records_out": float(self.records_out.value),
            "throughput_rps": self.throughput_rps(),
        }
        out.update(self.processing_latency.summary())
        return out

"""Deprecated: operator metrics moved to :mod:`repro.obs`.

This module is an import shim kept for backwards compatibility.
``Counter``, ``Gauge``, ``LatencyHistogram`` and ``OperatorMetrics`` now
live in :mod:`repro.obs.metrics` — the single metrics surface shared by
every tier — and importing them from here emits a
:class:`DeprecationWarning`. Update imports::

    from repro.obs import Counter, LatencyHistogram  # new home
"""

from __future__ import annotations

import warnings

_MOVED = ("Counter", "Gauge", "LatencyHistogram", "OperatorMetrics")

__all__ = list(_MOVED)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.streams.metrics.{name} moved to repro.obs.{name}; "
            "this shim will be removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.obs import metrics as _obs_metrics

        return getattr(_obs_metrics, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)

"""Replay sources: turning recorded data back into streams.

The latency experiments need a stream that arrives *over time* rather
than as fast as Python can iterate. :func:`replay` yields records paced
against the wall clock at a configurable speedup; :func:`replay_instant`
is the un-paced variant used everywhere pacing does not matter.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Iterator

from repro.streams.records import Record


def replay_instant(
    timed_values: Iterable[tuple[float, Any]],
) -> Iterator[Record]:
    """Wrap ``(event_time, value)`` pairs as records with no pacing."""
    for event_time, value in timed_values:
        yield Record(event_time=event_time, value=value)


def replay(
    timed_values: Iterable[tuple[float, Any]],
    speedup: float = 60.0,
    max_sleep_s: float = 1.0,
    clock=time.monotonic,
    sleep=time.sleep,
) -> Iterator[Record]:
    """Yield records paced so event time advances ``speedup``× wall time.

    Args:
        speedup: 60 → one event-time minute per wall second.
        max_sleep_s: Individual sleeps are capped (long silences in the
            data don't stall a demo).
        clock / sleep: Injectable for tests.
    """
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    started_wall = None
    started_event = None
    for event_time, value in timed_values:
        if started_wall is None:
            started_wall = clock()
            started_event = event_time
        else:
            due_wall = started_wall + (event_time - started_event) / speedup
            delay = due_wall - clock()
            if delay > 0:
                sleep(min(delay, max_sleep_s))
        yield Record(event_time=event_time, value=value)

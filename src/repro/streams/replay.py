"""Replay sources: turning recorded data back into streams.

The latency experiments need a stream that arrives *over time* rather
than as fast as Python can iterate. :func:`replay` yields records paced
against the wall clock at a configurable speedup; :func:`replay_instant`
is the un-paced variant used everywhere pacing does not matter.

:class:`ReplayLog` is the recovery-side source: a materialized log that
can be re-read from any offset, so a resume-from-checkpoint replays
exactly the suffix the crashed run never finished (the skipped prefix is
what deduplicates replayed records).
"""

from __future__ import annotations

import time
from typing import Any, Generic, Iterable, Iterator, TypeVar

from repro.obs.clock import monotonic
from repro.streams.records import Record

T = TypeVar("T")


class ReplayLog(Generic[T]):
    """A materialized item log supporting offset reads.

    Stands in for a durable, offset-addressable source (a Kafka topic, an
    archived AIS file): the same log instance feeds the original run and
    any number of recovery replays. Items may be :class:`Record` instances
    or raw domain objects (e.g. position reports).
    """

    def __init__(self, items: Iterable[T]) -> None:
        self._items: list[T] = list(items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return self.read(0)

    def read(self, offset: int = 0) -> Iterator[T]:
        """Yield items starting at ``offset`` (0 = the full log)."""
        if offset < 0:
            raise ValueError("offset must be >= 0")
        yield from self._items[offset:]

    @classmethod
    def from_timed_values(cls, timed_values: Iterable[tuple[float, Any]]) -> "ReplayLog[Record]":
        """Build a record log from ``(event_time, value)`` pairs."""
        return cls(replay_instant(timed_values))


def replay_instant(
    timed_values: Iterable[tuple[float, Any]],
) -> Iterator[Record]:
    """Wrap ``(event_time, value)`` pairs as records with no pacing."""
    for event_time, value in timed_values:
        yield Record(event_time=event_time, value=value)


def replay(
    timed_values: Iterable[tuple[float, Any]],
    speedup: float = 60.0,
    max_sleep_s: float = 1.0,
    clock=monotonic,
    sleep=time.sleep,
) -> Iterator[Record]:
    """Yield records paced so event time advances ``speedup``× wall time.

    Args:
        speedup: 60 → one event-time minute per wall second.
        max_sleep_s: Individual sleeps are capped (long silences in the
            data don't stall a demo).
        clock / sleep: Injectable for tests.
    """
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    started_wall = None
    started_event = None
    for event_time, value in timed_values:
        if started_wall is None:
            started_wall = clock()
            started_event = event_time
        else:
            due_wall = started_wall + (event_time - started_event) / speedup
            delay = due_wall - clock()
            if delay > 0:
                sleep(min(delay, max_sleep_s))
        yield Record(event_time=event_time, value=value)

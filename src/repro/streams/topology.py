"""Topology construction and execution.

A :class:`Topology` is a linear-or-branching DAG of operators; the
:class:`StreamRunner` drives records from a source iterable through it,
injecting watermarks and collecting per-operator metrics.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Iterable, Iterator

from repro.obs.clock import monotonic
from repro.obs.metrics import LatencyHistogram, MetricsRegistry, OperatorMetrics
from repro.obs.tracing import NULL_SPAN
from repro.streams.checkpoint import Checkpoint, CheckpointStore
from repro.streams.operators import Operator
from repro.streams.records import Record, Watermark
from repro.streams.replay import ReplayLog
from repro.streams.watermarks import BoundedOutOfOrdernessWatermarks


class _Stage:
    """An operator plus its downstream stages."""

    __slots__ = ("operator", "downstream", "metrics")

    def __init__(self, operator: Operator) -> None:
        self.operator = operator
        self.downstream: list[_Stage] = []
        self.metrics = OperatorMetrics(name=operator.name)


class Topology:
    """A dataflow graph built by chaining operators.

    Usage::

        topo = Topology()
        a = topo.add_source_stage(MapOperator(parse))
        b = topo.chain(a, FilterOperator(valid))
        topo.chain(b, CollectSink())
    """

    def __init__(self) -> None:
        self._sources: list[_Stage] = []
        self._stages: list[_Stage] = []

    def add_source_stage(self, operator: Operator) -> _Stage:
        """Add an operator fed directly by the input stream."""
        stage = _Stage(operator)
        self._sources.append(stage)
        self._stages.append(stage)
        return stage

    def chain(self, upstream: _Stage, operator: Operator) -> _Stage:
        """Attach an operator downstream of an existing stage."""
        stage = _Stage(operator)
        upstream.downstream.append(stage)
        self._stages.append(stage)
        return stage

    @property
    def stages(self) -> list[_Stage]:
        """All stages in insertion order."""
        return list(self._stages)

    def metrics_summary(self) -> dict[str, dict[str, float]]:
        """Per-operator metric summaries keyed by operator name."""
        out: dict[str, dict[str, float]] = {}
        for stage in self._stages:
            name = stage.metrics.name
            # Disambiguate duplicate names deterministically.
            key = name
            suffix = 2
            while key in out:
                key = f"{name}#{suffix}"
                suffix += 1
            out[key] = stage.metrics.summary()
        return out


class StreamRunner:
    """Executes a topology over an iterable of records.

    Args:
        topology: The dataflow graph.
        watermark_interval: Emit a watermark after every N input records.
        max_out_of_orderness_s: Lateness bound for the watermark generator.
        track_latency: When true, wall-clock latency is sampled per record
            at every stage (costs one ``perf_counter`` pair per call).
        checkpoint_store: When given (with a positive interval), the
            runner snapshots every operator plus the watermark generator
            at record boundaries — the single-process equivalent of an
            aligned checkpoint barrier.
        checkpoint_interval: Take a checkpoint after every N records.
        metrics: Shared observability registry. When given (and enabled),
            the run is wrapped in a ``streams.run`` span and every
            operator's metric bundle is absorbed into the registry at end
            of run (``streams.<op>.latency`` histograms plus record
            counters) — zero per-record overhead.
    """

    def __init__(
        self,
        topology: Topology,
        watermark_interval: int = 100,
        max_out_of_orderness_s: float = 0.0,
        track_latency: bool = False,
        checkpoint_store: CheckpointStore | None = None,
        checkpoint_interval: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if watermark_interval <= 0:
            raise ValueError("watermark_interval must be positive")
        if checkpoint_store is not None and checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive with a store")
        self.topology = topology
        self.watermark_interval = watermark_interval
        self.track_latency = track_latency
        self.checkpoint_store = checkpoint_store
        self.checkpoint_interval = checkpoint_interval
        self.metrics = metrics
        self._wm_gen = BoundedOutOfOrdernessWatermarks(max_out_of_orderness_s)
        self.end_to_end_latency = LatencyHistogram()

    def run(self, records: Iterable[Record], resume_from: Checkpoint | None = None) -> None:
        """Drive all records through the topology, then flush.

        When ``resume_from`` is given, every operator (and the watermark
        generator) is restored from the checkpoint and the first
        ``source_offset`` records of ``records`` are skipped — pass the
        *full* source (ideally a :class:`ReplayLog`); the skipped prefix
        is the dedup of replayed records. Record counting continues from
        the offset, so watermark and checkpoint cadence — and therefore
        window firing and all downstream outputs — are identical to an
        uninterrupted run over the same source.
        """
        count = 0
        if resume_from is not None:
            self.restore_checkpoint(resume_from)
            count = resume_from.source_offset
            if isinstance(records, ReplayLog):
                records = records.read(count)
            else:
                records = itertools.islice(iter(records), count, None)
        for stage in self.topology.stages:
            stage.metrics.mark_start()
        run_span = (
            self.metrics.span("streams.run")
            if self.metrics is not None
            else NULL_SPAN
        )
        with run_span:
            for record in records:
                ingest_started = monotonic() if self.track_latency else 0.0
                for source in self.topology._sources:
                    self._push_record(source, record)
                if self.track_latency:
                    self.end_to_end_latency.record(monotonic() - ingest_started)
                count += 1
                if count % self.watermark_interval == 0:
                    wm = self._wm_gen.observe(record.event_time)
                    if wm is not None:
                        for source in self.topology._sources:
                            self._push_watermark(source, Watermark(wm))
                else:
                    self._wm_gen.observe(record.event_time)
                if (
                    self.checkpoint_store is not None
                    and count % self.checkpoint_interval == 0
                ):
                    self.save_checkpoint(count)
            self._flush()
            run_span.add_records(count)
        for stage in self.topology.stages:
            stage.metrics.mark_end()
        self._absorb_metrics()

    def _absorb_metrics(self) -> None:
        """Fold operator bundles + end-to-end latency into the registry."""
        if self.metrics is None or not self.metrics.enabled:
            return
        for stage in self.topology.stages:
            self.metrics.absorb_operator(stage.metrics, prefix="streams")
        if self.end_to_end_latency.count:
            self.metrics.histogram("streams.end_to_end").merge(self.end_to_end_latency)

    # -- checkpointing ----------------------------------------------------------

    def _stage_id(self, index: int, stage: _Stage) -> str:
        return f"{index}:{stage.operator.name}"

    def save_checkpoint(self, source_offset: int) -> Checkpoint:
        """Snapshot every operator + the watermark generator and persist it.

        Called automatically at the configured interval; callable directly
        for a final checkpoint at end of input. Stage ids are derived from
        insertion order, so resume requires a topology built identically.
        """
        if self.checkpoint_store is None:
            raise ValueError("runner has no checkpoint store")
        states: dict[str, Any] = {
            "__runner__": {
                "watermarks": self._wm_gen.snapshot(),
                "end_to_end": copy.deepcopy(self.end_to_end_latency),
            }
        }
        for index, stage in enumerate(self.topology.stages):
            states[self._stage_id(index, stage)] = {
                "operator": stage.operator.snapshot(),
                "metrics": copy.deepcopy(stage.metrics),
            }
        checkpoint = Checkpoint(
            checkpoint_id=self.checkpoint_store.next_id(),
            source_offset=source_offset,
            states=states,
        )
        self.checkpoint_store.save(checkpoint)
        return checkpoint

    def restore_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Reinstate all operator and runner state from a checkpoint."""
        runner_state = checkpoint.states["__runner__"]
        self._wm_gen.restore(runner_state["watermarks"])
        self.end_to_end_latency = copy.deepcopy(runner_state["end_to_end"])
        for index, stage in enumerate(self.topology.stages):
            stage_id = self._stage_id(index, stage)
            if stage_id not in checkpoint.states:
                raise KeyError(
                    f"checkpoint has no state for stage {stage_id!r}; "
                    "was the topology built identically?"
                )
            state = checkpoint.states[stage_id]
            stage.operator.restore(state["operator"])
            stage.metrics = copy.deepcopy(state["metrics"])

    def run_values(self, timed_values: Iterable[tuple[float, Any]]) -> None:
        """Convenience wrapper: run over ``(event_time, value)`` pairs."""
        self.run(Record(event_time=t, value=v) for t, v in timed_values)

    def _push_record(self, stage: _Stage, record: Record) -> None:
        stage.metrics.records_in.inc()
        if self.track_latency:
            started = monotonic()
            outputs = list(stage.operator.process(record))
            stage.metrics.processing_latency.record(monotonic() - started)
        else:
            outputs = list(stage.operator.process(record))
        stage.metrics.records_out.inc(len(outputs))
        for out in outputs:
            for child in stage.downstream:
                self._push_record(child, out)

    def _push_watermark(self, stage: _Stage, watermark: Watermark) -> None:
        outputs = list(stage.operator.on_watermark(watermark))
        stage.metrics.records_out.inc(len(outputs))
        for out in outputs:
            for child in stage.downstream:
                self._push_record(child, out)
        for child in stage.downstream:
            self._push_watermark(child, watermark)

    def _flush(self) -> None:
        for source in self.topology._sources:
            self._flush_stage(source)

    def _flush_stage(self, stage: _Stage) -> None:
        outputs = list(stage.operator.on_end())
        stage.metrics.records_out.inc(len(outputs))
        for out in outputs:
            for child in stage.downstream:
                self._push_record(child, out)
        for child in stage.downstream:
            self._flush_stage(child)


def sorted_by_time(records: Iterable[Record]) -> Iterator[Record]:
    """Yield records sorted by event time (testing helper for replays)."""
    yield from sorted(records, key=lambda r: r.event_time)

"""Simulated parallel execution of keyed operators.

The production deployment runs keyed operators across task slots; records
route by key hash so all of one entity's records hit the same slot. The
:class:`ParallelKeyedRunner` reproduces that topology in-process: ``n``
clones of the operator, a hash router, per-task wall-time accounting and
the makespan model (max over tasks + shuffle overhead per record) —
giving the stream side the same simulated-speedup story the store side
has (experiment E2b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.hashing import stable_shard
from repro.obs.clock import monotonic
from repro.streams.operators import Operator
from repro.streams.records import Record

#: Per-record routing/shuffle overhead on a real fabric, in seconds.
SHUFFLE_OVERHEAD_S = 2e-6


@dataclass
class ParallelRunReport:
    """Cost accounting of one parallel run.

    Attributes:
        n_tasks: Task-slot count.
        records_in / records_out: Totals across tasks.
        per_task_s: Measured busy time per task.
        per_task_records: Records routed to each task.
        sequential_s: Sum of task times (single-slot cost).
        makespan_s: max(task time) + shuffle overhead (cluster cost).
        skew: max/mean of per-task record counts (1.0 = perfectly even).
    """

    n_tasks: int
    records_in: int = 0
    records_out: int = 0
    per_task_s: list[float] = field(default_factory=list)
    per_task_records: list[int] = field(default_factory=list)
    sequential_s: float = 0.0
    makespan_s: float = 0.0

    @property
    def simulated_speedup(self) -> float:
        """Sequential time over makespan."""
        if self.makespan_s <= 0:
            return 1.0
        return self.sequential_s / self.makespan_s

    @property
    def skew(self) -> float:
        """Routing skew: max/mean records per task."""
        if not self.per_task_records or sum(self.per_task_records) == 0:
            return 1.0
        mean = sum(self.per_task_records) / len(self.per_task_records)
        return max(self.per_task_records) / mean if mean > 0 else 1.0


class ParallelKeyedRunner:
    """Runs ``n`` clones of a keyed operator over a record stream.

    Args:
        operator_factory: Builds one operator instance per task slot
            (each slot owns independent state, as on a real cluster).
        n_tasks: Task-slot count.
        key_fn: Extracts the routing key from a record value.
    """

    def __init__(
        self,
        operator_factory: Callable[[], Operator],
        n_tasks: int,
        key_fn: Callable[[Any], Any],
    ) -> None:
        if n_tasks <= 0:
            raise ValueError("n_tasks must be positive")
        self.n_tasks = n_tasks
        self.key_fn = key_fn
        self.tasks = [operator_factory() for __ in range(n_tasks)]

    def _route(self, value: Any) -> int:
        # Stable (PYTHONHASHSEED-independent) routing, shared with the
        # real runtime's ShardRouter: the same key lands on the same task
        # in every interpreter, so simulated and real shard assignments
        # agree run-to-run.
        return stable_shard(self.key_fn(value), self.n_tasks)

    def run(self, records: Iterable[Record]) -> tuple[list[Record], ParallelRunReport]:
        """Process all records; returns outputs and the cost report.

        Outputs preserve arrival order (as a perfectly synchronised
        cluster merge would); per-task busy time is measured around each
        record so the makespan reflects actual per-slot work.
        """
        report = ParallelRunReport(
            n_tasks=self.n_tasks,
            per_task_s=[0.0] * self.n_tasks,
            per_task_records=[0] * self.n_tasks,
        )
        outputs: list[Record] = []
        for record in records:
            task_idx = self._route(record.value)
            report.records_in += 1
            report.per_task_records[task_idx] += 1
            started = monotonic()
            produced = list(self.tasks[task_idx].process(record))
            report.per_task_s[task_idx] += monotonic() - started
            outputs.extend(produced)
        for task_idx, task in enumerate(self.tasks):
            started = monotonic()
            produced = list(task.on_end())
            report.per_task_s[task_idx] += monotonic() - started
            outputs.extend(produced)
        report.records_out = len(outputs)
        report.sequential_s = sum(report.per_task_s)
        report.makespan_s = (
            max(report.per_task_s, default=0.0)
            + SHUFFLE_OVERHEAD_S * report.records_in
        )
        return (outputs, report)

"""Event-time windows: assigners and the windowed aggregation operator.

Windows fire on watermarks. Late records (event time at or below the current
watermark, landing only in already-fired windows) are dropped and counted —
the same contract production engines default to.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.streams.operators import Operator
from repro.streams.records import Record, Watermark


@dataclass(frozen=True, slots=True)
class WindowPane:
    """One fired window for one key.

    Attributes:
        key: The grouping key.
        start: Window start (inclusive), event time seconds.
        end: Window end (exclusive).
        values: The record values that fell in the window, in arrival order.
    """

    key: Any
    start: float
    end: float
    values: tuple[Any, ...]


class TumblingWindowAssigner:
    """Fixed-size, non-overlapping windows aligned to multiples of the size."""

    def __init__(self, size_s: float) -> None:
        if size_s <= 0:
            raise ValueError("window size must be positive")
        self.size = size_s

    def assign(self, event_time: float) -> list[tuple[float, float]]:
        """Windows (start, end) containing the event time — exactly one."""
        start = (event_time // self.size) * self.size
        return [(start, start + self.size)]


class SlidingWindowAssigner:
    """Fixed-size windows sliding by a step; each event lands in several."""

    def __init__(self, size_s: float, slide_s: float) -> None:
        if size_s <= 0 or slide_s <= 0:
            raise ValueError("size and slide must be positive")
        if slide_s > size_s:
            raise ValueError("slide must not exceed size")
        self.size = size_s
        self.slide = slide_s

    def assign(self, event_time: float) -> list[tuple[float, float]]:
        """All (start, end) windows containing the event time."""
        last_start = (event_time // self.slide) * self.slide
        out = []
        start = last_start
        while start > event_time - self.size:
            out.append((start, start + self.size))
            start -= self.slide
        out.reverse()
        return out


class SessionWindowAssigner:
    """Gap-based session windows (merged dynamically by the operator).

    The assigner only proposes a seed window ``[t, t + gap)``; the windowed
    operator merges overlapping sessions per key.
    """

    def __init__(self, gap_s: float) -> None:
        if gap_s <= 0:
            raise ValueError("session gap must be positive")
        self.gap = gap_s
        self.merging = True

    def assign(self, event_time: float) -> list[tuple[float, float]]:
        """Seed session window for one event."""
        return [(event_time, event_time + self.gap)]


class WindowedAggregateOperator(Operator):
    """Keyed event-time windowing with an aggregate applied on firing.

    Args:
        key_fn: Extracts the grouping key from a record value.
        assigner: One of the assigners in this module.
        aggregate_fn: Maps a :class:`WindowPane` to the emitted value.
            Defaults to emitting the pane itself.
    """

    def __init__(
        self,
        key_fn: Callable[[Any], Any],
        assigner: Any,
        aggregate_fn: Callable[[WindowPane], Any] | None = None,
        name: str = "window",
    ) -> None:
        self._key_fn = key_fn
        self._assigner = assigner
        self._aggregate = aggregate_fn or (lambda pane: pane)
        self.name = name
        # (key, start, end) -> list of values
        self._panes: dict[tuple[Any, float, float], list[Any]] = {}
        #: Records dropped because every window they belong to had already
        #: fired when they arrived (event time at or below the watermark).
        self.late_records = 0
        self._watermark = float("-inf")
        self._merging = bool(getattr(assigner, "merging", False))

    def process(self, record: Record) -> Iterable[Record]:
        key = self._key_fn(record.value)
        assigned = self._assigner.assign(record.event_time)
        live = [(start, end) for start, end in assigned if end > self._watermark]
        if not live:
            # Every target window already fired: the record is late.
            self.late_records += 1
            return ()
        for start, end in live:
            pane_key = (key, start, end)
            if self._merging:
                pane_key = self._merge_sessions(key, start, end)
            self._panes.setdefault(pane_key, []).append(record.value)
        return ()

    def _merge_sessions(self, key: Any, start: float, end: float) -> tuple[Any, float, float]:
        """Merge a new session seed with overlapping existing sessions."""
        merged_values: list[Any] = []
        merged_start, merged_end = start, end
        to_delete = []
        for (k, s, e), values in self._panes.items():
            if k != key:
                continue
            if s <= merged_end and merged_start <= e:
                merged_start = min(merged_start, s)
                merged_end = max(merged_end, e)
                merged_values.extend(values)
                to_delete.append((k, s, e))
        for pane_key in to_delete:
            del self._panes[pane_key]
        new_key = (key, merged_start, merged_end)
        self._panes[new_key] = merged_values
        return new_key

    def on_watermark(self, watermark: Watermark) -> Iterable[Record]:
        self._watermark = max(self._watermark, watermark.time)
        return self._fire(watermark.time)

    def on_end(self) -> Iterable[Record]:
        return self._fire(float("inf"))

    def _fire(self, up_to: float) -> list[Record]:
        fired: list[Record] = []
        ready = [pk for pk in self._panes if pk[2] <= up_to]
        # Deterministic firing order: by end time, then start, then key repr.
        ready.sort(key=lambda pk: (pk[2], pk[1], repr(pk[0])))
        for key, start, end in ready:
            values = self._panes.pop((key, start, end))
            pane = WindowPane(key=key, start=start, end=end, values=tuple(values))
            fired.append(Record(event_time=end, value=self._aggregate(pane), key=key))
        return fired

    @property
    def open_panes(self) -> int:
        """Number of panes not yet fired (for tests)."""
        return len(self._panes)

    def pane_intervals(self) -> dict[Any, list[tuple[float, float]]]:
        """Open ``[start, end)`` intervals per key (introspection/tests)."""
        out: dict[Any, list[tuple[float, float]]] = {}
        for key, start, end in self._panes:
            out.setdefault(key, []).append((start, end))
        for intervals in out.values():
            intervals.sort()
        return out

    def snapshot(self) -> Any:
        return {
            "panes": copy.deepcopy(self._panes),
            "late_records": self.late_records,
            "watermark": self._watermark,
        }

    def restore(self, state: Any) -> None:
        self._panes = copy.deepcopy(state["panes"])
        self.late_records = state["late_records"]
        self._watermark = state["watermark"]

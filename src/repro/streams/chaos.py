"""Fault injection and degraded-mode execution for the streaming layer.

Three failure models, matching what surveillance-stream deployments see:

- **crashes** — :class:`CrashInjector` kills a run mid-stream (the
  checkpoint/recovery path in :mod:`repro.streams.checkpoint` is the
  counterpart that must make this survivable);
- **transient faults** — :class:`TransientFaultInjector` makes individual
  stage executions fail with a seeded probability; the
  :class:`RetryPolicy` (exponential backoff with jitter) governs how
  often they are retried;
- **poison records** — records whose processing keeps failing past the
  retry budget land in a :class:`DeadLetterQueue` instead of stalling or
  killing the stream.

Faults are injected at stage *entry*, before any state mutation, so a
retried attempt never observes a partially-applied stage — the same
contract a transactional worker restart gives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Collection, Iterable, Iterator

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.streams.operators import Operator
from repro.streams.records import Record, Watermark


class InjectedCrash(RuntimeError):
    """A deliberate, unrecoverable crash raised by the chaos layer."""


class TransientFault(RuntimeError):
    """A retryable failure (network blip, worker hiccup, timeout)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter.

    Attempt ``k`` (0-based) backs off ``base_delay_s * multiplier**k``,
    capped at ``max_delay_s``, then scaled by a random factor in
    ``[1 - jitter, 1]`` so synchronized retry storms decorrelate.
    """

    max_retries: int = 3
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        delay = min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)
        if self.jitter:
            delay *= 1.0 - self.jitter * rng.random()
        return delay


@dataclass(frozen=True, slots=True)
class DeadLetter:
    """One record that exhausted its retry budget."""

    stage: str
    value: Any
    event_time: float | None
    error: str
    attempts: int


class DeadLetterQueue:
    """Terminal parking lot for records no retry could save."""

    def __init__(self) -> None:
        self._items: list[DeadLetter] = []

    def append(self, letter: DeadLetter) -> None:
        """Park one dead letter."""
        self._items.append(letter)

    @property
    def items(self) -> tuple[DeadLetter, ...]:
        """All dead letters in arrival order."""
        return tuple(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def counts_by_stage(self) -> dict[str, int]:
        """Dead-letter count per originating stage."""
        out: dict[str, int] = {}
        for letter in self._items:
            out[letter.stage] = out.get(letter.stage, 0) + 1
        return out

    def snapshot(self) -> list[DeadLetter]:
        """Copy the parked letters for a checkpoint (letters are frozen)."""
        return list(self._items)

    def restore(self, state: list[DeadLetter]) -> None:
        """Replace the contents **in place**, preserving queue identity.

        Operators snapshot a shared DLQ independently; restoring in
        place (rather than rebinding) keeps every sharer attached to the
        same queue object.
        """
        self._items[:] = state


class CrashInjector:
    """Iterable wrapper that raises :class:`InjectedCrash` mid-stream.

    Yields exactly ``crash_after`` items, then crashes — simulating a
    worker dying at a record boundary. Works over any item type (records
    or raw reports).
    """

    def __init__(self, items: Iterable[Any], crash_after: int) -> None:
        if crash_after < 0:
            raise ValueError("crash_after must be >= 0")
        self._items = items
        self.crash_after = crash_after
        self.delivered = 0

    def __iter__(self) -> Iterator[Any]:
        for item in self._items:
            if self.delivered >= self.crash_after:
                raise InjectedCrash(
                    f"injected crash after {self.delivered} records"
                )
            yield item
            self.delivered += 1


class TransientFaultInjector:
    """Seeded coin-flip fault source with one stream per stage.

    Each :meth:`maybe_fail` call raises :class:`TransientFault` with
    probability ``fail_prob`` (optionally only for the named stages).
    Every stage name draws from its own RNG stream (seeded from a stable
    hash of ``(seed, stage)``), so the i-th execution of a given stage
    sees the same draw no matter how calls to *other* stages interleave.
    That makes fault assignment invariant between record-major execution
    (stage A, B, C of record 1, then of record 2, ...) and stage-major
    micro-batch execution (stage A of every record, then stage B, ...) —
    the property the pipeline's batch/per-record differential relies on.
    Deterministic for a fixed seed and per-stage call sequence, so chaos
    tests are reproducible.
    """

    def __init__(
        self,
        fail_prob: float,
        seed: int = 0,
        stages: Collection[str] | None = None,
    ) -> None:
        if not 0.0 <= fail_prob <= 1.0:
            raise ValueError("fail_prob must be in [0, 1]")
        self.fail_prob = fail_prob
        self.stages = frozenset(stages) if stages is not None else None
        self._seed = seed
        self._rngs: dict[str, random.Random] = {}
        self.faults_injected = 0

    def _stage_rng(self, stage: str) -> random.Random:
        rng = self._rngs.get(stage)
        if rng is None:
            from repro.hashing import stable_hash

            rng = random.Random(stable_hash((self._seed, "fault", stage)))
            self._rngs[stage] = rng
        return rng

    def maybe_fail(self, stage: str) -> None:
        """Raise a :class:`TransientFault` for this stage execution, or not."""
        if self.stages is not None and stage not in self.stages:
            return
        if self._stage_rng(stage).random() < self.fail_prob:
            self.faults_injected += 1
            raise TransientFault(f"injected transient fault in stage {stage!r}")


@dataclass(frozen=True)
class ChaosConfig:
    """Degraded-mode configuration for :class:`repro.core.pipeline.MobilityPipeline`.

    Attributes:
        fail_prob: Per-stage-execution transient failure probability.
        stages: When given, faults hit only these stage names.
        seed: Seeds both the fault injector and the backoff jitter.
        retry: Backoff policy applied when a stage raises a transient fault.
    """

    fail_prob: float = 0.0
    stages: frozenset[str] | None = None
    seed: int = 0
    retry: RetryPolicy = field(default_factory=RetryPolicy)


class RetryingOperator(Operator):
    """Wraps an operator with retry-with-backoff and a dead-letter queue.

    A :meth:`process` call that raises one of ``retry_on`` is retried up
    to ``policy.max_retries`` times with exponential backoff; a record
    that exhausts the budget is parked in the DLQ and dropped (the stream
    keeps flowing — degraded, not dead).

    Args:
        inner: The wrapped operator.
        policy: Retry/backoff policy.
        dlq: Shared dead-letter queue (a fresh one is created if omitted).
        injector: Optional fault source consulted before each attempt.
        retry_on: Exception types treated as transient.
        sleep: Called with each backoff delay; ``None`` (the default) only
            accumulates :attr:`total_backoff_s` — tests and simulations
            should not actually sleep.
        seed: Seeds the backoff jitter.
        metrics: Observability registry; when given, failures/retries/
            recoveries/dead-letters also land on ``chaos.<op>.*`` counters
            so the degraded-mode path shows up on the shared surface.
    """

    def __init__(
        self,
        inner: Operator,
        policy: RetryPolicy | None = None,
        dlq: DeadLetterQueue | None = None,
        injector: TransientFaultInjector | None = None,
        retry_on: tuple[type[BaseException], ...] = (TransientFault,),
        sleep: Callable[[float], None] | None = None,
        seed: int = 0,
        name: str | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.dlq = dlq if dlq is not None else DeadLetterQueue()
        self.injector = injector
        self.retry_on = retry_on
        self._sleep = sleep
        self._rng = random.Random(seed)
        self.name = name or f"retry({inner.name})"
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        #: Failed attempts observed (including the ones later retried).
        self.failures = 0
        #: Retries performed.
        self.retries = 0
        #: Records that failed at least once but ultimately succeeded.
        self.recovered = 0
        #: Total backoff delay accrued (simulated when ``sleep`` is None).
        self.total_backoff_s = 0.0

    def process(self, record: Record) -> Iterable[Record]:
        attempt = 0
        while True:
            try:
                if self.injector is not None:
                    self.injector.maybe_fail(self.name)
                out = self.inner.process(record)
                if attempt:
                    self.recovered += 1
                    self.metrics.counter(f"chaos.{self.name}.recovered").inc()
                return out
            except self.retry_on as exc:
                self.failures += 1
                self.metrics.counter(f"chaos.{self.name}.failures").inc()
                if attempt >= self.policy.max_retries:
                    self.dlq.append(
                        DeadLetter(
                            stage=self.name,
                            value=record.value,
                            event_time=record.event_time,
                            error=str(exc),
                            attempts=attempt + 1,
                        )
                    )
                    self.metrics.counter(f"chaos.{self.name}.dead_letters").inc()
                    return ()
                delay = self.policy.backoff_s(attempt, self._rng)
                self.total_backoff_s += delay
                if self._sleep is not None:
                    self._sleep(delay)
                self.retries += 1
                self.metrics.counter(f"chaos.{self.name}.retries").inc()
                attempt += 1

    def on_watermark(self, watermark: Watermark) -> Iterable[Record]:
        return self.inner.on_watermark(watermark)

    def on_end(self) -> Iterable[Record]:
        return self.inner.on_end()

    def snapshot(self) -> Any:
        return {
            "inner": self.inner.snapshot(),
            "failures": self.failures,
            "retries": self.retries,
            "recovered": self.recovered,
            "total_backoff_s": self.total_backoff_s,
            "dlq": self.dlq.snapshot(),
            "rng": self._rng.getstate(),
        }

    def restore(self, state: Any) -> None:
        self.inner.restore(state["inner"])
        self.failures = state["failures"]
        self.retries = state["retries"]
        self.recovered = state["recovered"]
        self.total_backoff_s = state["total_backoff_s"]
        # Restored in place so a DLQ shared between operators keeps its
        # identity; every sharer snapshots the same full contents, so the
        # last restore wins with an identical list.
        self.dlq.restore(state["dlq"])
        self._rng.setstate(state["rng"])

"""Dataflow operators.

Operators are push-based: the runner calls :meth:`Operator.process` for each
record and :meth:`Operator.on_watermark` for each watermark; both return the
elements to forward downstream. Stateful keyed operators keep per-key state
dictionaries, mirroring the keyed-state model of production stream engines.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Generic, Iterable, TypeVar

from repro.streams.records import Record, Watermark

T = TypeVar("T")
U = TypeVar("U")

Element = "Record | Watermark"


class Operator:
    """Base class for all dataflow operators."""

    #: Name used in topology metrics; subclasses or instances may override.
    name: str = "operator"

    def process(self, record: Record) -> Iterable[Record]:
        """Handle one record, returning records to emit downstream."""
        raise NotImplementedError

    def on_watermark(self, watermark: Watermark) -> Iterable[Record]:
        """Handle a watermark; may flush state and emit records.

        The runner forwards the watermark itself downstream after this call;
        operators only return the *records* they want to emit.
        """
        return ()

    def on_end(self) -> Iterable[Record]:
        """Called once when the input is exhausted; may flush final state."""
        return ()

    def snapshot(self) -> Any:
        """Capture this operator's mutable state for a checkpoint.

        The returned object must be self-contained (no aliasing of live
        state) and picklable. Stateless operators return ``None``.
        """
        return None

    def restore(self, state: Any) -> None:
        """Reinstate state captured by :meth:`snapshot`."""
        if state is not None:
            raise ValueError(
                f"{type(self).__name__} is stateless but was handed a snapshot"
            )


class MapOperator(Operator, Generic[T, U]):
    """Applies a function to each record's value."""

    def __init__(self, fn: Callable[[T], U], name: str = "map") -> None:
        self._fn = fn
        self.name = name

    def process(self, record: Record) -> Iterable[Record]:
        return (record.with_value(self._fn(record.value)),)


class FilterOperator(Operator, Generic[T]):
    """Keeps records whose value satisfies a predicate."""

    def __init__(self, predicate: Callable[[T], bool], name: str = "filter") -> None:
        self._predicate = predicate
        self.name = name

    def process(self, record: Record) -> Iterable[Record]:
        if self._predicate(record.value):
            return (record,)
        return ()


class FlatMapOperator(Operator, Generic[T, U]):
    """Expands each record into zero or more records."""

    def __init__(self, fn: Callable[[T], Iterable[U]], name: str = "flat_map") -> None:
        self._fn = fn
        self.name = name

    def process(self, record: Record) -> Iterable[Record]:
        return tuple(record.with_value(v) for v in self._fn(record.value))


class KeyedProcessOperator(Operator, Generic[T]):
    """Stateful operator with per-key state.

    Subclasses implement :meth:`process_keyed`, receiving the record and a
    mutable per-key state dict. The key is extracted by ``key_fn``.
    """

    def __init__(self, key_fn: Callable[[T], Any], name: str = "keyed_process") -> None:
        self._key_fn = key_fn
        self.name = name
        self._state: dict[Any, dict[str, Any]] = {}

    def process(self, record: Record) -> Iterable[Record]:
        key = self._key_fn(record.value)
        state = self._state.setdefault(key, {})
        return self.process_keyed(record.with_key(key), state)

    def process_keyed(self, record: Record, state: dict[str, Any]) -> Iterable[Record]:
        """Handle one record with its per-key state."""
        raise NotImplementedError

    def on_end(self) -> Iterable[Record]:
        out: list[Record] = []
        for key, state in self._state.items():
            out.extend(self.flush_key(key, state))
        return out

    def flush_key(self, key: Any, state: dict[str, Any]) -> Iterable[Record]:
        """Flush a key's state at end of stream; default emits nothing."""
        return ()

    @property
    def keys(self) -> list[Any]:
        """Keys with live state (for tests and introspection)."""
        return list(self._state)

    def snapshot(self) -> Any:
        return copy.deepcopy(self._state)

    def restore(self, state: Any) -> None:
        self._state = copy.deepcopy(state)


class SinkOperator(Operator):
    """Terminal operator calling a function for each record (emits nothing)."""

    def __init__(self, fn: Callable[[Record], None], name: str = "sink") -> None:
        self._fn = fn
        self.name = name

    def process(self, record: Record) -> Iterable[Record]:
        self._fn(record)
        return ()


class CollectSink(SinkOperator):
    """Sink collecting all record values into a list, for tests and demos."""

    def __init__(self, name: str = "collect") -> None:
        self.items: list[Any] = []
        self.records: list[Record] = []
        super().__init__(self._collect, name=name)

    def _collect(self, record: Record) -> None:
        self.items.append(record.value)
        self.records.append(record)

    def snapshot(self) -> Any:
        return {"items": copy.deepcopy(self.items), "records": list(self.records)}

    def restore(self, state: Any) -> None:
        self.items = copy.deepcopy(state["items"])
        self.records = list(state["records"])

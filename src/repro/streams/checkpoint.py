"""Checkpoint/recovery for the streaming layer.

The paper's in-situ processing must sustain high-rate streams under
operational latency constraints; in any real deployment that implies
surviving worker crashes without losing or double-counting reports. This
module provides the recovery substrate:

- a **snapshot protocol**: every stateful operator implements
  ``snapshot()`` / ``restore(state)`` (see :class:`repro.streams.operators.Operator`);
- a :class:`Checkpoint`: the bundle of all operator states plus the
  **source offset** (records consumed so far) taken at a record boundary —
  the single-process analogue of a barrier-aligned consistent snapshot;
- :class:`CheckpointStore` backends: :class:`InMemoryCheckpointStore` for
  tests/benchmarks and :class:`FileCheckpointStore` persisting pickled
  checkpoints to a directory.

Recovery replays the source suffix from the stored offset (see
:class:`repro.streams.replay.ReplayLog`); skipping the already-consumed
prefix is what deduplicates replayed records, so a crash-resume run
produces outputs and counts identical to an uninterrupted run.
"""

from __future__ import annotations

import copy
import os
import pickle
from dataclasses import dataclass
from typing import Any


class StatefulMixin:
    """Dict-shaped ``snapshot()``/``restore()`` from one field list.

    Most stateful components implement the checkpoint protocol as the
    same boilerplate: deep-copy N named fields into a dict, read the
    same N fields back out. Inherit this mixin and declare the fields
    once instead::

        class DeduplicateFilter(StatefulMixin):
            _STATE_FIELDS = ("_seen", "dropped")

    The contract linter's snapshot-coverage rule (C1, see
    ``docs/static-analysis.md``) understands ``_STATE_FIELDS`` and
    verifies the literal names every mutable field — so forgetting to
    list a new field is a lint error, exactly as forgetting it in a
    hand-written ``snapshot()`` would be.

    Payloads are self-contained (deep-copied both ways) and restore
    refuses a payload missing any declared field, so a renamed field
    cannot silently restore to nothing.
    """

    #: Names of every mutable attribute this object must checkpoint.
    _STATE_FIELDS: tuple[str, ...] = ()

    def snapshot(self) -> dict[str, Any]:
        """Deep-copy every declared field into a checkpoint payload."""
        return {
            field: copy.deepcopy(getattr(self, field))
            for field in self._STATE_FIELDS
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Reinstate a payload captured by :meth:`snapshot`."""
        missing = [field for field in self._STATE_FIELDS if field not in state]
        if missing:
            raise KeyError(
                f"checkpoint payload for {type(self).__name__} is missing "
                f"state fields: {missing}"
            )
        for field in self._STATE_FIELDS:
            setattr(self, field, copy.deepcopy(state[field]))


@dataclass(frozen=True)
class Checkpoint:
    """A consistent snapshot of a running computation.

    Attributes:
        checkpoint_id: Monotonically increasing id assigned by the caller
            (use :meth:`CheckpointStore.next_id`).
        source_offset: Number of source records fully processed when the
            snapshot was taken. Resume skips exactly this prefix.
        states: Operator states keyed by a stable stage id. The payload
            must be self-contained (deep-copied), never aliased to live
            operator state.
    """

    checkpoint_id: int
    source_offset: int
    states: dict[str, Any]

    def __post_init__(self) -> None:
        if self.source_offset < 0:
            raise ValueError("source_offset must be >= 0")


class CheckpointStore:
    """Interface for checkpoint persistence backends."""

    def save(self, checkpoint: Checkpoint) -> None:
        """Persist one checkpoint (and apply the retention policy)."""
        raise NotImplementedError

    def load(self, checkpoint_id: int) -> Checkpoint:
        """Load a checkpoint by id; raises ``KeyError`` when absent."""
        raise NotImplementedError

    def latest(self) -> Checkpoint | None:
        """The checkpoint with the highest id, or ``None`` when empty."""
        ids = self.checkpoint_ids()
        if not ids:
            return None
        return self.load(ids[-1])

    def checkpoint_ids(self) -> list[int]:
        """All stored checkpoint ids, ascending."""
        raise NotImplementedError

    def next_id(self) -> int:
        """The next free checkpoint id (max stored + 1)."""
        ids = self.checkpoint_ids()
        return (ids[-1] + 1) if ids else 0


class InMemoryCheckpointStore(CheckpointStore):
    """Keeps checkpoints in a dict; retains only the most recent ``retain``."""

    def __init__(self, retain: int = 3) -> None:
        if retain <= 0:
            raise ValueError("retain must be positive")
        self._retain = retain
        self._checkpoints: dict[int, Checkpoint] = {}

    def save(self, checkpoint: Checkpoint) -> None:
        self._checkpoints[checkpoint.checkpoint_id] = checkpoint
        for stale in sorted(self._checkpoints)[: -self._retain]:
            del self._checkpoints[stale]

    def load(self, checkpoint_id: int) -> Checkpoint:
        return self._checkpoints[checkpoint_id]

    def checkpoint_ids(self) -> list[int]:
        return sorted(self._checkpoints)


class FileCheckpointStore(CheckpointStore):
    """Pickles checkpoints to ``<directory>/checkpoint-<id>.pkl``.

    Survives process crashes: a fresh process pointed at the same
    directory sees the previous run's checkpoints. States must therefore
    be picklable (the built-in operator snapshots are).
    """

    _PREFIX = "checkpoint-"
    _SUFFIX = ".pkl"

    def __init__(self, directory: str, retain: int = 3) -> None:
        if retain <= 0:
            raise ValueError("retain must be positive")
        self._dir = directory
        self._retain = retain
        os.makedirs(directory, exist_ok=True)

    def _path(self, checkpoint_id: int) -> str:
        return os.path.join(self._dir, f"{self._PREFIX}{checkpoint_id}{self._SUFFIX}")

    def save(self, checkpoint: Checkpoint) -> None:
        # Write-then-rename so a crash mid-write never leaves a truncated
        # checkpoint that a recovery would try to load.
        tmp = self._path(checkpoint.checkpoint_id) + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(checkpoint, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, self._path(checkpoint.checkpoint_id))
        for stale in self.checkpoint_ids()[: -self._retain]:
            os.remove(self._path(stale))

    def load(self, checkpoint_id: int) -> Checkpoint:
        path = self._path(checkpoint_id)
        if not os.path.exists(path):
            raise KeyError(checkpoint_id)
        with open(path, "rb") as fh:
            return pickle.load(fh)

    def checkpoint_ids(self) -> list[int]:
        ids: list[int] = []
        for name in os.listdir(self._dir):
            if name.startswith(self._PREFIX) and name.endswith(self._SUFFIX):
                ids.append(int(name[len(self._PREFIX) : -len(self._SUFFIX)]))
        return sorted(ids)

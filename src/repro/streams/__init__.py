"""A single-process streaming dataflow engine with event-time semantics.

This is the substrate standing in for the distributed stream platform
(Flink/Kafka) the datAcron project deployed on. It provides:

- push-based operators (:class:`MapOperator`, :class:`FilterOperator`,
  :class:`FlatMapOperator`, :class:`KeyedOperator`, stateful
  :class:`KeyedProcessOperator`),
- event-time watermarks with bounded out-of-orderness,
- tumbling / sliding / session windows with event-time triggering,
- a :class:`Topology` builder plus :class:`StreamRunner` executor,
- per-operator metrics (throughput, latency percentiles) so the paper's
  "latency in ms" requirement is measurable at every stage,
- checkpoint/recovery (snapshot protocol, checkpoint barriers, offset
  replay) and a chaos layer (crash/fault injection, retry with backoff,
  dead-letter queue) so the stream tier survives worker failures without
  losing or double-counting reports.
"""

from repro.streams.records import Record, Watermark
from repro.obs.metrics import Counter, LatencyHistogram, OperatorMetrics
from repro.streams.operators import (
    Operator,
    MapOperator,
    FilterOperator,
    FlatMapOperator,
    KeyedProcessOperator,
    SinkOperator,
    CollectSink,
)
from repro.streams.watermarks import BoundedOutOfOrdernessWatermarks
from repro.streams.windows import (
    TumblingWindowAssigner,
    SlidingWindowAssigner,
    SessionWindowAssigner,
    WindowedAggregateOperator,
    WindowPane,
)
from repro.streams.topology import Topology, StreamRunner
from repro.streams.replay import ReplayLog, replay, replay_instant
from repro.streams.parallel import ParallelKeyedRunner, ParallelRunReport
from repro.streams.checkpoint import (
    Checkpoint,
    CheckpointStore,
    FileCheckpointStore,
    InMemoryCheckpointStore,
    StatefulMixin,
)
from repro.streams.chaos import (
    ChaosConfig,
    CrashInjector,
    DeadLetter,
    DeadLetterQueue,
    InjectedCrash,
    RetryPolicy,
    RetryingOperator,
    TransientFault,
    TransientFaultInjector,
)

__all__ = [
    "Record",
    "Watermark",
    "Counter",
    "LatencyHistogram",
    "OperatorMetrics",
    "Operator",
    "MapOperator",
    "FilterOperator",
    "FlatMapOperator",
    "KeyedProcessOperator",
    "SinkOperator",
    "CollectSink",
    "BoundedOutOfOrdernessWatermarks",
    "TumblingWindowAssigner",
    "SlidingWindowAssigner",
    "SessionWindowAssigner",
    "WindowedAggregateOperator",
    "WindowPane",
    "Topology",
    "StreamRunner",
    "ReplayLog",
    "replay",
    "replay_instant",
    "ParallelKeyedRunner",
    "ParallelRunReport",
    "Checkpoint",
    "StatefulMixin",
    "CheckpointStore",
    "FileCheckpointStore",
    "InMemoryCheckpointStore",
    "ChaosConfig",
    "CrashInjector",
    "DeadLetter",
    "DeadLetterQueue",
    "InjectedCrash",
    "RetryPolicy",
    "RetryingOperator",
    "TransientFault",
    "TransientFaultInjector",
]

"""Grid-prefiltered zone containment.

Zone containment used to be a linear scan: every consumer (``_interlink``,
zone entry/exit events, sector counting) asked every :class:`Polygon`
whether it contains the point — O(zones) exact tests per record, silently
quadratic-ish for large zone sets. A :class:`ZoneIndex` rasterizes each
zone's bounding box onto a :class:`GeoGrid` once at build time, so a
containment query exact-tests only the polygons whose bbox intersects the
point's cell.

Exactness argument: :meth:`GeoGrid.cell_of` clamps a point to the border
cells and :meth:`GeoGrid.cells_intersecting` clamps a bbox's cell range
the same way. Clamping is monotonic, so a point inside a zone's bbox
always lands in a cell inside the zone's clamped cell range — the
candidate set is a superset of the containing zones, and the exact
``Polygon.contains`` test (which starts with its own bbox fast-reject)
filters it down. Candidates are returned in original zone order, so event
emission order is unchanged versus the linear scan.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.geo.polygon import Polygon

__all__ = ["ZoneIndex", "PREFILTER_MIN_ZONES"]

#: Below this many zones a linear scan beats the index (cell lookup +
#: candidate list handling cost more than a handful of bbox rejects);
#: callers use it to decide whether to build an index at all.
PREFILTER_MIN_ZONES = 8


class ZoneIndex:
    """A static grid index over zone polygons for point containment.

    Args:
        zones: The polygons to index. Order is preserved: candidate and
            containment queries yield zones in this order.
        nx, ny: Grid resolution over the union of the zone bboxes.
    """

    def __init__(self, zones: Iterable[Polygon], nx: int = 64, ny: int = 64) -> None:
        self.zones: tuple[Polygon, ...] = tuple(zones)
        self._grid: GeoGrid | None = None
        self._cells: dict[tuple[int, int], tuple[int, ...]] = {}
        if not self.zones:
            return
        union = self.zones[0].bbox
        for zone in self.zones[1:]:
            union = union.union(zone.bbox)
        # A degenerate union (all zones on one line) still needs a grid
        # with positive area; padding only loosens the prefilter.
        if union.width <= 0.0 or union.height <= 0.0:
            union = BBox(
                union.min_lon - 1e-9,
                union.min_lat - 1e-9,
                union.max_lon + 1e-9,
                union.max_lat + 1e-9,
            )
        self._grid = GeoGrid(bbox=union, nx=nx, ny=ny)
        cells: dict[tuple[int, int], list[int]] = {}
        for idx, zone in enumerate(self.zones):
            for cell in self._grid.cells_intersecting(zone.bbox):
                cells.setdefault(cell, []).append(idx)
        # Indices were appended in ascending zone order per cell already.
        self._cells = {cell: tuple(idxs) for cell, idxs in cells.items()}

    def __len__(self) -> int:
        return len(self.zones)

    def candidate_indices(self, lon: float, lat: float) -> tuple[int, ...]:
        """Zone indices whose bbox cell range covers the point's cell.

        Ascending (= original zone order); a superset of the indices of
        zones actually containing the point.
        """
        if self._grid is None:
            return ()
        return self._cells.get(self._grid.cell_of(lon, lat), ())

    def candidates(self, lon: float, lat: float) -> list[Polygon]:
        """Candidate polygons for the point, in original zone order."""
        zones = self.zones
        return [zones[i] for i in self.candidate_indices(lon, lat)]

    def containing(self, lon: float, lat: float) -> Iterator[Polygon]:
        """Yield exactly the zones containing the point, in zone order."""
        zones = self.zones
        for i in self.candidate_indices(lon, lat):
            zone = zones[i]
            if zone.contains(lon, lat):
                yield zone

    def locate_batch(self, lons: np.ndarray, lats: np.ndarray) -> list[tuple[int, ...]]:
        """Containing zone indices per point, for coordinate columns.

        ``out[k]`` lists the indices of every zone containing point ``k``,
        ascending (= original zone order) — exactly the indices
        :meth:`containing` would yield, because ``Polygon.contains_batch``
        is decision-identical to ``Polygon.contains`` and the grid
        prefilter only ever removes zones whose exact test is False.
        """
        n = len(lons)
        out: list[tuple[int, ...]] = [() for _ in range(n)]
        for idx, zone in enumerate(self.zones):
            hits = zone.contains_batch(lons, lats)
            for k in np.flatnonzero(hits):
                out[k] += (idx,)
        return out

"""Uniform geographic grids and a grid-based point index.

The grid is the workhorse of three layers: blocking in link discovery,
spatial partitioning in the RDF store, and density surfaces in visual
analytics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

from repro.geo.bbox import BBox
from repro.geo.geodesy import haversine_m


def _clamped_index(offset: float, step: float, n: int) -> int:
    """Truncate ``offset / step`` to an index clamped into ``[0, n)``.

    Clamps in float space *before* the integer conversion: a degenerate
    grid (subnormal extent) can overflow the division to ±inf, which
    ``int()`` refuses — the border-cell clamping semantics must survive
    that. For finite quotients the result is identical to truncating
    first and clamping after.
    """
    q = offset / step
    if q <= 0.0:
        return 0
    if q >= n:
        return n - 1
    return int(q)


@dataclass(frozen=True, slots=True)
class GeoGrid:
    """A uniform nx × ny grid over a bounding box.

    Cells are addressed either by ``(ix, iy)`` pairs or by a flat integer id
    ``iy * nx + ix``. Points outside the box are clamped to the border cells
    so that every point always maps to exactly one cell.
    """

    bbox: BBox
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError(f"grid must have positive dimensions: {self.nx}x{self.ny}")
        if self.bbox.width <= 0 or self.bbox.height <= 0:
            raise ValueError("grid bbox must have positive area")

    @property
    def n_cells(self) -> int:
        """Total number of cells."""
        return self.nx * self.ny

    @property
    def cell_width(self) -> float:
        """Cell width in degrees of longitude."""
        return self.bbox.width / self.nx

    @property
    def cell_height(self) -> float:
        """Cell height in degrees of latitude."""
        return self.bbox.height / self.ny

    def cell_of(self, lon: float, lat: float) -> tuple[int, int]:
        """Grid coordinates of the cell containing (clamping) a point."""
        ix = _clamped_index(lon - self.bbox.min_lon, self.cell_width, self.nx)
        iy = _clamped_index(lat - self.bbox.min_lat, self.cell_height, self.ny)
        return (ix, iy)

    def cell_id(self, lon: float, lat: float) -> int:
        """Flat integer id of the cell containing a point."""
        ix, iy = self.cell_of(lon, lat)
        return iy * self.nx + ix

    def cell_bbox(self, ix: int, iy: int) -> BBox:
        """Bounding box of cell ``(ix, iy)``."""
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise IndexError(f"cell ({ix},{iy}) outside {self.nx}x{self.ny} grid")
        return BBox(
            self.bbox.min_lon + ix * self.cell_width,
            self.bbox.min_lat + iy * self.cell_height,
            self.bbox.min_lon + (ix + 1) * self.cell_width,
            self.bbox.min_lat + (iy + 1) * self.cell_height,
        )

    def cells_intersecting(self, query: BBox) -> Iterator[tuple[int, int]]:
        """Yield (ix, iy) of every cell whose box intersects ``query``."""
        lo_x = _clamped_index(query.min_lon - self.bbox.min_lon, self.cell_width, self.nx)
        hi_x = _clamped_index(query.max_lon - self.bbox.min_lon, self.cell_width, self.nx)
        lo_y = _clamped_index(query.min_lat - self.bbox.min_lat, self.cell_height, self.ny)
        hi_y = _clamped_index(query.max_lat - self.bbox.min_lat, self.cell_height, self.ny)
        for iy in range(lo_y, hi_y + 1):
            for ix in range(lo_x, hi_x + 1):
                yield (ix, iy)

    def neighbors(self, ix: int, iy: int, radius: int = 1) -> Iterator[tuple[int, int]]:
        """Yield the cells within ``radius`` rings, including the cell itself."""
        for dy in range(-radius, radius + 1):
            for dx in range(-radius, radius + 1):
                jx, jy = ix + dx, iy + dy
                if 0 <= jx < self.nx and 0 <= jy < self.ny:
                    yield (jx, jy)


class GridIndex:
    """A point index over a :class:`GeoGrid` supporting radius queries.

    Items of any hashable type are inserted with a position; range and
    radius queries return candidate items with exact distance filtering
    applied for radius queries.
    """

    def __init__(self, grid: GeoGrid) -> None:
        self.grid = grid
        self._cells: dict[tuple[int, int], list[tuple[float, float, Hashable]]]
        self._cells = defaultdict(list)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, lon: float, lat: float, item: Hashable) -> None:
        """Insert an item at a position."""
        self._cells[self.grid.cell_of(lon, lat)].append((lon, lat, item))
        self._count += 1

    def insert_many(self, entries: Iterable[tuple[float, float, Hashable]]) -> None:
        """Bulk-insert ``(lon, lat, item)`` tuples."""
        for lon, lat, item in entries:
            self.insert(lon, lat, item)

    def query_bbox(self, query: BBox) -> list[Hashable]:
        """All items whose position lies inside the query box."""
        out: list[Hashable] = []
        for cell in self.grid.cells_intersecting(query):
            for lon, lat, item in self._cells.get(cell, ()):
                if query.contains(lon, lat):
                    out.append(item)
        return out

    def query_radius(self, lon: float, lat: float, radius_m: float) -> list[Hashable]:
        """All items within ``radius_m`` metres of a point (exact-filtered)."""
        # Convert the radius into a conservative ring count around the cell.
        cell_m = max(
            1.0,
            haversine_m(0.0, lat, self.grid.cell_width, lat),
            haversine_m(lon, lat, lon, min(90.0, lat + self.grid.cell_height)),
        )
        rings = int(radius_m / cell_m) + 1
        ix, iy = self.grid.cell_of(lon, lat)
        out: list[Hashable] = []
        for cell in self.grid.neighbors(ix, iy, radius=rings):
            for clon, clat, item in self._cells.get(cell, ()):
                if haversine_m(lon, lat, clon, clat) <= radius_m:
                    out.append(item)
        return out

    def cell_counts(self) -> dict[tuple[int, int], int]:
        """Number of items per non-empty cell (density surface input)."""
        return {cell: len(items) for cell, items in self._cells.items() if items}

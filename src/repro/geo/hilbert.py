"""Hilbert space-filling curve on a 2^order × 2^order grid.

Used by the RDF store's Hilbert partitioner: mapping 2D cells to 1D curve
positions yields partitions that are both spatially local and easy to
balance by splitting the curve into equal-count ranges.
"""

from __future__ import annotations


def hilbert_xy2d(order: int, x: int, y: int) -> int:
    """Map grid coordinates to the Hilbert curve index.

    Args:
        order: Curve order; the grid is ``2**order`` cells per side.
        x: Column in ``[0, 2**order)``.
        y: Row in ``[0, 2**order)``.

    Returns:
        Distance along the curve, in ``[0, 4**order)``.
    """
    n = 1 << order
    if not (0 <= x < n and 0 <= y < n):
        raise ValueError(f"({x},{y}) outside 2^{order} grid")
    rx = ry = 0
    d = 0
    s = n >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s >>= 1
    return d


def hilbert_d2xy(order: int, d: int) -> tuple[int, int]:
    """Inverse of :func:`hilbert_xy2d`: curve index to grid coordinates."""
    n = 1 << order
    if not (0 <= d < n * n):
        raise ValueError(f"distance {d} outside curve of order {order}")
    x = y = 0
    t = d
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return (x, y)


def _rotate(s: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    """Rotate/flip a quadrant appropriately (Hilbert curve helper)."""
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return (x, y)

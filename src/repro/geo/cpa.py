"""Closest point of approach (CPA) between two moving entities.

The collision-risk events the paper calls out ("prediction of potential
collision") are detected by thresholding the CPA distance and the time to
CPA (TCPA) computed from the entities' current kinematic state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.geodesy import enu_offset_m


@dataclass(frozen=True, slots=True)
class CPAResult:
    """Result of a CPA computation between two entities.

    Attributes:
        tcpa_s: Time (seconds from "now") at which the minimum separation
            occurs; 0 when the entities are already diverging.
        distance_m: Separation at TCPA, in metres (3D when both altitudes
            are known, horizontal otherwise).
        current_distance_m: Separation now, in metres.
        horizontal_m: Horizontal component of the separation at TCPA.
        vertical_m: |altitude difference| at TCPA, or ``None`` when either
            altitude is unknown. ATM separation standards threshold the
            two components independently (e.g. 5 NM / 1000 ft), so the
            collision detector needs them apart.
    """

    tcpa_s: float
    distance_m: float
    current_distance_m: float
    horizontal_m: float = 0.0
    vertical_m: float | None = None


def cpa_tcpa(
    lon1: float,
    lat1: float,
    speed1_mps: float,
    heading1_deg: float,
    lon2: float,
    lat2: float,
    speed2_mps: float,
    heading2_deg: float,
    alt1: float | None = None,
    alt2: float | None = None,
    vrate1_mps: float = 0.0,
    vrate2_mps: float = 0.0,
    horizon_s: float = 3600.0,
) -> CPAResult:
    """CPA/TCPA assuming straight-line constant-velocity motion.

    Positions are projected onto a local tangent plane centred between the
    two entities; for encounter geometry (separations of at most tens of
    kilometres) the projection error is negligible relative to the
    kilometre-scale thresholds used for alerts.

    Args:
        horizon_s: TCPA values beyond the horizon are clamped to it; an
            encounter an hour away is operationally irrelevant.
    """
    ref_lon = (lon1 + lon2) / 2.0
    ref_lat = (lat1 + lat2) / 2.0
    x1, y1 = enu_offset_m(ref_lon, ref_lat, lon1, lat1)
    x2, y2 = enu_offset_m(ref_lon, ref_lat, lon2, lat2)

    th1 = math.radians(heading1_deg)
    th2 = math.radians(heading2_deg)
    vx1, vy1 = speed1_mps * math.sin(th1), speed1_mps * math.cos(th1)
    vx2, vy2 = speed2_mps * math.sin(th2), speed2_mps * math.cos(th2)

    use_3d = alt1 is not None and alt2 is not None
    z1 = alt1 if use_3d else 0.0
    z2 = alt2 if use_3d else 0.0
    vz1 = vrate1_mps if use_3d else 0.0
    vz2 = vrate2_mps if use_3d else 0.0

    dx, dy, dz = x1 - x2, y1 - y2, (z1 or 0.0) - (z2 or 0.0)
    dvx, dvy, dvz = vx1 - vx2, vy1 - vy2, vz1 - vz2

    current = math.sqrt(dx * dx + dy * dy + dz * dz)
    dv2 = dvx * dvx + dvy * dvy + dvz * dvz
    if dv2 < 1e-12:
        # Same velocity vector: separation is constant.
        return CPAResult(
            tcpa_s=0.0,
            distance_m=current,
            current_distance_m=current,
            horizontal_m=math.hypot(dx, dy),
            vertical_m=abs(dz) if use_3d else None,
        )

    tcpa = -(dx * dvx + dy * dvy + dz * dvz) / dv2
    tcpa = min(max(tcpa, 0.0), horizon_s)
    cx = dx + dvx * tcpa
    cy = dy + dvy * tcpa
    cz = dz + dvz * tcpa
    dist = math.sqrt(cx * cx + cy * cy + cz * cz)
    return CPAResult(
        tcpa_s=tcpa,
        distance_m=dist,
        current_distance_m=current,
        horizontal_m=math.hypot(cx, cy),
        vertical_m=abs(cz) if use_3d else None,
    )

"""Adaptive quadtree over geographic points.

Where the uniform grid wastes resolution on empty ocean and under-splits
hotspots, the quadtree splits exactly where the data is: every leaf holds
at most ``capacity`` points (until ``max_depth``). Used as a point index
and as the basis of the load-adaptive spatial partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.geo.bbox import BBox


@dataclass
class _Node:
    bbox: BBox
    depth: int
    points: list[tuple[float, float, Any]]
    children: "list[_Node] | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadTree:
    """A point quadtree with bbox queries and leaf enumeration."""

    def __init__(self, bbox: BBox, capacity: int = 32, max_depth: int = 12) -> None:
        if capacity <= 0 or max_depth <= 0:
            raise ValueError("capacity and max_depth must be positive")
        self.capacity = capacity
        self.max_depth = max_depth
        self._root = _Node(bbox=bbox, depth=0, points=[])
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, lon: float, lat: float, item: Any = None) -> None:
        """Insert a point; positions outside the root box are clamped in."""
        lon = min(max(lon, self._root.bbox.min_lon), self._root.bbox.max_lon)
        lat = min(max(lat, self._root.bbox.min_lat), self._root.bbox.max_lat)
        self._insert(self._root, lon, lat, item)
        self._size += 1

    def _insert(self, node: _Node, lon: float, lat: float, item: Any) -> None:
        while not node.is_leaf:
            node = self._child_for(node, lon, lat)
        node.points.append((lon, lat, item))
        if len(node.points) > self.capacity and node.depth < self.max_depth:
            self._split(node)

    @staticmethod
    def _child_for(node: _Node, lon: float, lat: float) -> _Node:
        assert node.children is not None
        cx, cy = node.bbox.center
        index = (1 if lon >= cx else 0) | (2 if lat >= cy else 0)
        return node.children[index]

    def _split(self, node: _Node) -> None:
        sw, se, nw, ne = node.bbox.split4()
        node.children = [
            _Node(bbox=box, depth=node.depth + 1, points=[])
            for box in (sw, se, nw, ne)
        ]
        points, node.points = node.points, []
        for lon, lat, item in points:
            self._child_for(node, lon, lat).points.append((lon, lat, item))
        # A pathological all-equal-point split can leave one child over
        # capacity; it will split again on the next insert (bounded by
        # max_depth), which is acceptable.

    def query_bbox(self, query: BBox) -> list[Any]:
        """Items whose position lies inside the query box."""
        out: list[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.bbox.intersects(query):
                continue
            if node.is_leaf:
                out.extend(
                    item for lon, lat, item in node.points if query.contains(lon, lat)
                )
            else:
                stack.extend(node.children or ())
        return out

    def leaf_bbox(self, lon: float, lat: float) -> BBox:
        """The bounding box of the leaf containing a (clamped) point."""
        lon = min(max(lon, self._root.bbox.min_lon), self._root.bbox.max_lon)
        lat = min(max(lat, self._root.bbox.min_lat), self._root.bbox.max_lat)
        node = self._root
        while not node.is_leaf:
            node = self._child_for(node, lon, lat)
        return node.bbox

    def leaves(self) -> Iterator[tuple[BBox, int]]:
        """Yield ``(bbox, point_count)`` for every leaf."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield (node.bbox, len(node.points))
            else:
                stack.extend(node.children or ())

    @property
    def depth(self) -> int:
        """Maximum leaf depth reached."""
        best = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                best = max(best, node.depth)
            else:
                stack.extend(node.children or ())
        return best

"""Axis-aligned geographic bounding boxes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class BBox:
    """An axis-aligned lon/lat bounding box.

    Degenerate boxes (a point or a line) are allowed. Boxes never wrap the
    antimeridian; the synthetic worlds used in this reproduction stay well
    inside a hemisphere.
    """

    min_lon: float
    min_lat: float
    max_lon: float
    max_lat: float

    def __post_init__(self) -> None:
        if self.min_lon > self.max_lon or self.min_lat > self.max_lat:
            raise ValueError(f"inverted bbox: {self!r}")

    @classmethod
    def from_points(cls, points: Iterable[tuple[float, float]]) -> BBox:
        """Smallest box covering an iterable of ``(lon, lat)`` pairs."""
        it: Iterator[tuple[float, float]] = iter(points)
        try:
            lon, lat = next(it)
        except StopIteration:
            raise ValueError("cannot build a bbox from zero points") from None
        min_lon = max_lon = lon
        min_lat = max_lat = lat
        for lon, lat in it:
            min_lon = min(min_lon, lon)
            max_lon = max(max_lon, lon)
            min_lat = min(min_lat, lat)
            max_lat = max(max_lat, lat)
        return cls(min_lon, min_lat, max_lon, max_lat)

    @property
    def width(self) -> float:
        """Longitudinal extent in degrees."""
        return self.max_lon - self.min_lon

    @property
    def height(self) -> float:
        """Latitudinal extent in degrees."""
        return self.max_lat - self.min_lat

    @property
    def center(self) -> tuple[float, float]:
        """``(lon, lat)`` of the box centre."""
        return ((self.min_lon + self.max_lon) / 2.0, (self.min_lat + self.max_lat) / 2.0)

    @property
    def area(self) -> float:
        """Area in square degrees (for balance heuristics, not geodesy)."""
        return self.width * self.height

    def contains(self, lon: float, lat: float) -> bool:
        """Whether a point lies inside the box (borders inclusive)."""
        return self.min_lon <= lon <= self.max_lon and self.min_lat <= lat <= self.max_lat

    def intersects(self, other: BBox) -> bool:
        """Whether two boxes share at least one point."""
        return not (
            other.min_lon > self.max_lon
            or other.max_lon < self.min_lon
            or other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
        )

    def intersection(self, other: BBox) -> BBox | None:
        """The overlapping box, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return BBox(
            max(self.min_lon, other.min_lon),
            max(self.min_lat, other.min_lat),
            min(self.max_lon, other.max_lon),
            min(self.max_lat, other.max_lat),
        )

    def union(self, other: BBox) -> BBox:
        """Smallest box covering both boxes."""
        return BBox(
            min(self.min_lon, other.min_lon),
            min(self.min_lat, other.min_lat),
            max(self.max_lon, other.max_lon),
            max(self.max_lat, other.max_lat),
        )

    def expanded(self, margin_deg: float) -> BBox:
        """Box grown by ``margin_deg`` on every side (clamped to valid range)."""
        return BBox(
            max(-180.0, self.min_lon - margin_deg),
            max(-90.0, self.min_lat - margin_deg),
            min(180.0, self.max_lon + margin_deg),
            min(90.0, self.max_lat + margin_deg),
        )

    def split4(self) -> tuple[BBox, BBox, BBox, BBox]:
        """Split into four quadrants (SW, SE, NW, NE) — quadtree helper."""
        cx, cy = self.center
        return (
            BBox(self.min_lon, self.min_lat, cx, cy),
            BBox(cx, self.min_lat, self.max_lon, cy),
            BBox(self.min_lon, cy, cx, self.max_lat),
            BBox(cx, cy, self.max_lon, self.max_lat),
        )

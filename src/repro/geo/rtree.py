"""A small in-memory R-tree over geographic bounding boxes.

Quadratic-split insertion, bbox search. Used for indexing zone polygons and
trajectory segment MBRs where a uniform grid would waste memory on skewed
extents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.geo.bbox import BBox

_DEFAULT_MAX_ENTRIES = 8


@dataclass(slots=True)
class RTreeEntry:
    """A leaf payload: a bounding box and its associated item."""

    bbox: BBox
    item: Any


@dataclass(slots=True)
class _Node:
    leaf: bool
    entries: list[Any] = field(default_factory=list)  # RTreeEntry | _Node
    bbox: BBox | None = None

    def recompute_bbox(self) -> None:
        boxes = [e.bbox for e in self.entries if e.bbox is not None]
        if not boxes:
            self.bbox = None
            return
        box = boxes[0]
        for other in boxes[1:]:
            box = box.union(other)
        self.bbox = box


class RTree:
    """R-tree with quadratic split, supporting insert and box queries."""

    def __init__(self, max_entries: int = _DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self._max = max_entries
        self._min = max(2, max_entries // 2)
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, bbox: BBox, item: Any) -> None:
        """Insert an item with its bounding box."""
        entry = RTreeEntry(bbox=bbox, item=item)
        split = self._insert(self._root, entry)
        if split is not None:
            old_root = self._root
            self._root = _Node(leaf=False, entries=[old_root, split])
            self._root.recompute_bbox()
        self._size += 1

    def query(self, query: BBox) -> list[Any]:
        """Items whose bounding box intersects the query box."""
        out: list[Any] = []
        self._query(self._root, query, out)
        return out

    def all_items(self) -> Iterator[Any]:
        """Iterate all stored items."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for entry in node.entries:
                    yield entry.item
            else:
                stack.extend(node.entries)

    def _insert(self, node: _Node, entry: RTreeEntry) -> _Node | None:
        if node.leaf:
            node.entries.append(entry)
        else:
            child = self._choose_child(node, entry.bbox)
            split = self._insert(child, entry)
            if split is not None:
                node.entries.append(split)
        node.bbox = entry.bbox if node.bbox is None else node.bbox.union(entry.bbox)
        if len(node.entries) > self._max:
            return self._split(node)
        return None

    @staticmethod
    def _enlargement(box: BBox, other: BBox) -> float:
        union = box.union(other)
        return union.area - box.area

    def _choose_child(self, node: _Node, bbox: BBox) -> _Node:
        best = None
        best_key = None
        for child in node.entries:
            child_box = child.bbox
            if child_box is None:
                key = (0.0, 0.0)
            else:
                key = (self._enlargement(child_box, bbox), child_box.area)
            if best_key is None or key < best_key:
                best_key = key
                best = child
        assert best is not None
        return best

    def _split(self, node: _Node) -> _Node:
        """Quadratic split: move roughly half the entries into a new node."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rest = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        box_a = group_a[0].bbox
        box_b = group_b[0].bbox
        for entry in rest:
            # Force balance when one group must absorb all remaining entries.
            remaining = len(rest) - (len(group_a) + len(group_b) - 2)
            if len(group_a) + remaining <= self._min:
                group_a.append(entry)
                box_a = box_a.union(entry.bbox)
                continue
            if len(group_b) + remaining <= self._min:
                group_b.append(entry)
                box_b = box_b.union(entry.bbox)
                continue
            grow_a = self._enlargement(box_a, entry.bbox)
            grow_b = self._enlargement(box_b, entry.bbox)
            if grow_a <= grow_b:
                group_a.append(entry)
                box_a = box_a.union(entry.bbox)
            else:
                group_b.append(entry)
                box_b = box_b.union(entry.bbox)
        node.entries = group_a
        node.recompute_bbox()
        sibling = _Node(leaf=node.leaf, entries=group_b)
        sibling.recompute_bbox()
        return sibling

    @staticmethod
    def _pick_seeds(entries: list[Any]) -> tuple[int, int]:
        worst = -1.0
        pair = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                union = entries[i].bbox.union(entries[j].bbox)
                waste = union.area - entries[i].bbox.area - entries[j].bbox.area
                if waste > worst:
                    worst = waste
                    pair = (i, j)
        return pair

    def _query(self, node: _Node, query: BBox, out: list[Any]) -> None:
        if node.bbox is None or not node.bbox.intersects(query):
            return
        if node.leaf:
            for entry in node.entries:
                if entry.bbox.intersects(query):
                    out.append(entry.item)
        else:
            for child in node.entries:
                self._query(child, query, out)

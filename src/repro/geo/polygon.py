"""Simple polygons for geographic areas (zones, sectors, port regions)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.geo.bbox import BBox


def point_in_polygon(lon: float, lat: float, ring: Sequence[tuple[float, float]]) -> bool:
    """Ray-casting point-in-polygon test for a closed ring of (lon, lat).

    The ring does not need an explicit closing vertex. Points exactly on an
    edge may land on either side; the sources never place entities exactly
    on zone borders, and the CER thresholds include hysteresis.
    """
    inside = False
    n = len(ring)
    if n < 3:
        return False
    j = n - 1
    for i in range(n):
        xi, yi = ring[i]
        xj, yj = ring[j]
        if (yi > lat) != (yj > lat):
            x_cross = (xj - xi) * (lat - yi) / (yj - yi) + xi
            if lon < x_cross:
                inside = not inside
        j = i
    return inside


def point_in_polygon_batch(
    lons: np.ndarray, lats: np.ndarray, ring: Sequence[tuple[float, float]]
) -> np.ndarray:
    """Vectorised :func:`point_in_polygon` over coordinate columns.

    Bit-exact with the scalar test: per edge it evaluates the identical
    expression ``(xj - xi) * (lat - yi) / (yj - yi) + xi`` (pure IEEE
    arithmetic, so numpy and scalar Python produce the same float) and
    folds crossings with XOR. Horizontal edges (``yi == yj``) are skipped
    outright — for them the scalar crossing condition ``(yi > lat) !=
    (yj > lat)`` is False for every latitude, and skipping avoids the
    division by zero the scalar path never evaluates.
    """
    inside = np.zeros(lons.shape, dtype=bool)
    n = len(ring)
    if n < 3:
        return inside
    j = n - 1
    for i in range(n):
        xi, yi = ring[i]
        xj, yj = ring[j]
        if yi != yj:
            crosses = (yi > lats) != (yj > lats)
            x_cross = (xj - xi) * (lats - yi) / (yj - yi) + xi
            inside ^= crosses & (lons < x_cross)
        j = i
    return inside


@dataclass(frozen=True)
class Polygon:
    """A named simple polygon (no holes) over lon/lat coordinates.

    Used for zones of interest: protected maritime areas, traffic separation
    schemes, ATC sectors, airport terminal areas.
    """

    name: str
    ring: tuple[tuple[float, float], ...]
    _bbox: BBox = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.ring) < 3:
            raise ValueError(f"polygon {self.name!r} needs >= 3 vertices")
        object.__setattr__(self, "_bbox", BBox.from_points(self.ring))

    @classmethod
    def rectangle(cls, name: str, bbox: BBox) -> Polygon:
        """Axis-aligned rectangular zone from a bounding box."""
        ring = (
            (bbox.min_lon, bbox.min_lat),
            (bbox.max_lon, bbox.min_lat),
            (bbox.max_lon, bbox.max_lat),
            (bbox.min_lon, bbox.max_lat),
        )
        return cls(name=name, ring=ring)

    @property
    def bbox(self) -> BBox:
        """Cached bounding box of the ring."""
        return self._bbox

    def contains(self, lon: float, lat: float) -> bool:
        """Point-in-polygon with a bbox fast-reject."""
        if not self._bbox.contains(lon, lat):
            return False
        return point_in_polygon(lon, lat, self.ring)

    def contains_batch(self, lons: np.ndarray, lats: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` over coordinate columns.

        Decision-identical to calling :meth:`contains` per element: the
        bbox mask uses the same inclusive comparisons, and the ray cast is
        the bit-exact :func:`point_in_polygon_batch`.
        """
        b = self._bbox
        mask = (
            (lons >= b.min_lon)
            & (lons <= b.max_lon)
            & (lats >= b.min_lat)
            & (lats <= b.max_lat)
        )
        if not mask.any():
            return mask
        return mask & point_in_polygon_batch(lons, lats, self.ring)

    def centroid(self) -> tuple[float, float]:
        """Arithmetic-mean centroid of the vertices (adequate for labels)."""
        n = len(self.ring)
        lon = sum(p[0] for p in self.ring) / n
        lat = sum(p[1] for p in self.ring) / n
        return (lon, lat)

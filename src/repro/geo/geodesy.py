"""Great-circle geodesy on the WGS84 sphere approximation.

All distances are in metres, all angles in degrees unless stated otherwise.
A spherical Earth (mean radius) is accurate to ~0.5% which is far below the
sensor noise the surveillance sources carry, so the analytics are unaffected.
"""

from __future__ import annotations

import math

import numpy as np

EARTH_RADIUS_M = 6_371_008.8
"""Mean Earth radius in metres (IUGG)."""

_DEG2RAD = math.pi / 180.0
_RAD2DEG = 180.0 / math.pi


def haversine_m(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance between two WGS84 points, in metres."""
    phi1 = lat1 * _DEG2RAD
    phi2 = lat2 * _DEG2RAD
    dphi = (lat2 - lat1) * _DEG2RAD
    dlam = (lon2 - lon1) * _DEG2RAD
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def haversine_m_arrays(
    lon1: np.ndarray, lat1: np.ndarray, lon2: np.ndarray, lat2: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`haversine_m` over numpy arrays of coordinates."""
    phi1 = np.radians(lat1)
    phi2 = np.radians(lat2)
    dphi = np.radians(lat2 - lat1)
    dlam = np.radians(lon2 - lon1)
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.minimum(1.0, np.sqrt(a)))


def sphere_unit_vectors(
    lons: np.ndarray, lats: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unit 3-vectors of lon/lat columns on the unit sphere.

    Returns ``(x, y, z)`` with ``x = cos(lat)cos(lon)``,
    ``y = cos(lat)sin(lon)``, ``z = sin(lat)``. The chord length between
    two such vectors is ``2 sin(d / 2R)`` of their great-circle distance
    ``d`` — a monotonic proxy that lets batch kernels compare distances
    against a threshold without evaluating ``asin`` per pair.
    """
    phi = np.radians(lats)
    lam = np.radians(lons)
    cphi = np.cos(phi)
    return cphi * np.cos(lam), cphi * np.sin(lam), np.sin(phi)


def distance_3d_m(
    lon1: float,
    lat1: float,
    alt1: float | None,
    lon2: float,
    lat2: float,
    alt2: float | None,
) -> float:
    """Distance combining great-circle horizontal and vertical separation.

    When either altitude is ``None`` the result is purely horizontal.
    """
    horizontal = haversine_m(lon1, lat1, lon2, lat2)
    if alt1 is None or alt2 is None:
        return horizontal
    return math.hypot(horizontal, alt2 - alt1)


def initial_bearing_deg(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Initial great-circle bearing from point 1 to point 2, in [0, 360)."""
    phi1 = lat1 * _DEG2RAD
    phi2 = lat2 * _DEG2RAD
    dlam = (lon2 - lon1) * _DEG2RAD
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    theta = math.atan2(y, x) * _RAD2DEG
    return normalize_heading_deg(theta)


def destination_point(
    lon: float, lat: float, bearing_deg: float, distance_m: float
) -> tuple[float, float]:
    """Point reached by travelling ``distance_m`` along ``bearing_deg``.

    Returns:
        ``(lon, lat)`` in decimal degrees, longitude normalised to [-180, 180].
    """
    delta = distance_m / EARTH_RADIUS_M
    theta = bearing_deg * _DEG2RAD
    phi1 = lat * _DEG2RAD
    lam1 = lon * _DEG2RAD
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    sin_phi2 = max(-1.0, min(1.0, sin_phi2))
    phi2 = math.asin(sin_phi2)
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * sin_phi2
    lam2 = lam1 + math.atan2(y, x)
    lon2 = (lam2 * _RAD2DEG + 540.0) % 360.0 - 180.0
    return (lon2, phi2 * _RAD2DEG)


def cross_track_distance_m(
    lon: float,
    lat: float,
    seg_lon1: float,
    seg_lat1: float,
    seg_lon2: float,
    seg_lat2: float,
) -> float:
    """Distance from a point to the great-circle *segment* (1 → 2), in metres.

    Unlike the textbook cross-track formula this clamps to the segment: when
    the point's along-track projection falls before the start or after the
    end, the distance to the nearest endpoint is returned. That is the
    quantity trajectory simplification cares about.
    """
    d13 = haversine_m(seg_lon1, seg_lat1, lon, lat)
    if d13 == 0.0:
        return 0.0
    d12 = haversine_m(seg_lon1, seg_lat1, seg_lon2, seg_lat2)
    if d12 == 0.0:
        return d13
    theta13 = initial_bearing_deg(seg_lon1, seg_lat1, lon, lat) * _DEG2RAD
    theta12 = initial_bearing_deg(seg_lon1, seg_lat1, seg_lon2, seg_lat2) * _DEG2RAD
    delta13 = d13 / EARTH_RADIUS_M
    sin_xt = math.sin(delta13) * math.sin(theta13 - theta12)
    sin_xt = max(-1.0, min(1.0, sin_xt))
    xt = math.asin(sin_xt) * EARTH_RADIUS_M
    # Along-track distance from segment start to the projection of the point.
    cos_delta13 = math.cos(delta13)
    cos_xt = math.cos(xt / EARTH_RADIUS_M)
    if cos_xt == 0.0:
        return abs(xt)
    ratio = max(-1.0, min(1.0, cos_delta13 / cos_xt))
    at = math.acos(ratio) * EARTH_RADIUS_M
    if math.cos(theta13 - theta12) < 0.0:
        at = -at
    if at < 0.0:
        return d13
    if at > d12:
        return haversine_m(seg_lon2, seg_lat2, lon, lat)
    return abs(xt)


def enu_offset_m(
    ref_lon: float, ref_lat: float, lon: float, lat: float
) -> tuple[float, float]:
    """Local east/north offsets (m) of a point relative to a reference.

    An equirectangular local-tangent-plane approximation, valid for the
    distances over which it is used (kinematics over seconds to minutes).
    """
    east = (lon - ref_lon) * _DEG2RAD * EARTH_RADIUS_M * math.cos(ref_lat * _DEG2RAD)
    north = (lat - ref_lat) * _DEG2RAD * EARTH_RADIUS_M
    return (east, north)


def normalize_heading_deg(heading: float) -> float:
    """Normalise any angle to [0, 360).

    Guards the floating-point edge where ``x % 360.0`` returns exactly
    360.0 for tiny negative ``x``.
    """
    wrapped = heading % 360.0
    return 0.0 if wrapped >= 360.0 else wrapped


def heading_difference_deg(h1: float, h2: float) -> float:
    """Smallest absolute angular difference between two headings, in [0, 180]."""
    diff = abs(h1 - h2) % 360.0
    return 360.0 - diff if diff > 180.0 else diff


def knots_to_mps(knots: float) -> float:
    """Convert speed in knots to metres per second."""
    return knots * 0.514444


def mps_to_knots(mps: float) -> float:
    """Convert speed in metres per second to knots."""
    return mps / 0.514444

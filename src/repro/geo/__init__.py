"""Geospatial substrate: geodesy, geometry, spatial indexes, space-filling curves.

This package has no dependencies on the rest of the system so every other
layer (model, in-situ, linkage, store, analytics) can build on it.
"""

from repro.geo.geodesy import (
    EARTH_RADIUS_M,
    haversine_m,
    haversine_m_arrays,
    initial_bearing_deg,
    destination_point,
    cross_track_distance_m,
    distance_3d_m,
    enu_offset_m,
    normalize_heading_deg,
    heading_difference_deg,
    knots_to_mps,
    mps_to_knots,
)
from repro.geo.bbox import BBox
from repro.geo.polygon import Polygon, point_in_polygon
from repro.geo.grid import GeoGrid, GridIndex
from repro.geo.zone_index import ZoneIndex, PREFILTER_MIN_ZONES
from repro.geo.rtree import RTree, RTreeEntry
from repro.geo.quadtree import QuadTree
from repro.geo.hilbert import hilbert_d2xy, hilbert_xy2d
from repro.geo.cpa import cpa_tcpa

__all__ = [
    "EARTH_RADIUS_M",
    "haversine_m",
    "haversine_m_arrays",
    "initial_bearing_deg",
    "destination_point",
    "cross_track_distance_m",
    "distance_3d_m",
    "enu_offset_m",
    "normalize_heading_deg",
    "heading_difference_deg",
    "knots_to_mps",
    "mps_to_knots",
    "BBox",
    "Polygon",
    "point_in_polygon",
    "GeoGrid",
    "GridIndex",
    "ZoneIndex",
    "PREFILTER_MIN_ZONES",
    "RTree",
    "RTreeEntry",
    "QuadTree",
    "hilbert_d2xy",
    "hilbert_xy2d",
    "cpa_tcpa",
]

"""Merging per-shard results into one run report.

Each worker returns its own :class:`~repro.core.pipeline.PipelineResult`
and :class:`~repro.obs.MetricsRegistry`. The :class:`ResultMerger` folds
them into a :class:`RuntimeResult`: counts sum, event streams concatenate
in shard order, and registries merge twice through the existing
prefix-merge API — once unprefixed into the aggregate namespace (so
``pipeline.clean`` totals are comparable to a single-process run) and
once under ``worker<i>.`` (so per-shard instruments stay inspectable).

:meth:`RuntimeResult.deterministic_bytes` is the crash-restart oracle:
a canonical serialization of everything a run's *content* determines
(counts, event streams, dead letters — never wall-clock or latency
values). A run that lost a worker mid-stream and restarted it from a
checkpoint must produce bytes identical to an uninterrupted run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import PipelineResult
from repro.core.results import canonical_bytes, digest_of
from repro.model.events import ComplexEvent, SimpleEvent
from repro.obs.metrics import MetricsRegistry

__all__ = ["ShardOutcome", "RuntimeResult", "ResultMerger"]


@dataclass
class ShardOutcome:
    """One shard's complete story: result, registry, and runtime accounting."""

    shard_id: int
    result: PipelineResult
    registry: MetricsRegistry | None = None
    #: Records the router assigned to this shard (pre-admission).
    records_routed: int = 0
    #: Crash-restarts this shard needed to finish.
    restarts: int = 0
    #: Records shed at admission (0 under the lossless block policy).
    shed: int = 0
    #: The admission controller's final admit rate.
    final_admit_rate: float = 1.0


@dataclass
class RuntimeResult:
    """The merged report of one multi-process run."""

    n_workers: int
    shards: list[ShardOutcome] = field(default_factory=list)
    wall_time_s: float = 0.0
    #: Aggregate + per-worker registry snapshot (the common obs schema).
    metrics: dict = field(default_factory=dict)

    # -- merged counts ------------------------------------------------------

    def _sum(self, attr: str) -> int:
        return sum(getattr(s.result, attr) for s in self.shards)

    @property
    def reports_in(self) -> int:
        return self._sum("reports_in")

    @property
    def reports_clean(self) -> int:
        return self._sum("reports_clean")

    @property
    def reports_kept(self) -> int:
        return self._sum("reports_kept")

    @property
    def triples_stored(self) -> int:
        return self._sum("triples_stored")

    @property
    def simple_events(self) -> list[SimpleEvent]:
        """All shards' simple events, shard-major (deterministic order)."""
        return [e for s in self.shards for e in s.result.simple_events]

    @property
    def complex_events(self) -> list[ComplexEvent]:
        """All shards' complex events, shard-major (deterministic order)."""
        return [e for s in self.shards for e in s.result.complex_events]

    @property
    def dead_letter_count(self) -> int:
        return sum(s.result.dead_letter_count for s in self.shards)

    @property
    def restarts_total(self) -> int:
        return sum(s.restarts for s in self.shards)

    @property
    def shed_total(self) -> int:
        return sum(s.shed for s in self.shards)

    @property
    def workers_spawned(self) -> int:
        """Shards that actually got a process (elastic: empty shards don't)."""
        return len(self.shards)

    @property
    def throughput_rps(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.reports_in / self.wall_time_s

    def summary(self) -> dict[str, float]:
        """Flat numeric summary (the common report shape)."""
        return {
            "n_workers": float(self.n_workers),
            "workers_spawned": float(self.workers_spawned),
            "reports_in": float(self.reports_in),
            "reports_clean": float(self.reports_clean),
            "reports_kept": float(self.reports_kept),
            "triples_stored": float(self.triples_stored),
            "simple_events": float(len(self.simple_events)),
            "complex_events": float(len(self.complex_events)),
            "dead_letters": float(self.dead_letter_count),
            "restarts": float(self.restarts_total),
            "shed": float(self.shed_total),
            "wall_time_s": self.wall_time_s,
            "throughput_rps": self.throughput_rps,
        }

    def as_dict(self) -> dict:
        """``{"kind", "summary", "metrics", "shards"}`` — the shared schema."""
        return {
            "kind": "runtime",
            "summary": self.summary(),
            "metrics": self.metrics,
            "shards": [
                {
                    "shard_id": s.shard_id,
                    "records_routed": s.records_routed,
                    "restarts": s.restarts,
                    "shed": s.shed,
                    "final_admit_rate": s.final_admit_rate,
                    "summary": s.result.summary(),
                }
                for s in self.shards
            ],
        }

    # -- crash-restart oracle ----------------------------------------------

    def deterministic_payload(self) -> dict:
        """Everything the run's content determines, nothing timing does.

        Wall-clock, latency percentiles and throughput are excluded by
        construction; per-shard counts, the full event streams and the
        dead-letter ledger are included. Two runs over the same admitted
        stream — interrupted or not — must produce equal payloads.
        """
        return {
            "n_workers": self.n_workers,
            "shards": [
                {"shard_id": s.shard_id, **s.result.deterministic_payload()}
                for s in self.shards
            ],
        }

    def deterministic_bytes(self) -> bytes:
        """Canonical JSON encoding of :meth:`deterministic_payload`."""
        return canonical_bytes(self.deterministic_payload())

    def deterministic_digest(self) -> str:
        """SHA-256 of :meth:`deterministic_bytes` (the differential oracle)."""
        return digest_of(self.deterministic_payload())


class ResultMerger:
    """Folds shard outcomes into one :class:`RuntimeResult`.

    Args:
        metrics: The registry the merge lands on — normally the
            supervisor's, which already carries the ``runtime.*``
            counters (restarts, shed, admitted). Merged snapshot ends up
            in :attr:`RuntimeResult.metrics`.
        worker_prefix: Namespace for per-shard instruments
            (``worker<i>.pipeline.clean`` etc.).
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        worker_prefix: str = "worker",
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.worker_prefix = worker_prefix

    def merge(
        self,
        outcomes: list[ShardOutcome],
        n_workers: int,
        wall_time_s: float,
    ) -> RuntimeResult:
        """Merge shard outcomes (any order) into the canonical run report."""
        shards = sorted(outcomes, key=lambda o: o.shard_id)
        for outcome in shards:
            if outcome.registry is None:
                continue
            # Aggregate namespace: counters/histograms comparable 1:1
            # with a single-process run of the same stream...
            self.metrics.merge(outcome.registry)
            # ...and the per-worker namespace via the same prefix-merge API.
            self.metrics.merge(
                outcome.registry, prefix=f"{self.worker_prefix}{outcome.shard_id}."
            )
        result = RuntimeResult(
            n_workers=n_workers,
            shards=shards,
            wall_time_s=wall_time_s,
        )
        if self.metrics.enabled:
            self.metrics.gauge("runtime.throughput_rps").set(result.throughput_rps)
            result.metrics = self.metrics.as_dict()
        return result

"""Stable key-based shard routing.

The runtime scales the pipeline out the way MillWheel/Flink-lineage
systems do: records are routed by a key (the entity id) so all of one
key's records land on the same shard, where per-key operator state
(dedup, synopses tracks, per-entity detectors) lives unsplit.

Routing must be a pure function of the key — the parent process, every
worker, and every *restarted* worker have to agree on the assignment, and
two runs of the same stream must shard identically regardless of
``PYTHONHASHSEED``. :class:`ShardRouter` therefore routes with
:func:`repro.hashing.stable_hash` (CRC-32), never builtin
``hash()``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

from repro.hashing import stable_shard
from repro.model.reports import PositionReport

T = TypeVar("T")

__all__ = ["ShardRouter", "entity_key"]


def entity_key(report: PositionReport) -> str:
    """The default routing key: the report's entity id."""
    return report.entity_id


class ShardRouter:
    """Routes values onto ``n_shards`` buckets by a stable key hash.

    Args:
        n_shards: Number of shards (worker slots).
        key_fn: Extracts the routing key from a value; defaults to
            :func:`entity_key` for position reports.
    """

    def __init__(
        self,
        n_shards: int,
        key_fn: Callable[[T], object] = entity_key,
    ) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self.n_shards = n_shards
        self.key_fn = key_fn

    def shard_of_key(self, key: object) -> int:
        """The shard a key routes to."""
        return stable_shard(key, self.n_shards)

    def route(self, value: T) -> int:
        """The shard a value routes to (via its extracted key)."""
        return self.shard_of_key(self.key_fn(value))

    def partition(self, values: Iterable[T]) -> list[list[T]]:
        """Split a stream into per-shard substreams, order-preserving.

        Every value lands in exactly one substream; concatenating the
        substreams re-yields every input value (the router is total), and
        within a shard the original arrival order is preserved.
        """
        shards: list[list[T]] = [[] for __ in range(self.n_shards)]
        for value in values:
            shards[self.route(value)].append(value)
        return shards

    def reshard(self, n_shards: int) -> "ShardRouter":
        """A router over a different shard count, same key function.

        Elasticity hook: scaling a job to a new worker count builds the
        resharded router; keys redistribute but the partition stays total
        and deterministic.
        """
        return ShardRouter(n_shards, key_fn=self.key_fn)

    def skew(self, values: Sequence[T]) -> float:
        """Routing skew over a sample: max/mean records per shard."""
        counts = [len(part) for part in self.partition(values)]
        mean = sum(counts) / len(counts) if counts else 0.0
        return max(counts) / mean if mean > 0 else 1.0

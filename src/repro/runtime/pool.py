"""Worker process lifecycle: spawn, watch, restart.

:class:`WorkerPool` owns the multiprocessing context and the live
:class:`WorkerHandle` per shard. Workers are created *lazily* — a shard
that routes no records never costs a process (the pool is elastic in the
shard dimension), and a dead worker is replaced by a fresh incarnation
with new queues, resuming from its shard's latest checkpoint.

The pool is spawn-safe: it works under the ``spawn`` start method (fresh
interpreter per worker, everything shipped by pickle) as well as the
platform default.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.process
from dataclasses import replace
from typing import TYPE_CHECKING, Any

from repro.runtime.worker import WorkerSpec, worker_main

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.process import BaseProcess
    from multiprocessing.queues import Queue as MPQueue

__all__ = ["WorkerHandle", "WorkerPool"]


class WorkerHandle:
    """One live worker incarnation: its process and its private queues."""

    def __init__(
        self,
        spec: WorkerSpec,
        process: "BaseProcess",
        in_queue: "MPQueue[Any]",
        out_queue: "MPQueue[Any]",
        incarnation: int,
    ) -> None:
        self.spec = spec
        self.process = process
        self.in_queue = in_queue
        self.out_queue = out_queue
        #: 0 for the first spawn, +1 per restart.
        self.incarnation = incarnation

    @property
    def shard_id(self) -> int:
        return self.spec.shard_id

    def is_alive(self) -> bool:
        """Liveness health-check (the supervisor polls this)."""
        return self.process.is_alive()

    @property
    def exitcode(self) -> int | None:
        return self.process.exitcode

    def terminate(self) -> None:
        """Kill the process and release its queue resources."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        for q in (self.in_queue, self.out_queue):
            q.cancel_join_thread()
            q.close()


class WorkerPool:
    """Creates and replaces shard workers over one multiprocessing context.

    Args:
        queue_capacity: Bound of each shard's input queue, in batches —
            this is the backpressure buffer: a full queue blocks the
            feeder, it never grows.
        start_method: ``"spawn"``, ``"fork"``, ``"forkserver"`` or
            ``None`` for the platform default. All worker code is
            spawn-safe.
    """

    def __init__(self, queue_capacity: int = 8, start_method: str | None = None) -> None:
        if queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        self.queue_capacity = queue_capacity
        self._ctx = multiprocessing.get_context(start_method)
        #: Live handle per shard id (replaced on restart) — exposed so
        #: chaos tests can find and hard-kill a running worker.
        self.handles: dict[int, WorkerHandle] = {}

    def spawn(self, spec: WorkerSpec) -> WorkerHandle:
        """Start one worker for ``spec`` with fresh bounded queues."""
        previous = self.handles.get(spec.shard_id)
        incarnation = previous.incarnation + 1 if previous is not None else 0
        return self._start(spec, incarnation)

    def restart(self, dead: WorkerHandle) -> WorkerHandle:
        """Replace a dead worker with a resuming incarnation.

        The replacement gets *fresh* queues (batches stranded in the dead
        worker's queue are replayed by the feeder from the checkpoint
        offset instead — never delivered twice), resumes from the shard's
        latest checkpoint, and has any one-shot chaos crash cleared.
        """
        dead.terminate()
        spec = replace(dead.spec, resume=True, crash_after_records=None)
        return self._start(spec, dead.incarnation + 1)

    def _start(self, spec: WorkerSpec, incarnation: int) -> WorkerHandle:
        in_queue = self._ctx.Queue(maxsize=self.queue_capacity)
        out_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=worker_main,
            args=(spec, in_queue, out_queue),
            name=f"repro-shard-{spec.shard_id}-gen{incarnation}",
            daemon=True,
        )
        process.start()
        handle = WorkerHandle(spec, process, in_queue, out_queue, incarnation)
        self.handles[spec.shard_id] = handle
        return handle

    def shutdown(self) -> None:
        """Terminate every live worker (normal runs end with none alive)."""
        for handle in self.handles.values():
            handle.terminate()
        self.handles.clear()

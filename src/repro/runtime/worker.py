"""The shard worker: one process, one pipeline, one key range.

A worker is spawned with a picklable :class:`WorkerSpec`, builds its own
:class:`~repro.core.pipeline.MobilityPipeline` from the shared
:class:`~repro.core.pipeline.PipelineSpec`, and consumes record batches
from a bounded input queue until the end-of-stream sentinel. Every
``checkpoint_interval`` records it barrier-checkpoints the whole pipeline
into its shard's :class:`~repro.streams.checkpoint.FileCheckpointStore`,
so a crash loses at most one interval of work: the supervisor respawns
the shard with ``resume=True``, the fresh incarnation restores the latest
snapshot, reports the restored offset back (the ``ready`` message), and
the feeder replays exactly the unprocessed suffix — offset-replay dedup,
same contract as :meth:`MobilityPipeline.run` with
``CheckpointOptions(resume=True)``.

Everything here is spawn-safe: the entry point is a module-level
function, the spec is immutable data, and no state is inherited from the
parent beyond the queues.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.core.pipeline import CheckpointOptions, PipelineSpec
from repro.core.recordbatch import recordbatches
from repro.model.reports import PositionReport
from repro.streams.chaos import CrashInjector, InjectedCrash
from repro.streams.checkpoint import FileCheckpointStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.queues import Queue as MPQueue

__all__ = ["WorkerSpec", "worker_main", "EOS", "CHAOS_EXIT_CODE"]

#: End-of-stream sentinel the feeder enqueues after the last batch.
EOS = None

#: Exit code of a worker killed by a chaos-injected crash (expected
#: death — the supervisor restarts it without logging a traceback).
CHAOS_EXIT_CODE = 70


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one shard worker needs, shipped picklable at spawn.

    Attributes:
        shard_id: This worker's shard index.
        pipeline: The shared pipeline recipe (identical across shards).
        checkpoint_dir: This shard's private checkpoint directory.
        checkpoint_interval: Records between barrier checkpoints.
        checkpoint_retain: Checkpoints kept per shard.
        resume: Restore the latest checkpoint before consuming (set on
            restarted incarnations, or on every incarnation when a run
            resumes a previous run's checkpoint directory).
        crash_after_records: Chaos hook — die with an injected crash
            after this many records of this incarnation (cleared on
            restart: the fault fires once).
        service_time_s: Per-record downstream service time (remote store
            / network round trip), executed as a real blocking wait in
            the worker. ``0.0`` disables it; benchmarks use it to model
            the distributed deployment's I/O-bound regime and tests use
            it to provoke backpressure.
        batch_execute: Feed each dequeued batch through the pipeline's
            stage-sliced :meth:`~repro.core.pipeline.MobilityPipeline.process_batch`
            hot path (the default) instead of record-at-a-time. Results
            are content-identical either way (the process_batch
            equivalence contract); checkpoints land on batch boundaries.
    """

    shard_id: int
    pipeline: PipelineSpec
    checkpoint_dir: str
    checkpoint_interval: int = 500
    checkpoint_retain: int = 3
    resume: bool = False
    crash_after_records: int | None = None
    service_time_s: float = 0.0
    batch_execute: bool = True

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError("shard_id must be >= 0")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")


def _drain(in_queue: "MPQueue[Any]", service_time_s: float) -> Iterator[PositionReport]:
    """Yield records from batched queue items until :data:`EOS`.

    Polls with a timeout so a worker orphaned by a dead parent exits
    instead of blocking forever.
    """
    parent = multiprocessing.parent_process()
    while True:
        try:
            item = in_queue.get(timeout=1.0)
        except queue_mod.Empty:
            if parent is not None and not parent.is_alive():
                raise SystemExit(1) from None
            continue
        if item is EOS:
            return
        for report in item:
            if service_time_s > 0.0:
                time.sleep(service_time_s)
            yield report


def _drain_batches(in_queue: "MPQueue[Any]", service_time_s: float) -> Iterator[list[PositionReport]]:
    """Yield whole queue batches until :data:`EOS` (micro-batch dispatch).

    The modeled downstream service time is paid once per batch
    (``service_time_s × len(batch)``) — the same total wait as the
    per-record path, without a syscall per record.
    """
    parent = multiprocessing.parent_process()
    while True:
        try:
            item = in_queue.get(timeout=1.0)
        except queue_mod.Empty:
            if parent is not None and not parent.is_alive():
                raise SystemExit(1) from None
            continue
        if item is EOS:
            return
        if service_time_s > 0.0:
            time.sleep(service_time_s * len(item))
        yield list(item)


class _BatchCrashInjector:
    """Record-granular :class:`CrashInjector` semantics over batches.

    Yields exactly ``crash_after`` *records* (slicing the batch the limit
    falls inside), then raises :class:`InjectedCrash` when the next batch
    is requested — so a worker crashing "after N records" dies at the
    same record offset whether it executes per record or per batch. Like
    :class:`CrashInjector`, no crash fires when the stream ends exactly
    at the limit.
    """

    def __init__(self, batches: Iterator[list[PositionReport]], crash_after: int) -> None:
        if crash_after < 0:
            raise ValueError("crash_after must be >= 0")
        self._batches = batches
        self.crash_after = crash_after
        self.delivered = 0

    def __iter__(self) -> Iterator[list[PositionReport]]:
        for batch in self._batches:
            if self.delivered >= self.crash_after:
                raise InjectedCrash(
                    f"injected crash after {self.delivered} records"
                )
            remaining = self.crash_after - self.delivered
            if len(batch) > remaining:
                self.delivered += remaining
                yield batch[:remaining]
                raise InjectedCrash(
                    f"injected crash after {self.delivered} records"
                )
            self.delivered += len(batch)
            yield batch


def worker_main(
    spec: WorkerSpec, in_queue: "MPQueue[Any]", out_queue: "MPQueue[Any]"
) -> None:
    """Process entry point: build, maybe restore, consume, report.

    Protocol on ``out_queue``:

    - ``("ready", shard_id, start_offset)`` once the pipeline is built
      (and restored, when resuming) — the feeder starts replay there;
    - ``("result", shard_id, PipelineResult, MetricsRegistry)`` after the
      end-of-stream sentinel has been fully processed and finalized.

    A chaos-injected crash exits with :data:`CHAOS_EXIT_CODE`; any other
    exception propagates (non-zero exit), and the supervisor treats both
    as a dead shard to restart from its latest checkpoint.
    """
    store = FileCheckpointStore(spec.checkpoint_dir, retain=spec.checkpoint_retain)
    pipeline = spec.pipeline.build()
    start_offset = 0
    if spec.resume:
        checkpoint = store.latest()
        if checkpoint is not None:
            pipeline.restore(checkpoint.states)
            start_offset = checkpoint.source_offset
    out_queue.put(("ready", spec.shard_id, start_offset))

    try:
        if spec.batch_execute:
            batches = _drain_batches(in_queue, spec.service_time_s)
            if spec.crash_after_records is not None:
                batches = iter(
                    _BatchCrashInjector(batches, spec.crash_after_records)
                )
            result = pipeline.run(
                recordbatches(batches, start_offset=start_offset),
                checkpoints=CheckpointOptions(
                    store=store,
                    interval=spec.checkpoint_interval,
                    start_offset=start_offset,
                ),
            )
        else:
            records: Iterator[PositionReport] = _drain(in_queue, spec.service_time_s)
            if spec.crash_after_records is not None:
                records = iter(CrashInjector(records, spec.crash_after_records))
            result = pipeline.run(
                records,
                checkpoints=CheckpointOptions(
                    store=store,
                    interval=spec.checkpoint_interval,
                    start_offset=start_offset,
                ),
            )
    except InjectedCrash:
        raise SystemExit(CHAOS_EXIT_CODE) from None
    out_queue.put(("result", spec.shard_id, result, pipeline.metrics))

"""The supervisor: shard feeders, health checks, crash-restart.

:class:`Supervisor.run` executes one stream across real worker
processes:

1. the :class:`~repro.runtime.sharding.ShardRouter` splits the stream
   into per-entity-key substreams (stable hash — parent and every worker
   incarnation agree on the assignment);
2. one feeder thread per *non-empty* shard (elastic: empty shards never
   spawn a process) pushes record batches into the worker's bounded
   queue — a full queue blocks the feeder (backpressure) or, under the
   ``"adaptive"`` shed policy, drives the E9c-style
   :class:`~repro.runtime.backpressure.AdmissionController` to shed at
   admission;
3. the feeder doubles as the shard's health-checker: every blocked put
   and every result wait polls worker liveness, a dead worker (chaos
   crash, hard kill, any non-zero exit) is restarted by the
   :class:`~repro.runtime.pool.WorkerPool` from its latest checkpoint,
   and the feeder replays the admitted substream from the restored
   offset — so the merged output is byte-identical to an uninterrupted
   run (see :meth:`repro.runtime.merge.RuntimeResult.deterministic_bytes`);
4. the :class:`~repro.runtime.merge.ResultMerger` folds the per-worker
   results and registries into one :class:`RuntimeResult`.

Supervisor-side accounting lands on its registry: per-shard
``runtime.shard<i>.{routed,admitted,shed,restarts}`` counters and the
``runtime.shard<i>.admit_rate`` gauge.
"""

from __future__ import annotations

import queue as queue_mod
import shutil
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.pipeline import PipelineResult, PipelineSpec
from repro.model.reports import PositionReport
from repro.obs.clock import monotonic
from repro.obs.metrics import MetricsRegistry
from repro.runtime.backpressure import AdmissionConfig, AdmissionController
from repro.runtime.merge import ResultMerger, RuntimeResult, ShardOutcome
from repro.runtime.pool import WorkerHandle, WorkerPool
from repro.runtime.sharding import ShardRouter
from repro.runtime.worker import EOS, WorkerSpec

__all__ = ["RuntimeConfig", "Supervisor", "ShardFailedError"]


class ShardFailedError(RuntimeError):
    """A shard exhausted its restart budget (or never came up)."""


class _WorkerDied(Exception):
    """Internal: the current incarnation is gone; restart from checkpoint."""


@dataclass(frozen=True)
class RuntimeConfig:
    """Every knob of the multi-process runtime.

    Attributes:
        n_workers: Shard count (= maximum worker processes; empty shards
            spawn none).
        batch_size: Records per queue item (amortizes IPC per record).
        queue_capacity: Bound of each shard's input queue, in batches.
        checkpoint_interval: Records between worker barrier checkpoints.
        checkpoint_dir: Root directory for per-shard checkpoint stores;
            ``None`` uses a fresh temporary directory per run. Pass a
            stable path plus ``resume=True`` to continue a previous run
            that crashed outright.
        checkpoint_retain: Checkpoints retained per shard.
        resume: Restore first incarnations from existing checkpoints
            (restarted incarnations always do).
        start_method: Multiprocessing start method (``None`` = platform
            default; all runtime code is spawn-safe).
        shed_policy: ``"block"`` (lossless backpressure, the default) or
            ``"adaptive"`` (admission-control load shedding driven by
            queue pressure — the E9c controller at the ingress).
        admission: Controller settings for the adaptive policy.
        put_timeout_s: How long one queue put waits before counting as a
            pressure event and re-checking worker liveness.
        ready_timeout_s: Budget for a spawned worker to report ready.
        max_restarts_per_shard: Crash-restart budget per shard.
        service_time_s: Per-record downstream service wait executed in
            workers (see :attr:`repro.runtime.worker.WorkerSpec.service_time_s`).
        crash_after: Chaos hook — ``{shard_id: n}`` makes that shard's
            first incarnation die after ``n`` records
            (:class:`repro.streams.chaos.CrashInjector` inside the
            worker).
        batch_execute: Workers process each queue batch through the
            pipeline's stage-sliced micro-batch hot path (default) rather
            than record at a time; run content is identical either way.
    """

    n_workers: int = 2
    batch_size: int = 256
    queue_capacity: int = 8
    checkpoint_interval: int = 500
    checkpoint_dir: str | None = None
    checkpoint_retain: int = 3
    resume: bool = False
    start_method: str | None = None
    shed_policy: str = "block"
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    put_timeout_s: float = 0.05
    ready_timeout_s: float = 60.0
    max_restarts_per_shard: int = 3
    service_time_s: float = 0.0
    crash_after: Mapping[int, int] | None = None
    batch_execute: bool = True

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.shed_policy not in ("block", "adaptive"):
            raise ValueError(f"unknown shed_policy {self.shed_policy!r}")
        if self.max_restarts_per_shard < 0:
            raise ValueError("max_restarts_per_shard must be >= 0")


class _ShardRunner(threading.Thread):
    """Feeds one shard's substream and shepherds its worker incarnations."""

    def __init__(
        self,
        pool: WorkerPool,
        base_spec: WorkerSpec,
        records: list[PositionReport],
        config: RuntimeConfig,
        metrics: MetricsRegistry,
    ) -> None:
        super().__init__(name=f"shard-runner-{base_spec.shard_id}", daemon=True)
        self._pool = pool
        self._base_spec = base_spec
        self._records = records
        self._config = config
        self._metrics = metrics
        self._mname = f"runtime.shard{base_spec.shard_id}"
        #: Records actually enqueued, offset-addressable — the shard's
        #: replay log. A restarted worker's suffix is re-fed from here.
        self._admitted: list[PositionReport] = []
        self._raw_pos = 0
        self._controller = (
            AdmissionController(config.admission)
            if config.shed_policy == "adaptive"
            else None
        )
        self.outcome: ShardOutcome | None = None
        self.error: Exception | None = None
        self.restarts = 0

    # -- thread body --------------------------------------------------------

    def run(self) -> None:
        try:
            self.outcome = self._run_shard()
        except Exception as exc:  # surfaced by the supervisor after join
            self.error = exc

    def _run_shard(self) -> ShardOutcome:
        self._metrics.counter(f"{self._mname}.routed").inc(len(self._records))
        handle = self._pool.spawn(self._base_spec)
        while True:
            try:
                result, registry = self._run_incarnation(handle)
                break
            except _WorkerDied:
                self.restarts += 1
                self._metrics.counter(f"{self._mname}.restarts").inc()
                if self.restarts > self._config.max_restarts_per_shard:
                    handle.terminate()
                    raise ShardFailedError(
                        f"shard {self._base_spec.shard_id} died "
                        f"{self.restarts} times (exit {handle.exitcode}); "
                        "restart budget exhausted"
                    ) from None
                handle = self._pool.restart(handle)
        controller = self._controller
        if controller is not None:
            self._metrics.counter(f"{self._mname}.admitted").inc(controller.admitted)
            self._metrics.counter(f"{self._mname}.shed").inc(controller.shed)
            self._metrics.gauge(f"{self._mname}.admit_rate").set(controller.admit_rate)
        return ShardOutcome(
            shard_id=self._base_spec.shard_id,
            result=result,
            registry=registry,
            records_routed=len(self._records),
            restarts=self.restarts,
            shed=controller.shed if controller is not None else 0,
            final_admit_rate=(
                controller.admit_rate if controller is not None else 1.0
            ),
        )

    # -- one incarnation ----------------------------------------------------

    def _run_incarnation(
        self, handle: WorkerHandle
    ) -> "tuple[PipelineResult, MetricsRegistry]":
        start_offset = self._await_ready(handle)
        pos = start_offset
        while True:
            batch = self._next_batch(pos)
            if not batch:
                self._put(handle, EOS)
                return self._await_result(handle)
            self._put(handle, batch)
            pos += len(batch)

    def _next_batch(self, pos: int) -> list[PositionReport]:
        """The next batch at offset ``pos`` of the admitted log.

        Replays already-admitted records when ``pos`` is behind the log's
        head (post-restart), otherwise admits fresh records from the raw
        substream — shedding, under the adaptive policy, happens exactly
        once per record, at first admission.
        """
        if pos < len(self._admitted):
            return self._admitted[pos : pos + self._config.batch_size]
        batch: list[PositionReport] = []
        while self._raw_pos < len(self._records):
            if len(batch) >= self._config.batch_size:
                break
            report = self._records[self._raw_pos]
            self._raw_pos += 1
            if self._controller is None or self._controller.admit():
                batch.append(report)
        self._admitted.extend(batch)
        return batch

    def _put(self, handle: WorkerHandle, item: Any) -> None:
        """Enqueue with backpressure: block while full, health-check, retry."""
        while True:
            try:
                handle.in_queue.put(item, timeout=self._config.put_timeout_s)
            except queue_mod.Full:
                if self._controller is not None:
                    self._controller.observe_put(blocked=True)
                if not handle.is_alive():
                    raise _WorkerDied from None
                continue
            if self._controller is not None:
                self._controller.observe_put(blocked=False)
            return

    def _await_ready(self, handle: WorkerHandle) -> int:
        """Wait for the incarnation's ready message; returns its offset."""
        deadline = monotonic() + self._config.ready_timeout_s
        while True:
            try:
                kind, __, start_offset = handle.out_queue.get(timeout=0.1)
            except queue_mod.Empty:
                if not handle.is_alive():
                    raise _WorkerDied from None
                if monotonic() > deadline:
                    raise ShardFailedError(
                        f"shard {handle.shard_id} never reported ready"
                    ) from None
                continue
            if kind == "ready":
                return start_offset

    def _await_result(
        self, handle: WorkerHandle
    ) -> "tuple[PipelineResult, MetricsRegistry]":
        """Wait for the final result; a death before it arrives restarts."""
        grace_deadline: float | None = None
        while True:
            try:
                message = handle.out_queue.get(timeout=0.1)
            except queue_mod.Empty:
                if not handle.is_alive():
                    # A clean exit (code 0) can be observed before the
                    # final result drains out of the queue's pipe buffer;
                    # keep reading for a grace period instead of
                    # declaring a spurious death. Any non-zero exit is a
                    # real death — restart immediately.
                    if handle.exitcode != 0:
                        raise _WorkerDied from None
                    if grace_deadline is None:
                        grace_deadline = monotonic() + 10.0
                    elif monotonic() > grace_deadline:
                        raise _WorkerDied from None
                continue
            if message is not None and message[0] == "result":
                __, __, result, registry = message
                handle.process.join(timeout=10.0)
                return result, registry


class Supervisor:
    """Runs a pipeline spec across sharded worker processes.

    Args:
        spec: The pipeline recipe every worker builds.
        config: Runtime knobs (shard count, queues, checkpoints, chaos).
        metrics: The supervisor-side registry; per-shard runtime counters
            land here and the merged per-worker registries fold into it.
    """

    def __init__(
        self,
        spec: PipelineSpec,
        config: RuntimeConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.spec = spec
        self.config = config or RuntimeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.router = ShardRouter(self.config.n_workers)
        self.pool = WorkerPool(
            queue_capacity=self.config.queue_capacity,
            start_method=self.config.start_method,
        )

    def run(self, reports: Iterable[PositionReport]) -> RuntimeResult:
        """Execute the stream across the shards; blocks until merged.

        Raises :class:`ShardFailedError` when any shard exhausts its
        restart budget; otherwise every routed (and admitted) record was
        processed exactly once, crashes notwithstanding.
        """
        started = monotonic()
        substreams = self.router.partition(reports)
        config = self.config
        checkpoint_root = config.checkpoint_dir or tempfile.mkdtemp(
            prefix="repro-runtime-"
        )
        owns_checkpoints = config.checkpoint_dir is None
        runners: list[_ShardRunner] = []
        try:
            for shard_id, records in enumerate(substreams):
                if not records:
                    continue  # elastic: an idle shard costs no process
                shard_dir = f"{checkpoint_root}/shard-{shard_id:03d}"
                if not config.resume:
                    shutil.rmtree(shard_dir, ignore_errors=True)
                crash_after = (
                    config.crash_after.get(shard_id)
                    if config.crash_after is not None
                    else None
                )
                spec = WorkerSpec(
                    shard_id=shard_id,
                    pipeline=self.spec,
                    checkpoint_dir=shard_dir,
                    checkpoint_interval=config.checkpoint_interval,
                    checkpoint_retain=config.checkpoint_retain,
                    resume=config.resume,
                    crash_after_records=crash_after,
                    service_time_s=config.service_time_s,
                    batch_execute=config.batch_execute,
                )
                runners.append(
                    _ShardRunner(self.pool, spec, records, config, self.metrics)
                )
            for runner in runners:
                runner.start()
            for runner in runners:
                runner.join()
        finally:
            self.pool.shutdown()
            if owns_checkpoints:
                shutil.rmtree(checkpoint_root, ignore_errors=True)
        failures = [r.error for r in runners if r.error is not None]
        if failures:
            raise failures[0]
        outcomes = [r.outcome for r in runners if r.outcome is not None]
        merger = ResultMerger(metrics=self.metrics)
        return merger.merge(
            outcomes,
            n_workers=config.n_workers,
            wall_time_s=monotonic() - started,
        )

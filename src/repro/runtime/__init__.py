"""Real sharded multi-process execution of the mobility pipeline.

Where :mod:`repro.streams.parallel` and :mod:`repro.store.parallel`
*model* scale-out cost in one process, this subsystem actually executes
it: the stream is split by a stable entity-key hash
(:class:`ShardRouter`), each shard runs a full
:class:`~repro.core.pipeline.MobilityPipeline` in its own worker process
(:class:`~repro.runtime.pool.WorkerPool`, spawn-safe, bounded queues,
backpressure, optional E9c-style admission shedding), a
:class:`Supervisor` health-checks the workers and restarts any dead
shard from its latest :class:`~repro.streams.checkpoint.FileCheckpointStore`
snapshot with offset-replay dedup, and a
:class:`~repro.runtime.merge.ResultMerger` folds per-worker results and
observability registries into one :class:`RuntimeResult` — crash or no
crash, byte-identical (see
:meth:`~repro.runtime.merge.RuntimeResult.deterministic_bytes`).

Quickstart::

    from repro.core.pipeline import PipelineSpec
    from repro.runtime import RuntimeConfig, Supervisor

    spec = PipelineSpec(bbox=sample.world.bbox,
                        registry=sample.registry,
                        zones=tuple(sample.world.zones))
    supervisor = Supervisor(spec, RuntimeConfig(n_workers=4))
    merged = supervisor.run(sorted(sample.reports, key=lambda r: r.t))
    print(merged.summary(), merged.restarts_total)

Sharding semantics match a keyed streaming job: all per-entity operator
state (dedup, synopses tracks, per-entity detection) is exact at any
parallelism; cross-entity detectors observe only their own shard's
entities (co-partitioning by geography is the documented extension —
see ``docs/runtime.md``).
"""

from repro.runtime.backpressure import AdmissionConfig, AdmissionController
from repro.runtime.merge import ResultMerger, RuntimeResult, ShardOutcome
from repro.runtime.pool import WorkerHandle, WorkerPool
from repro.runtime.sharding import ShardRouter, entity_key
from repro.runtime.supervisor import RuntimeConfig, ShardFailedError, Supervisor
from repro.runtime.worker import CHAOS_EXIT_CODE, EOS, WorkerSpec, worker_main

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "CHAOS_EXIT_CODE",
    "EOS",
    "ResultMerger",
    "RuntimeConfig",
    "RuntimeResult",
    "ShardFailedError",
    "ShardOutcome",
    "ShardRouter",
    "Supervisor",
    "WorkerHandle",
    "WorkerPool",
    "WorkerSpec",
    "entity_key",
    "worker_main",
]

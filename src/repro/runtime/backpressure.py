"""Admission control for the runtime's ingress boundary.

Bounded per-shard queues give the runtime *backpressure*: a shard that
cannot keep up blocks its feeder instead of growing memory without
bound. Under sustained overload an operator may prefer to *shed* load at
admission instead of stalling the source — the same trade the E9c
adaptive synopses make one tier further in (fix the budget, float the
threshold).

:class:`AdmissionController` is the E9c multiplicative controller applied
at the ingress: it watches what fraction of queue puts inside a window
hit a full queue ("pressure") and multiplicatively lowers the admit rate
while pressure persists, recovering toward 1.0 once the queue drains —
with the same gain/step-clamp scheme as
:class:`repro.insitu.adaptive.AdaptiveConfig`, and for the same reason
(unclamped multiplicative steps limit-cycle). Shedding decisions draw
from a seeded generator, so a run's shed set is reproducible.

Every shed is counted — on the controller, on the supervisor's
observability registry (``runtime.shard<i>.shed``) and in the merged
:class:`repro.runtime.merge.RuntimeResult` — load shedding is an explicit
degraded mode, never silent loss.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["AdmissionConfig", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Settings for :class:`AdmissionController`.

    Attributes:
        min_admit_rate: Floor of the admit rate — even under total
            overload, this fraction of records is still admitted so the
            shard keeps making (degraded) progress.
        gain: Multiplicative step aggressiveness under pressure (same
            role as :attr:`repro.insitu.adaptive.AdaptiveConfig.gain`).
        max_step: Per-window rate change clamp, ``[1/max_step, max_step]``
            (same role as ``AdaptiveConfig.max_step``).
        window: Queue-put attempts per controller adjustment.
        seed: Seeds the shedding coin flips (reproducible shed sets).
    """

    min_admit_rate: float = 0.05
    gain: float = 0.5
    max_step: float = 1.4
    window: int = 64
    seed: int = 2017

    def __post_init__(self) -> None:
        if not (0.0 < self.min_admit_rate <= 1.0):
            raise ValueError("min_admit_rate must be in (0, 1]")
        if self.gain <= 0:
            raise ValueError("gain must be positive")
        if self.max_step <= 1.0:
            raise ValueError("max_step must exceed 1")
        if self.window <= 0:
            raise ValueError("window must be positive")


class AdmissionController:
    """Multiplicative admit-rate controller driven by queue pressure."""

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self.admit_rate = 1.0
        self.admitted = 0
        self.shed = 0
        self._rng = random.Random(self.config.seed)
        self._window_attempts = 0
        self._window_blocked = 0

    def observe_put(self, blocked: bool) -> None:
        """Record one queue-put attempt; ``blocked`` when the queue was full.

        Every ``window`` attempts the admit rate adjusts: pressure in the
        window shrinks it (more pressure, bigger step, clamped), a
        pressure-free window grows it back toward 1.0.
        """
        self._window_attempts += 1
        if blocked:
            self._window_blocked += 1
        if self._window_attempts < self.config.window:
            return
        pressure = self._window_blocked / self._window_attempts
        self._window_attempts = 0
        self._window_blocked = 0
        if pressure > 0.0:
            factor = (1.0 - pressure) ** self.config.gain
            factor = max(factor, 1.0 / self.config.max_step)
        else:
            factor = self.config.max_step
        self.admit_rate = min(
            1.0, max(self.config.min_admit_rate, self.admit_rate * factor)
        )

    def admit(self) -> bool:
        """Decide one record's admission; sheds with rate ``1 - admit_rate``."""
        if self.admit_rate >= 1.0 or self._rng.random() < self.admit_rate:
            self.admitted += 1
            return True
        self.shed += 1
        return False

"""Hot-spot and hot-path detection over trajectory collections.

"Hot spots / paths" are among the complex phenomena the paper names. A
hot spot is a grid cell whose visit density is anomalously high relative
to its neighbourhood (a Getis-Ord-style z-score); a hot path is a
frequent cell-to-cell transition chain.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable, Sequence

import numpy as np

from repro.geo.grid import GeoGrid
from repro.model.trajectory import Trajectory


def density_grid(
    trajectories: Iterable[Trajectory],
    grid: GeoGrid,
    per_entity: bool = True,
) -> np.ndarray:
    """Visit counts per cell, shaped (ny, nx).

    Args:
        per_entity: When true, an entity contributes at most 1 per cell
            (presence density); when false every sample counts (dwell
            density).
    """
    counts = np.zeros((grid.ny, grid.nx), dtype=np.float64)
    for trajectory in trajectories:
        seen: set[tuple[int, int]] = set()
        for i in range(len(trajectory)):
            cell = grid.cell_of(float(trajectory.lon[i]), float(trajectory.lat[i]))
            if per_entity:
                if cell in seen:
                    continue
                seen.add(cell)
            counts[cell[1], cell[0]] += 1.0
    return counts


def hotspot_cells(
    density: np.ndarray,
    z_threshold: float = 2.0,
) -> list[tuple[int, int, float]]:
    """Cells whose local Getis-Ord-style z-score exceeds the threshold.

    For each cell the statistic compares the 3×3 neighbourhood sum against
    its expectation under the global mean, normalised by the global std.
    Returns ``(ix, iy, z)`` sorted by descending z.
    """
    ny, nx = density.shape
    total_mean = float(density.mean())
    total_std = float(density.std())
    if total_std == 0:
        return []
    out: list[tuple[int, int, float]] = []
    for iy in range(ny):
        for ix in range(nx):
            y0, y1 = max(0, iy - 1), min(ny, iy + 2)
            x0, x1 = max(0, ix - 1), min(nx, ix + 2)
            window = density[y0:y1, x0:x1]
            n_cells = window.size
            z = (float(window.sum()) - total_mean * n_cells) / (
                total_std * np.sqrt(n_cells)
            )
            if z >= z_threshold:
                out.append((ix, iy, float(z)))
    out.sort(key=lambda item: -item[2])
    return out


def hot_paths(
    trajectories: Iterable[Trajectory],
    grid: GeoGrid,
    min_support: int = 3,
    max_length: int = 6,
) -> list[tuple[tuple[int, ...], int]]:
    """Frequent cell-sequence paths with at least ``min_support`` entities.

    Each trajectory is mapped to its deduplicated cell-id sequence; paths
    are contiguous subsequences up to ``max_length`` cells. Support counts
    distinct entities (a loop by one vessel is not a hot path). Returns
    ``(cell_id_sequence, support)`` pairs, longest and most supported
    first, with subsumed (shorter, same-support prefix/suffix) paths
    removed.
    """
    sequences: list[tuple[str, tuple[int, ...]]] = []
    for trajectory in trajectories:
        cells: list[int] = []
        for i in range(len(trajectory)):
            cid = grid.cell_id(float(trajectory.lon[i]), float(trajectory.lat[i]))
            if not cells or cells[-1] != cid:
                cells.append(cid)
        sequences.append((trajectory.entity_id, tuple(cells)))

    support: dict[tuple[int, ...], set[str]] = defaultdict(set)
    for entity_id, cells in sequences:
        n = len(cells)
        for length in range(2, max_length + 1):
            for start in range(0, n - length + 1):
                support[cells[start:start + length]].add(entity_id)

    frequent = [
        (path, len(entities))
        for path, entities in support.items()
        if len(entities) >= min_support
    ]
    frequent.sort(key=lambda item: (-len(item[0]), -item[1]))

    # Drop paths strictly contained in an already-kept path with >= support.
    kept: list[tuple[tuple[int, ...], int]] = []
    for path, count in frequent:
        contained = any(
            count <= kept_count and _is_subsequence(path, kept_path)
            for kept_path, kept_count in kept
        )
        if not contained:
            kept.append((path, count))
    return kept


def _is_subsequence(needle: Sequence[int], haystack: Sequence[int]) -> bool:
    """Whether ``needle`` appears contiguously inside ``haystack``."""
    n, m = len(needle), len(haystack)
    if n > m:
        return False
    needle_t = tuple(needle)
    return any(tuple(haystack[i:i + n]) == needle_t for i in range(m - n + 1))

"""Route-deviation anomaly detection.

"Detecting anomalous behaviors" is one of the paper's maritime goals.
The dominant pattern-based approach: learn the normal routes from
history, then score live trajectories by how far they stray from every
learned route. A track whose off-route distance exceeds a threshold for
a sustained stretch is anomalous — smuggling detours, drift, spoofing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geo.geodesy import haversine_m
from repro.model.trajectory import Trajectory
from repro.trajectory.clustering import KMedoids, distance_matrix
from repro.trajectory.similarity import euclidean_resampled_m


@dataclass(frozen=True, slots=True)
class AnomalyScore:
    """Off-route assessment of one trajectory.

    Attributes:
        entity_id: The scored entity.
        mean_off_route_m: Mean distance of samples to the nearest route.
        max_off_route_m: Worst single-sample off-route distance.
        off_route_fraction: Fraction of samples beyond the threshold.
        is_anomalous: The final verdict at the model's thresholds.
    """

    entity_id: str
    mean_off_route_m: float
    max_off_route_m: float
    off_route_fraction: float
    is_anomalous: bool


class RouteAnomalyModel:
    """Learns normal routes; scores trajectories by route deviation.

    Args:
        history: Normal-behaviour trajectories (the training corpus).
        n_routes: Route clusters learned from the corpus.
        off_route_threshold_m: A sample farther than this from *every*
            route counts as off-route.
        anomaly_fraction: Verdict threshold: a trajectory is anomalous
            when more than this fraction of its samples are off-route.
        samples_per_track: Scoring resolution (resampled positions).
    """

    def __init__(
        self,
        history: Sequence[Trajectory],
        n_routes: int = 8,
        off_route_threshold_m: float = 5_000.0,
        anomaly_fraction: float = 0.3,
        samples_per_track: int = 48,
        seed: int = 0,
    ) -> None:
        if not history:
            raise ValueError("anomaly model needs historical trajectories")
        if not (0.0 < anomaly_fraction <= 1.0):
            raise ValueError("anomaly_fraction must be in (0, 1]")
        self.off_route_threshold_m = off_route_threshold_m
        self.anomaly_fraction = anomaly_fraction
        self.samples_per_track = samples_per_track
        self.routes = self._learn_routes(list(history), n_routes, seed)
        # Precompute route sample arrays once for fast point scoring.
        self._route_points = np.concatenate(
            [np.stack([r.lon, r.lat], axis=1) for r in self.routes]
        )

    @staticmethod
    def _learn_routes(
        history: list[Trajectory], n_routes: int, seed: int
    ) -> list[Trajectory]:
        k = min(n_routes, len(history))
        resampled = [
            t.resample(max(30.0, t.duration / 64.0)) if t.duration > 0 else t
            for t in history
        ]
        if k == len(resampled):
            return resampled
        matrix = distance_matrix(resampled, metric=euclidean_resampled_m)
        model = KMedoids(k=k, seed=seed).fit(matrix)
        assert model.medoids is not None
        return [resampled[i] for i in model.medoids]

    def off_route_distance_m(self, lon: float, lat: float) -> float:
        """Distance from a point to the nearest learned route sample."""
        from repro.geo.geodesy import haversine_m_arrays

        lons = self._route_points[:, 0]
        lats = self._route_points[:, 1]
        distances = haversine_m_arrays(
            np.full(len(lons), lon), np.full(len(lats), lat), lons, lats
        )
        return float(distances.min())

    def score(self, trajectory: Trajectory) -> AnomalyScore:
        """Score one trajectory against the learned normalcy model."""
        if len(trajectory) == 0:
            raise ValueError("cannot score an empty trajectory")
        track = (
            trajectory.resample(max(30.0, trajectory.duration / self.samples_per_track))
            if trajectory.duration > 0
            else trajectory
        )
        distances = np.array([
            self.off_route_distance_m(float(track.lon[i]), float(track.lat[i]))
            for i in range(len(track))
        ])
        off_fraction = float((distances > self.off_route_threshold_m).mean())
        return AnomalyScore(
            entity_id=trajectory.entity_id,
            mean_off_route_m=float(distances.mean()),
            max_off_route_m=float(distances.max()),
            off_route_fraction=off_fraction,
            is_anomalous=off_fraction > self.anomaly_fraction,
        )

    def score_all(self, trajectories: Sequence[Trajectory]) -> list[AnomalyScore]:
        """Score several trajectories, most anomalous first."""
        scores = [self.score(t) for t in trajectories]
        scores.sort(key=lambda s: -s.off_route_fraction)
        return scores

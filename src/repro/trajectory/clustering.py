"""Route clustering over trajectory distance matrices.

Clustering historical trajectories into routes is the substrate of
pattern-based forecasting: a new partial trajectory is matched to its
nearest route cluster and the cluster's medoid continuation is the
prediction. Two standard algorithms over a precomputed distance matrix:
k-medoids (PAM-style) and bottom-up agglomerative with average linkage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.model.trajectory import Trajectory
from repro.trajectory.similarity import euclidean_resampled_m

DistanceFn = Callable[[Trajectory, Trajectory], float]


def distance_matrix(
    trajectories: Sequence[Trajectory],
    metric: DistanceFn = euclidean_resampled_m,
) -> np.ndarray:
    """Symmetric pairwise distance matrix under ``metric``."""
    n = len(trajectories)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = metric(trajectories[i], trajectories[j])
            matrix[i, j] = matrix[j, i] = d
    return matrix


@dataclass
class KMedoids:
    """PAM-style k-medoids over a precomputed distance matrix.

    Attributes:
        k: Number of clusters.
        max_iter: Swap iterations bound.
        seed: RNG seed for the initial medoids.

    After :meth:`fit`: ``labels`` (cluster per item), ``medoids`` (item
    indexes of the cluster centres), ``inertia`` (sum of distances to the
    assigned medoid).
    """

    k: int
    max_iter: int = 50
    seed: int = 0
    labels: np.ndarray | None = None
    medoids: list[int] | None = None
    inertia: float | None = None

    def fit(self, matrix: np.ndarray) -> KMedoids:
        """Cluster items given their pairwise distances."""
        n = matrix.shape[0]
        if self.k <= 0 or self.k > n:
            raise ValueError(f"k={self.k} invalid for {n} items")
        rng = np.random.default_rng(self.seed)
        medoids = list(rng.choice(n, size=self.k, replace=False))

        for __ in range(self.max_iter):
            labels = np.argmin(matrix[:, medoids], axis=1)
            improved = False
            for ci in range(self.k):
                members = np.nonzero(labels == ci)[0]
                if len(members) == 0:
                    continue
                # The best medoid of a cluster minimises intra-cluster cost.
                costs = matrix[np.ix_(members, members)].sum(axis=0)
                best = members[int(np.argmin(costs))]
                if best != medoids[ci]:
                    medoids[ci] = int(best)
                    improved = True
            if not improved:
                break

        self.labels = np.argmin(matrix[:, medoids], axis=1)
        self.medoids = medoids
        self.inertia = float(matrix[np.arange(n), [medoids[c] for c in self.labels]].sum())
        return self

    def cluster_members(self, cluster: int) -> np.ndarray:
        """Item indexes assigned to one cluster."""
        if self.labels is None:
            raise RuntimeError("fit() has not been called")
        return np.nonzero(self.labels == cluster)[0]


def agglomerative_clusters(
    matrix: np.ndarray,
    threshold: float,
) -> np.ndarray:
    """Average-linkage agglomerative clustering cut at ``threshold``.

    Merges the closest pair of clusters (by mean inter-cluster distance)
    until no pair lies within the threshold. Returns a label per item.
    Intended for modest n (route sets), not millions of items.
    """
    n = matrix.shape[0]
    clusters: list[list[int]] = [[i] for i in range(n)]

    def linkage(a: list[int], b: list[int]) -> float:
        return float(matrix[np.ix_(a, b)].mean())

    while len(clusters) > 1:
        best_pair = None
        best_dist = threshold
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                d = linkage(clusters[i], clusters[j])
                if d <= best_dist:
                    best_dist = d
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        clusters[i] = clusters[i] + clusters[j]
        del clusters[j]

    labels = np.empty(n, dtype=np.int64)
    for label, members in enumerate(clusters):
        for item in members:
            labels[item] = label
    return labels

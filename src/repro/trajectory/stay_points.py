"""Stay-point detection and voyage segmentation.

A *stay point* is a maximal interval during which an entity remains
within a small radius — a port call, an anchorage wait, a holding
pattern. Stay points split a raw track into *voyages* (the movement
episodes between stays), the unit the archival layer and route-based
forecasting actually want.

The detector is the classic Li/Zheng sliding scheme adapted to
great-circle distances: grow a window while every sample stays within
``radius_m`` of the window's anchor; emit a stay when the window spans at
least ``min_duration_s``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.geodesy import haversine_m
from repro.model.trajectory import Trajectory


@dataclass(frozen=True, slots=True)
class StayPoint:
    """One detected stay.

    Attributes:
        entity_id: The staying entity.
        lon / lat: Centroid of the stay's samples.
        t_start / t_end: The stay interval.
        n_samples: Samples contributing to the stay.
    """

    entity_id: str
    lon: float
    lat: float
    t_start: float
    t_end: float
    n_samples: int

    @property
    def duration(self) -> float:
        """Stay length in seconds."""
        return self.t_end - self.t_start


def detect_stay_points(
    trajectory: Trajectory,
    radius_m: float = 500.0,
    min_duration_s: float = 1200.0,
) -> list[StayPoint]:
    """Find all stay points of a trajectory.

    Args:
        radius_m: Maximum distance from the stay anchor.
        min_duration_s: Minimum dwell time for a window to count.
    """
    if radius_m <= 0 or min_duration_s <= 0:
        raise ValueError("radius and duration must be positive")
    n = len(trajectory)
    stays: list[StayPoint] = []
    i = 0
    while i < n:
        j = i + 1
        while j < n:
            dist = haversine_m(
                float(trajectory.lon[i]), float(trajectory.lat[i]),
                float(trajectory.lon[j]), float(trajectory.lat[j]),
            )
            if dist > radius_m:
                break
            j += 1
        span = float(trajectory.t[j - 1] - trajectory.t[i])
        if span >= min_duration_s:
            lon = float(trajectory.lon[i:j].mean())
            lat = float(trajectory.lat[i:j].mean())
            stays.append(
                StayPoint(
                    entity_id=trajectory.entity_id,
                    lon=lon,
                    lat=lat,
                    t_start=float(trajectory.t[i]),
                    t_end=float(trajectory.t[j - 1]),
                    n_samples=j - i,
                )
            )
            i = j
        else:
            i += 1
    return stays


def split_voyages(
    trajectory: Trajectory,
    stays: list[StayPoint] | None = None,
    radius_m: float = 500.0,
    min_duration_s: float = 1200.0,
    min_voyage_points: int = 4,
) -> list[Trajectory]:
    """Cut a trajectory into voyages at its stay points.

    Args:
        stays: Precomputed stay points; detected when ``None``.
        min_voyage_points: Shorter movement fragments are dropped.

    Returns:
        The movement segments between (and around) stays, in time order.
    """
    if stays is None:
        stays = detect_stay_points(trajectory, radius_m, min_duration_s)
    if not stays:
        return [trajectory] if len(trajectory) >= min_voyage_points else []

    voyages: list[Trajectory] = []
    cursor = trajectory.start_time
    for stay in stays:
        segment = trajectory.slice_time(cursor, stay.t_start)
        if len(segment) >= min_voyage_points:
            voyages.append(segment)
        cursor = stay.t_end
    tail = trajectory.slice_time(cursor, trajectory.end_time)
    if len(tail) >= min_voyage_points:
        voyages.append(tail)
    return voyages

"""Trajectory analytics: reconstruction, similarity, clustering, hot spots.

The paper's analytics layer begins with "reconstruction ... of moving
entities' trajectories" from the (compressed, noisy, gappy) streams; on
top of reconstructed trajectories sit similarity search, route clustering
(the substrate of pattern-based forecasting) and hot-spot / hot-path
detection (one of the paper's named complex phenomena).

- :mod:`repro.trajectory.reconstruction` — report streams → clean
  per-entity trajectories (ordering, deduplication, gap-aware splitting,
  optional smoothing), in batch and streaming forms.
- :mod:`repro.trajectory.similarity` — DTW, discrete Fréchet, LCSS, EDR
  and resampled-Euclidean distances.
- :mod:`repro.trajectory.clustering` — distance-matrix k-medoids and
  agglomerative clustering for route discovery.
- :mod:`repro.trajectory.hotspots` — grid-density hot spots (Getis-Ord
  style z-scores) and frequent-transition hot paths.
"""

from repro.trajectory.reconstruction import (
    ReconstructionConfig,
    TrajectoryReconstructor,
    reconstruct_all,
)
from repro.trajectory.similarity import (
    dtw_distance_m,
    frechet_distance_m,
    hausdorff_distance_m,
    lcss_similarity,
    edr_distance,
    euclidean_resampled_m,
)
from repro.trajectory.clustering import (
    distance_matrix,
    KMedoids,
    agglomerative_clusters,
)
from repro.trajectory.hotspots import (
    density_grid,
    hotspot_cells,
    hot_paths,
)
from repro.trajectory.stay_points import StayPoint, detect_stay_points, split_voyages
from repro.trajectory.semantic import (
    Episode,
    EpisodeType,
    SemanticTrajectory,
    build_semantic_trajectory,
)
from repro.trajectory.anomaly import AnomalyScore, RouteAnomalyModel

__all__ = [
    "ReconstructionConfig",
    "TrajectoryReconstructor",
    "reconstruct_all",
    "dtw_distance_m",
    "frechet_distance_m",
    "hausdorff_distance_m",
    "lcss_similarity",
    "edr_distance",
    "euclidean_resampled_m",
    "distance_matrix",
    "KMedoids",
    "agglomerative_clusters",
    "density_grid",
    "hotspot_cells",
    "hot_paths",
    "StayPoint",
    "detect_stay_points",
    "split_voyages",
    "Episode",
    "EpisodeType",
    "SemanticTrajectory",
    "build_semantic_trajectory",
    "AnomalyScore",
    "RouteAnomalyModel",
]

"""Semantic trajectories: episode-structured movement.

datAcron's trajectory model is *semantic*: a raw track becomes an
alternating sequence of STOP and MOVE episodes, each annotated with the
context it happened in (the port/zone of a stop, the heading regime of a
move). Semantic trajectories are what the RDF layer ultimately describes
and what human analysts read in the VA frontend.

Episodes are derived from stay points (stops) and the samples between
them (moves); zone annotation uses the world's polygons.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.geo.polygon import Polygon
from repro.model.trajectory import Trajectory
from repro.trajectory.stay_points import StayPoint, detect_stay_points


class EpisodeType(enum.Enum):
    """The two episode kinds of a semantic trajectory."""

    STOP = "stop"
    MOVE = "move"


@dataclass(frozen=True, slots=True)
class Episode:
    """One annotated episode of a semantic trajectory.

    Attributes:
        kind: STOP or MOVE.
        t_start / t_end: Episode interval.
        lon / lat: Representative position (stay centroid, or move
            midpoint).
        tags: Annotations — zone names for stops, ``heading=<octant>``
            and ``mean_speed=<m/s>`` for moves.
    """

    kind: EpisodeType
    t_start: float
    t_end: float
    lon: float
    lat: float
    tags: tuple[str, ...] = ()

    @property
    def duration(self) -> float:
        """Episode length in seconds."""
        return self.t_end - self.t_start


@dataclass(frozen=True)
class SemanticTrajectory:
    """A raw trajectory lifted to its episode structure."""

    entity_id: str
    episodes: tuple[Episode, ...]

    def stops(self) -> list[Episode]:
        """The STOP episodes."""
        return [e for e in self.episodes if e.kind is EpisodeType.STOP]

    def moves(self) -> list[Episode]:
        """The MOVE episodes."""
        return [e for e in self.episodes if e.kind is EpisodeType.MOVE]

    def describe(self) -> str:
        """A one-episode-per-line, analyst-readable rendering."""
        lines = [f"semantic trajectory of {self.entity_id}:"]
        for episode in self.episodes:
            tags = f" [{', '.join(episode.tags)}]" if episode.tags else ""
            lines.append(
                f"  {episode.kind.value:<4} {episode.t_start:8.0f}s → "
                f"{episode.t_end:8.0f}s ({episode.duration / 60:5.1f} min)"
                f" @ ({episode.lon:.3f}, {episode.lat:.3f}){tags}"
            )
        return "\n".join(lines)


_OCTANTS = ("N", "NE", "E", "SE", "S", "SW", "W", "NW")


def _heading_octant(heading_deg: float) -> str:
    return _OCTANTS[int(((heading_deg + 22.5) % 360.0) / 45.0)]


def build_semantic_trajectory(
    trajectory: Trajectory,
    zones: Sequence[Polygon] = (),
    stay_radius_m: float = 500.0,
    stay_min_duration_s: float = 1200.0,
) -> SemanticTrajectory:
    """Lift a raw trajectory into STOP/MOVE episodes.

    Stops come from stay-point detection and are tagged with every zone
    containing their centroid (``zone:<name>``); the intervals between
    them become moves tagged with the dominant heading octant and mean
    speed.
    """
    stays = detect_stay_points(trajectory, stay_radius_m, stay_min_duration_s)
    episodes: list[Episode] = []
    cursor = trajectory.start_time

    def add_move(t_from: float, t_to: float) -> None:
        segment = trajectory.slice_time(t_from, t_to)
        if len(segment) < 2:
            return
        speeds = segment.speeds_mps()
        headings = segment.headings_deg()
        mean_speed = float(speeds.mean()) if len(speeds) else 0.0
        octant = _heading_octant(float(np.median(headings))) if len(headings) else "?"
        mid = segment.at_time((t_from + t_to) / 2.0)
        episodes.append(
            Episode(
                kind=EpisodeType.MOVE,
                t_start=segment.start_time,
                t_end=segment.end_time,
                lon=mid.lon,
                lat=mid.lat,
                tags=(f"heading={octant}", f"mean_speed={mean_speed:.1f}"),
            )
        )

    for stay in stays:
        add_move(cursor, stay.t_start)
        tags = tuple(
            f"zone:{zone.name}" for zone in zones if zone.contains(stay.lon, stay.lat)
        )
        episodes.append(
            Episode(
                kind=EpisodeType.STOP,
                t_start=stay.t_start,
                t_end=stay.t_end,
                lon=stay.lon,
                lat=stay.lat,
                tags=tags,
            )
        )
        cursor = stay.t_end
    add_move(cursor, trajectory.end_time)

    return SemanticTrajectory(entity_id=trajectory.entity_id, episodes=tuple(episodes))

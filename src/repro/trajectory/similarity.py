"""Trajectory similarity measures.

All measures work on the spatial shape of trajectories (time is used only
for optional resampling). Point-to-point distances are great-circle
metres. Dynamic-programming measures accept trajectories of different
lengths; for long inputs use :meth:`Trajectory.resample` first — the DP
tables are O(n·m).
"""

from __future__ import annotations

import numpy as np

from repro.geo.geodesy import haversine_m_arrays
from repro.model.trajectory import Trajectory


def _pairwise_m(a: Trajectory, b: Trajectory) -> np.ndarray:
    """n×m matrix of great-circle distances between samples."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("similarity needs non-empty trajectories")
    lon_a = np.repeat(a.lon, m)
    lat_a = np.repeat(a.lat, m)
    lon_b = np.tile(b.lon, n)
    lat_b = np.tile(b.lat, n)
    return haversine_m_arrays(lon_a, lat_a, lon_b, lat_b).reshape(n, m)


def dtw_distance_m(a: Trajectory, b: Trajectory, band: int | None = None) -> float:
    """Dynamic time warping distance in metres (sum of matched distances).

    Args:
        band: Sakoe-Chiba band half-width in samples; ``None`` disables the
            constraint. A band turns O(n·m) into O(n·band) useful work and
            regularises pathological warpings.
    """
    dist = _pairwise_m(a, b)
    n, m = dist.shape
    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        if band is None:
            j_lo, j_hi = 1, m
        else:
            centre = int(round(i * m / n))
            j_lo = max(1, centre - band)
            j_hi = min(m, centre + band)
        for j in range(j_lo, j_hi + 1):
            best_prev = min(acc[i - 1, j], acc[i, j - 1], acc[i - 1, j - 1])
            acc[i, j] = dist[i - 1, j - 1] + best_prev
    return float(acc[n, m])


def frechet_distance_m(a: Trajectory, b: Trajectory) -> float:
    """Discrete Fréchet distance in metres (min over walks of max leash)."""
    dist = _pairwise_m(a, b)
    n, m = dist.shape
    acc = np.full((n, m), np.inf)
    acc[0, 0] = dist[0, 0]
    for i in range(1, n):
        acc[i, 0] = max(acc[i - 1, 0], dist[i, 0])
    for j in range(1, m):
        acc[0, j] = max(acc[0, j - 1], dist[0, j])
    for i in range(1, n):
        for j in range(1, m):
            reach = min(acc[i - 1, j], acc[i, j - 1], acc[i - 1, j - 1])
            acc[i, j] = max(reach, dist[i, j])
    return float(acc[n - 1, m - 1])


def lcss_similarity(a: Trajectory, b: Trajectory, eps_m: float = 500.0) -> float:
    """Longest-common-subsequence similarity in [0, 1].

    Two samples "match" when within ``eps_m`` metres; the score is the LCSS
    length normalised by the shorter trajectory. Robust to outliers —
    unmatched noise samples simply drop out.
    """
    dist = _pairwise_m(a, b)
    n, m = dist.shape
    table = np.zeros((n + 1, m + 1), dtype=np.int64)
    match = dist <= eps_m
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            if match[i - 1, j - 1]:
                table[i, j] = table[i - 1, j - 1] + 1
            else:
                table[i, j] = max(table[i - 1, j], table[i, j - 1])
    return float(table[n, m]) / float(min(n, m))


def edr_distance(a: Trajectory, b: Trajectory, eps_m: float = 500.0) -> float:
    """Edit distance on real sequences, normalised to [0, 1].

    Count of edit operations (insert/delete/substitute with match
    tolerance ``eps_m``) divided by the longer length.
    """
    dist = _pairwise_m(a, b)
    n, m = dist.shape
    table = np.zeros((n + 1, m + 1), dtype=np.int64)
    table[:, 0] = np.arange(n + 1)
    table[0, :] = np.arange(m + 1)
    match = dist <= eps_m
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            sub_cost = 0 if match[i - 1, j - 1] else 1
            table[i, j] = min(
                table[i - 1, j - 1] + sub_cost,
                table[i - 1, j] + 1,
                table[i, j - 1] + 1,
            )
    return float(table[n, m]) / float(max(n, m))


def hausdorff_distance_m(a: Trajectory, b: Trajectory) -> float:
    """Symmetric Hausdorff distance in metres.

    ``max(sup_a inf_b d, sup_b inf_a d)`` over sample points: how far the
    two shapes can diverge anywhere, ignoring time and direction. Unlike
    Fréchet it permits re-ordering, so reciprocal lanes score close —
    use it for "same corridor" questions, Fréchet for "same path walked
    the same way".
    """
    dist = _pairwise_m(a, b)
    forward = float(dist.min(axis=1).max())
    backward = float(dist.min(axis=0).max())
    return max(forward, backward)


def euclidean_resampled_m(a: Trajectory, b: Trajectory, n_samples: int = 32) -> float:
    """Mean distance between trajectories resampled to ``n_samples`` points.

    The cheapest measure: resample both to the same index lattice (by
    normalised arc time) and average the pointwise distances. Sensitive to
    time shifts, so use it for shape-aligned comparisons only.
    """
    if n_samples < 2:
        raise ValueError("n_samples must be >= 2")
    pa = _resample_by_fraction(a, n_samples)
    pb = _resample_by_fraction(b, n_samples)
    d = haversine_m_arrays(pa[0], pa[1], pb[0], pb[1])
    return float(d.mean())


def _resample_by_fraction(t: Trajectory, n: int) -> tuple[np.ndarray, np.ndarray]:
    """(lon, lat) arrays at n evenly spaced fractions of the time span."""
    if len(t) == 1:
        return (np.full(n, float(t.lon[0])), np.full(n, float(t.lat[0])))
    times = np.linspace(t.start_time, t.end_time, n)
    lons = np.interp(times, t.t, t.lon)
    lats = np.interp(times, t.t, t.lat)
    return (lons, lats)

"""Trajectory reconstruction from noisy, unordered report streams.

Turns per-entity report sequences into clean :class:`Trajectory` objects:

1. sort by event time, drop duplicates (same timestamp);
2. reject physics-violating jumps (speed ceiling between samples);
3. split into voyage segments wherever the time gap exceeds a threshold;
4. optionally smooth positions with a small moving-average window.

A streaming variant (:class:`TrajectoryReconstructor` as an operator via
:meth:`TrajectoryReconstructor.operator`) accumulates per-entity buffers
and emits each completed segment when a gap closes or the stream ends.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.geo.geodesy import haversine_m
from repro.model.points import Domain
from repro.model.reports import PositionReport
from repro.model.trajectory import Trajectory
from repro.streams.operators import KeyedProcessOperator
from repro.streams.records import Record


@dataclass(frozen=True, slots=True)
class ReconstructionConfig:
    """Reconstruction parameters.

    Attributes:
        max_gap_s: Gap above which the track splits into segments.
        max_speed_mps: Reject a sample implying a higher speed than this
            from its predecessor.
        smooth_window: Moving-average half-window (0 disables smoothing).
        min_segment_points: Segments shorter than this are discarded.
    """

    max_gap_s: float = 1800.0
    max_speed_mps: float = 350.0
    smooth_window: int = 0
    min_segment_points: int = 2

    def __post_init__(self) -> None:
        if self.max_gap_s <= 0 or self.max_speed_mps <= 0:
            raise ValueError("thresholds must be positive")
        if self.smooth_window < 0 or self.min_segment_points < 1:
            raise ValueError("invalid reconstruction config")


class TrajectoryReconstructor:
    """Batch reconstruction of one entity's trajectory segments."""

    def __init__(self, config: ReconstructionConfig | None = None) -> None:
        self.config = config or ReconstructionConfig()

    def reconstruct(self, reports: Iterable[PositionReport]) -> list[Trajectory]:
        """Build clean voyage segments from one entity's reports."""
        ordered = sorted(reports, key=lambda r: r.t)
        if not ordered:
            return []
        entity_id = ordered[0].entity_id
        if any(r.entity_id != entity_id for r in ordered):
            raise ValueError("reconstruct() expects a single entity's reports")

        accepted: list[PositionReport] = []
        for report in ordered:
            if accepted and report.t <= accepted[-1].t:
                continue  # duplicate timestamp
            if accepted:
                dt = report.t - accepted[-1].t
                dist = haversine_m(accepted[-1].lon, accepted[-1].lat, report.lon, report.lat)
                if dist / dt > self.config.max_speed_mps:
                    continue  # physics-violating jump
            accepted.append(report)

        segments = self._split_gaps(accepted)
        out = []
        for segment in segments:
            if len(segment) < self.config.min_segment_points:
                continue
            out.append(self._build(entity_id, segment))
        return out

    def _split_gaps(self, reports: list[PositionReport]) -> list[list[PositionReport]]:
        segments: list[list[PositionReport]] = []
        current: list[PositionReport] = []
        for report in reports:
            if current and report.t - current[-1].t > self.config.max_gap_s:
                segments.append(current)
                current = []
            current.append(report)
        if current:
            segments.append(current)
        return segments

    def _build(self, entity_id: str, reports: list[PositionReport]) -> Trajectory:
        t = np.array([r.t for r in reports])
        lon = np.array([r.lon for r in reports])
        lat = np.array([r.lat for r in reports])
        has_alt = all(r.alt is not None for r in reports)
        alt = np.array([r.alt for r in reports]) if has_alt else None

        if self.config.smooth_window > 0 and len(reports) > 2:
            lon = _moving_average(lon, self.config.smooth_window)
            lat = _moving_average(lat, self.config.smooth_window)
            if alt is not None:
                alt = _moving_average(alt, self.config.smooth_window)

        domain = reports[0].domain if reports else Domain.MARITIME
        return Trajectory(entity_id, t, lon, lat, alt, domain=domain)

    def operator(self, name: str = "reconstruct") -> _ReconstructionOperator:
        """A streaming operator emitting completed segments per entity."""
        return _ReconstructionOperator(self, name=name)


def _moving_average(values: np.ndarray, half_window: int) -> np.ndarray:
    """Centred moving average preserving the endpoints."""
    window = 2 * half_window + 1
    if len(values) < window:
        return values
    kernel = np.ones(window) / window
    smoothed = np.convolve(values, kernel, mode="same")
    # Edges of 'same' convolution are biased; keep the raw endpoints.
    smoothed[:half_window] = values[:half_window]
    smoothed[-half_window:] = values[-half_window:]
    return smoothed


class _ReconstructionOperator(KeyedProcessOperator):
    """Streaming wrapper: emits a Trajectory when a segment completes."""

    def __init__(self, reconstructor: TrajectoryReconstructor, name: str) -> None:
        super().__init__(key_fn=lambda r: r.entity_id, name=name)
        self._reconstructor = reconstructor

    def process_keyed(self, record: Record, state: dict[str, Any]) -> Iterable[Record]:
        report: PositionReport = record.value
        buffer: list[PositionReport] = state.setdefault("buffer", [])
        if buffer and report.t - buffer[-1].t > self._reconstructor.config.max_gap_s:
            segments = self._reconstructor.reconstruct(buffer)
            state["buffer"] = [report]
            return tuple(
                Record(event_time=seg.end_time, value=seg, key=record.key)
                for seg in segments
            )
        buffer.append(report)
        return ()

    def flush_key(self, key: Any, state: dict[str, Any]) -> Iterable[Record]:
        buffer = state.get("buffer") or []
        if not buffer:
            return ()
        segments = self._reconstructor.reconstruct(buffer)
        return tuple(
            Record(event_time=seg.end_time, value=seg, key=key) for seg in segments
        )


def reconstruct_all(
    reports: Iterable[PositionReport],
    config: ReconstructionConfig | None = None,
) -> dict[str, list[Trajectory]]:
    """Batch helper: reconstruct every entity present in a report stream."""
    by_entity: dict[str, list[PositionReport]] = defaultdict(list)
    for report in reports:
        by_entity[report.entity_id].append(report)
    reconstructor = TrajectoryReconstructor(config)
    return {
        entity_id: reconstructor.reconstruct(entity_reports)
        for entity_id, entity_reports in by_entity.items()
    }

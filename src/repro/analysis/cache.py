"""Incremental linter cache (``.repro-analysis-cache.json``).

The engine splits rules into two tiers:

- **local** rules (D1–D3, P1, O1, O2) read one file at a time, so their
  raw findings are a pure function of that file's bytes and the policy.
  They are cached **per file**, keyed on the content's sha256.
- **cross-module** rules (C1 via the class index; D4/D5/P2 via the
  program model) can change when *any* file changes, so their findings
  are cached under one **project hash** — the digest of every file's
  digest.

Every entry is guarded by a **policy fingerprint** covering the JSON
schema version, the active rule ids, the config (scopes + allowlists),
and the source bytes of the ``repro.analysis`` package itself: editing
a rule, a scope, or the engine invalidates the whole cache rather than
serving findings a different linter produced.

Cache hits and misses never change output: a warm run must be
byte-identical to a cold one (pinned by a test), which is why hit/miss
counters live on the result object but stay out of ``as_dict()``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.analysis.findings import Finding
from repro.analysis.source import Suppression

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.rules.base import Rule

CACHE_VERSION = "repro.analysis.cache.v1"
DEFAULT_CACHE_PATH = ".repro-analysis-cache.json"


def file_sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def project_sha(file_hashes: Mapping[str, str]) -> str:
    """One digest over every file's digest, order-independent."""
    digest = hashlib.sha256()
    for path in sorted(file_hashes):
        digest.update(path.encode("utf-8"))
        digest.update(b"\0")
        digest.update(file_hashes[path].encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def _analysis_package_sha() -> str:
    """Digest of the linter's own source: new linter, new cache."""
    pkg_dir = os.path.dirname(os.path.abspath(__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(pkg_dir):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            full = os.path.join(dirpath, name)
            digest.update(os.path.relpath(full, pkg_dir).encode("utf-8"))
            with open(full, "rb") as fh:
                digest.update(fh.read())
    return digest.hexdigest()


def policy_fingerprint(
    config: "AnalysisConfig", rules: Sequence["Rule"]
) -> str:
    from repro.analysis.engine import JSON_SCHEMA_VERSION

    payload = "\n".join(
        [
            CACHE_VERSION,
            JSON_SCHEMA_VERSION,
            ",".join(sorted(rule.rule_id for rule in rules)),
            repr(config),
            _analysis_package_sha(),
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def finding_to_dict(f: Finding) -> dict:
    """Lossless wire form (unlike ``Finding.as_dict``, keeps empties)."""
    return {
        "rule": f.rule,
        "path": f.path,
        "line": f.line,
        "col": f.col,
        "message": f.message,
        "detail": f.detail,
    }


def finding_from_dict(d: Mapping) -> Finding:
    return Finding(
        rule=d["rule"],
        path=d["path"],
        line=d["line"],
        col=d["col"],
        message=d["message"],
        detail=d["detail"],
    )


def suppression_to_dict(s: Suppression) -> dict:
    return {"rule": s.rule, "detail": s.detail, "reason": s.reason, "line": s.line}


def suppression_from_dict(d: Mapping) -> Suppression:
    return Suppression(
        rule=d["rule"], detail=d["detail"], reason=d["reason"], line=d["line"]
    )


def load_cache(path: str, fingerprint: str) -> dict:
    """Load the cache, or a fresh skeleton on any mismatch or damage."""
    fresh = {
        "version": CACHE_VERSION,
        "fingerprint": fingerprint,
        "files": {},
        "project": {},
    }
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return fresh
    if not isinstance(data, dict):
        return fresh
    if data.get("version") != CACHE_VERSION:
        return fresh
    if data.get("fingerprint") != fingerprint:
        return fresh
    if not isinstance(data.get("files"), dict) or not isinstance(
        data.get("project"), dict
    ):
        return fresh
    return data


def store_cache(path: str, cache: dict) -> None:
    """Atomic, sorted write; failures are silent (a cache is advisory)."""
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(cache, fh, sort_keys=True, separators=(",", ":"))
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass

"""The linter's finding model and its JSON wire format."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: Rule id (``D1``, ``C1``, ``S2``…).
        path: Module path relative to the scan root, posix-style.
        line: 1-based source line the finding anchors to.
        col: 0-based column.
        message: Human-readable statement of the violation.
        detail: Optional machine-matchable discriminator (e.g. the field
            name a snapshot misses); ``allow[C1:field]`` suppressions
            match against it.
        reason: Why the finding is tolerated — set only on suppressed or
            allowlisted findings, quoting the suppression comment or the
            allowlist entry.
    """

    rule: str
    path: str
    line: int
    col: int = 0
    message: str = ""
    detail: str = ""
    reason: str = ""

    def located(self) -> str:
        """``path:line`` anchor for terminal output."""
        return f"{self.path}:{self.line}"

    def as_dict(self) -> dict:
        out = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.detail:
            out["detail"] = self.detail
        if self.reason:
            out["reason"] = self.reason
        return out


@dataclass
class RuleInfo:
    """Registry metadata for one rule (used by ``--list-rules`` and docs)."""

    rule_id: str
    title: str
    protects: str = ""
    scopes: tuple[str, ...] = field(default_factory=tuple)

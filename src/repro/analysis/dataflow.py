"""Interprocedural nondeterminism taint analysis.

Built on the :mod:`repro.analysis.callgraph`, this module computes the
three whole-program facts the D4/D5/P2 rules report on:

- **taint** — which functions can reach a nondeterminism *source* (a
  wall-clock read, an unseeded RNG, builtin ``hash``, ``os.environ`` /
  ``os.urandom`` / ``uuid4`` / ``secrets``), and through which call
  chain. Taint never crosses a **barrier** module (``repro/obs/*`` —
  the sanctioned measurement boundary): a span reading the clock is the
  accounted exception, not a leak.
- **sink contexts** — which functions feed *persisted or emitted*
  output: ``snapshot()`` checkpoint payloads, canonical result
  payloads/digests, RDF emission — together with the chain from the
  sink root. Unordered iteration inside a sink context is how a hash
  seed leaks into bytes that two runs must agree on.
- **worker-reachable mutable globals** — module-level mutable objects
  mutated by code reachable from the multiprocess entrypoints
  (``worker_main``, ``*Spec.build``): each forked/spawned worker
  mutates its own copy and silently diverges from the parent.

All traversals run over sorted names, so results are independent of
module scan order.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.analysis.callgraph import CallGraph, FunctionNode, build_call_graph
from repro.analysis.classindex import MUTATOR_METHODS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.classindex import ClassIndex
    from repro.analysis.config import AnalysisConfig
    from repro.analysis.source import ParsedModule

__all__ = [
    "DEFAULT_BARRIERS",
    "GlobalMutation",
    "ProgramModel",
    "SinkContext",
    "TaintInfo",
    "TaintSource",
]

#: Modules taint does not propagate out of: the observability layer is
#: the one sanctioned consumer of the clock (D3 allowlists its clock
#: module), so reaching a source *through* it is the accounted
#: measurement path, not a determinism leak.
DEFAULT_BARRIERS: tuple[str, ...] = ("repro/obs/*",)

#: Wall/monotonic clock origins (mirrors rule D3).
CLOCK_ORIGINS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "datetime.datetime.today",
    }
)

#: Process-environment and entropy reads no syntactic rule covers.
ENV_ORIGINS = frozenset(
    {
        "os.environ",
        "os.getenv",
        "os.environb",
        "os.urandom",
        "os.getrandom",
        "os.getpid",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
    }
)

#: ``random``-module names that are safe at module level (mirrors D2).
_GLOBAL_RNG_SAFE = frozenset({"Random", "SystemRandom", "seed", "getstate", "setstate"})

#: Function names whose return value is persisted or emitted verbatim —
#: the roots sink-context propagation starts from. Functions in
#: ``repro/rdf/*`` are roots wholesale (triple emission order is the
#: store's input order).
SINK_ROOT_NAMES = frozenset(
    {
        "snapshot",
        "deterministic_payload",
        "canonical_payload",
        "result_document",
        "as_dict",
        "summary",
        "stats",
    }
)

_SINK_ROOT_MODULE_PATTERNS: tuple[str, ...] = ("repro/rdf/*",)

#: Worker entrypoint function names (module-level spawn targets).
_ENTRYPOINT_NAMES = frozenset({"worker_main"})

_SPEC_NAMES = frozenset({"PipelineSpec", "WorkerSpec"})


@dataclass(frozen=True)
class TaintSource:
    """One direct nondeterminism source inside one function."""

    kind: str  # "clock" | "rng" | "hash" | "env"
    origin: str  # dotted origin, e.g. "time.time"
    path: str
    line: int


@dataclass(frozen=True)
class TaintInfo:
    """Taint of one function: the chain of qnames down to the source.

    ``chain`` starts at the function itself and ends at the function
    that contains ``source`` directly.
    """

    chain: tuple[str, ...]
    source: TaintSource


@dataclass(frozen=True)
class SinkContext:
    """Why a function's output is persisted: the chain from a sink root."""

    chain: tuple[str, ...]  # root → … → this function


@dataclass(frozen=True)
class GlobalMutation:
    """One worker-reachable mutation of a module-level mutable global."""

    module_path: str
    name: str
    def_line: int
    mutator: str  # qname of the mutating function
    mutation_line: int
    entry_chain: tuple[str, ...]  # entrypoint → … → mutator


def _matches_any(path: str, patterns: Sequence[str]) -> bool:
    return any(fnmatchcase(path, pat) for pat in patterns)


class ProgramModel:
    """Whole-program facts shared by the D4/D5/P2 rules.

    Built once per engine run after every module is parsed; each rule's
    ``check(module)`` then just reads its precomputed slice. Scope
    patterns come from the run's :class:`AnalysisConfig` (rule D4's
    scope doubles as "the deterministic paths"), so fixture trees see
    the same semantics as ``src/``.
    """

    def __init__(
        self,
        modules: Sequence["ParsedModule"],
        index: "ClassIndex",
        config: "AnalysisConfig",
        barriers: Sequence[str] = DEFAULT_BARRIERS,
    ) -> None:
        self.modules = sorted(modules, key=lambda m: m.path)
        self.index = index
        self.config = config
        self.barriers = tuple(barriers)
        self.graph: CallGraph = build_call_graph(self.modules, index)
        self._sources: dict[str, tuple[TaintSource, ...]] = {}
        self._detect_sources()
        self.taint: dict[str, TaintInfo] = self._propagate_taint()
        self.sinks: dict[str, SinkContext] = self._propagate_sinks()
        self.mutations: tuple[GlobalMutation, ...] = self._worker_global_mutations()

    # ------------------------------------------------------------- scopes

    def in_deterministic_scope(self, path: str) -> bool:
        """Whether a module is on a byte-identity contract path (D4 scope)."""
        return self.config.in_scope("D4", path)

    def is_barrier(self, path: str) -> bool:
        return _matches_any(path, self.barriers)

    # ------------------------------------------------------------ sources

    def direct_sources(self, qname: str) -> tuple[TaintSource, ...]:
        return self._sources.get(qname, ())

    def _detect_sources(self) -> None:
        for fn in self.graph.iter_functions():
            scope = self.graph.scopes[fn.module_path]
            found: list[TaintSource] = []
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.Attribute, ast.Name)):
                    origin = scope.resolve_reference(node)
                    kind = self._reference_kind(origin)
                    if kind is not None:
                        found.append(
                            TaintSource(kind, origin, fn.module_path, node.lineno)
                        )
                if isinstance(node, ast.Call):
                    source = self._call_source(node, fn)
                    if source is not None:
                        found.append(source)
            if found:
                deduped = sorted(set(found), key=lambda s: (s.line, s.kind, s.origin))
                self._sources[fn.qname] = tuple(deduped)

    def _reference_kind(self, origin: str) -> str | None:
        if origin in CLOCK_ORIGINS:
            return "clock"
        if origin in ENV_ORIGINS:
            return "env"
        return None

    def _call_source(self, node: ast.Call, fn: FunctionNode) -> TaintSource | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "hash":
            return TaintSource("hash", "hash", fn.module_path, node.lineno)
        origin = self.graph.scopes[fn.module_path].resolve_reference(func)
        if origin in ("random.Random", "numpy.random.default_rng"):
            if not node.args and not node.keywords:
                return TaintSource("rng", origin, fn.module_path, node.lineno)
            return None
        if origin.startswith("random."):
            name = origin.split(".", 1)[1]
            if "." not in name and name not in _GLOBAL_RNG_SAFE:
                return TaintSource("rng", origin, fn.module_path, node.lineno)
        elif origin.startswith("numpy.random.") and origin.count(".") == 2:
            name = origin.rsplit(".", 1)[1]
            if name not in ("default_rng", "Generator", "SeedSequence"):
                return TaintSource("rng", origin, fn.module_path, node.lineno)
        return None

    # ---------------------------------------------------------- taint BFS

    def _propagate_taint(self) -> dict[str, TaintInfo]:
        taint: dict[str, TaintInfo] = {}
        frontier: list[str] = []
        for qname in sorted(self._sources):
            fn = self.graph.functions[qname]
            if self.is_barrier(fn.module_path):
                continue
            source = self._sources[qname][0]
            taint[qname] = TaintInfo(chain=(qname,), source=source)
            frontier.append(qname)
        reverse = self.graph.reverse_edges()
        while frontier:
            next_frontier: list[str] = []
            for qname in sorted(frontier):
                info = taint[qname]
                for caller, _site in reverse.get(qname, ()):
                    if caller in taint:
                        continue
                    if self.is_barrier(self.graph.functions[caller].module_path):
                        continue
                    taint[caller] = TaintInfo(
                        chain=(caller, *info.chain), source=info.source
                    )
                    next_frontier.append(caller)
            frontier = next_frontier
        return taint

    # ----------------------------------------------------------- sink BFS

    def _is_sink_root(self, fn: FunctionNode) -> bool:
        if fn.name in SINK_ROOT_NAMES:
            return True
        return _matches_any(fn.module_path, _SINK_ROOT_MODULE_PATTERNS)

    def _propagate_sinks(self) -> dict[str, SinkContext]:
        sinks: dict[str, SinkContext] = {}
        frontier: list[str] = []
        for fn in self.graph.iter_functions():
            if self.is_barrier(fn.module_path):
                continue
            if self._is_sink_root(fn):
                sinks[fn.qname] = SinkContext(chain=(fn.qname,))
                frontier.append(fn.qname)
        while frontier:
            next_frontier: list[str] = []
            for qname in sorted(frontier):
                context = sinks[qname]
                for site in self.graph.functions[qname].calls:
                    callee = site.callee
                    if callee in sinks or callee not in self.graph.functions:
                        continue
                    if self.is_barrier(self.graph.functions[callee].module_path):
                        continue
                    sinks[callee] = SinkContext(chain=(*context.chain, callee))
                    next_frontier.append(callee)
            frontier = next_frontier
        return sinks

    # -------------------------------------------------------- P2 analysis

    def _mutable_globals(self, module: "ParsedModule") -> dict[str, int]:
        """Module-level names bound to mutable containers → def line."""
        out: dict[str, int] = {}
        scope = self.graph.scopes[module.path]
        for stmt in module.tree.body:
            targets: list[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            else:
                continue
            value = stmt.value
            if value is None:
                continue
            ref = self.graph._type_from_value(value, scope, {})
            if ref.kind not in ("dict", "set", "list"):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue  # __all__ and friends: interpreter conventions
                out.setdefault(name, stmt.lineno)
        return out

    def _entrypoints(self) -> list[str]:
        """Worker entrypoints: spawn targets and spec build methods."""
        entries: set[str] = set()
        for fn in self.graph.iter_functions():
            if not fn.cls and fn.name in _ENTRYPOINT_NAMES:
                entries.add(fn.qname)
            if fn.cls.endswith("Spec") and fn.name == "build":
                entries.add(fn.qname)
        # Callables handed into spec constructors are shipped to workers.
        for fn in self.graph.iter_functions():
            scope = self.graph.scopes[fn.module_path]
            local_types = self.graph._local_types(fn, scope)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                head = self.graph._annotation_head(node.func)
                if head not in _SPEC_NAMES:
                    continue
                for value in [*node.args, *[kw.value for kw in node.keywords]]:
                    if isinstance(value, (ast.Name, ast.Attribute)):
                        target = self.graph._resolve_call(
                            value, fn, scope, local_types
                        )
                        if target is not None:
                            entries.add(target)
        return sorted(entries)

    def _reachable_from_entrypoints(self) -> dict[str, tuple[str, ...]]:
        """qname → chain (entrypoint → … → qname) for reachable functions."""
        chains: dict[str, tuple[str, ...]] = {}
        frontier: list[str] = []
        for entry in self._entrypoints():
            if entry in self.graph.functions and entry not in chains:
                chains[entry] = (entry,)
                frontier.append(entry)
        while frontier:
            next_frontier: list[str] = []
            for qname in sorted(frontier):
                chain = chains[qname]
                for site in self.graph.functions[qname].calls:
                    callee = site.callee
                    if callee in chains or callee not in self.graph.functions:
                        continue
                    chains[callee] = (*chain, callee)
                    next_frontier.append(callee)
            frontier = next_frontier
        return chains

    def _worker_global_mutations(self) -> tuple[GlobalMutation, ...]:
        reachable = self._reachable_from_entrypoints()
        out: list[GlobalMutation] = []
        by_path = {m.path: m for m in self.modules}
        for path in sorted(by_path):
            module = by_path[path]
            globals_here = self._mutable_globals(module)
            if not globals_here:
                continue
            for fn in self.graph.iter_functions():
                if fn.module_path != path or fn.qname not in reachable:
                    continue
                for name, line in sorted(_mutated_globals(fn).items()):
                    if name not in globals_here:
                        continue
                    out.append(
                        GlobalMutation(
                            module_path=path,
                            name=name,
                            def_line=globals_here[name],
                            mutator=fn.qname,
                            mutation_line=line,
                            entry_chain=reachable[fn.qname],
                        )
                    )
        # One finding per (module, global): keep the shortest entry chain.
        best: dict[tuple[str, str], GlobalMutation] = {}
        for mutation in out:
            key = (mutation.module_path, mutation.name)
            prior = best.get(key)
            if prior is None or len(mutation.entry_chain) < len(prior.entry_chain):
                best[key] = mutation
        return tuple(best[k] for k in sorted(best))

    # ------------------------------------------------------------ exports

    def display(self, qname: str) -> str:
        """``module.py::fn`` shortened to ``fn``/``Cls.fn`` with its module."""
        fn = self.graph.functions.get(qname)
        if fn is None:
            return qname
        return f"{fn.display} ({fn.module_path}:{fn.lineno})"

    def chain_text(self, chain: Sequence[str]) -> str:
        """Human chain: ``a → b → c`` using bare display names."""
        parts = []
        for qname in chain:
            fn = self.graph.functions.get(qname)
            parts.append(fn.display if fn is not None else qname)
        return " → ".join(parts)

    def graph_json(self) -> dict:
        """The taint-graph artifact (``--json --graph``): every function,
        its resolved call edges, direct sources, taint chain and sink
        context — sorted and reproducible byte-for-byte."""
        functions = []
        for fn in self.graph.iter_functions():
            taint = self.taint.get(fn.qname)
            sink = self.sinks.get(fn.qname)
            entry: dict = {
                "qname": fn.qname,
                "path": fn.module_path,
                "line": fn.lineno,
                "calls": [site.callee for site in fn.calls],
            }
            sources = self.direct_sources(fn.qname)
            if sources:
                entry["sources"] = [
                    {"kind": s.kind, "origin": s.origin, "line": s.line}
                    for s in sources
                ]
            if taint is not None:
                entry["taint"] = {
                    "chain": list(taint.chain),
                    "source": {
                        "kind": taint.source.kind,
                        "origin": taint.source.origin,
                        "path": taint.source.path,
                        "line": taint.source.line,
                    },
                }
            if sink is not None:
                entry["sink_chain"] = list(sink.chain)
            functions.append(entry)
        return {
            "barriers": list(self.barriers),
            "deterministic_scopes": sorted(self.config.scopes.get("D4", ())),
            "functions": functions,
        }

    # ----------------------------------------------------------- per-file

    def functions_in(self, path: str) -> Iterator[FunctionNode]:
        for fn in self.graph.iter_functions():
            if fn.module_path == path:
                yield fn


def _mutated_globals(fn: FunctionNode) -> dict[str, int]:
    """Names a function mutates that are not locally bound → first line."""
    node = fn.node
    local: set[str] = set()
    declared_global: set[str] = set()
    args = node.args  # type: ignore[attr-defined]
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ]:
        local.add(arg.arg)
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Global):
            declared_global.update(stmt.names)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(stmt.target):
                if isinstance(name_node, ast.Name):
                    local.add(name_node.id)
        elif isinstance(stmt, ast.comprehension):
            for name_node in ast.walk(stmt.target):
                if isinstance(name_node, ast.Name):
                    local.add(name_node.id)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name_node in ast.walk(item.optional_vars):
                        if isinstance(name_node, ast.Name):
                            local.add(name_node.id)
    local -= declared_global

    out: dict[str, int] = {}

    def note(name: str, line: int) -> None:
        if name not in local:
            out.setdefault(name, line)

    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Call):
            func = stmt.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
                and isinstance(func.value, ast.Name)
            ):
                note(func.value.id, stmt.lineno)
        elif isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    note(target.value.id, stmt.lineno)
                elif isinstance(target, ast.Name) and target.id in declared_global:
                    out.setdefault(target.id, stmt.lineno)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    note(target.value.id, stmt.lineno)
    return out

"""Parsed source modules and inline-suppression extraction.

A suppression is a comment of the form::

    # lint: allow[D1] short reason why this hit is acceptable
    # lint: allow[C1:field_name] reason scoped to one finding detail

placed on the offending line or on the line directly above it. The
reason is **mandatory** — a reasonless ``allow`` does not suppress and
is itself reported (rule ``S1``); an ``allow`` that matches no finding
is reported too (rule ``S2``), so stale suppressions cannot linger.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

_ALLOW_RE = re.compile(
    r"#\s*lint:\s*allow\[(?P<rule>[A-Z]\d+)(?::(?P<detail>[A-Za-z0-9_.*-]+))?\]"
    r"[ \t]*(?P<reason>[^#\n]*)"
)


@dataclass
class Suppression:
    """One parsed ``lint: allow`` comment."""

    rule: str
    detail: str
    reason: str
    line: int
    used: bool = False

    def matches(self, rule: str, line: int, detail: str) -> bool:
        """Whether this suppression covers a finding.

        Covers the comment's own line and the line below it (so a
        standalone comment shields the statement it precedes). A
        suppression with a detail only covers findings carrying that
        exact detail; without one it covers any finding of the rule.
        """
        if self.rule != rule or not self.reason:
            return False
        if line not in (self.line, self.line + 1):
            return False
        return self.detail in ("", detail)


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: str  # module path relative to the scan root, posix-style
    abspath: str
    text: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()


def parse_suppressions(text: str) -> list[Suppression]:
    """Extract every ``lint: allow`` comment with its line number.

    Only real ``COMMENT`` tokens count — the same directive quoted in a
    docstring or string literal is prose, not a suppression.
    """
    out: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for token in tokens:
        if token.type != tokenize.COMMENT or "lint:" not in token.string:
            continue
        match = _ALLOW_RE.search(token.string)
        if match is None:
            continue
        out.append(
            Suppression(
                rule=match.group("rule"),
                detail=match.group("detail") or "",
                reason=(match.group("reason") or "").strip(),
                line=token.start[0],
            )
        )
    return out


def parse_module(abspath: str, rel_path: str, text: str) -> ParsedModule:
    """Parse one file into the shared per-module analysis input."""
    tree = ast.parse(text, filename=abspath)
    return ParsedModule(
        path=rel_path,
        abspath=abspath,
        text=text,
        tree=tree,
        suppressions=parse_suppressions(text),
    )

"""P1: nothing unpicklable may flow into the multi-process specs.

``PipelineSpec`` and ``WorkerSpec`` are shipped to worker processes by
pickling (spawn-safe by design, see :mod:`repro.runtime.worker`). A
lambda or a function defined inside another function cannot be pickled;
passing one compiles fine and every single-process test passes, then
the first real ``WorkerPool`` run dies at spawn time. This rule rejects
the pattern at the call site: arguments to spec construction must be
data or module-level callables.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.classindex import ClassIndex
    from repro.analysis.source import ParsedModule

#: Constructors whose arguments must pickle (spawned across processes).
_SPEC_NAMES = frozenset({"PipelineSpec", "WorkerSpec"})


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _local_unpicklables(scope: ast.AST) -> dict[str, str]:
    """Names bound to lambdas or nested ``def``s inside one function scope."""
    out: dict[str, str] = {}
    for stmt in ast.walk(scope):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt is not scope:
            out[stmt.name] = "function defined inside another function"
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Lambda):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = "name bound to a lambda"
    return out


class PickleSafetyRule(Rule):
    rule_id = "P1"
    title = "unpicklable callable passed into PipelineSpec/WorkerSpec"
    protects = "PR 3: specs are pickled to spawned worker processes"

    def check(self, module: "ParsedModule", index: "ClassIndex") -> Iterable[Finding]:
        # Walk function scopes so closure-bound names can be resolved;
        # module level gets an empty local map (top-level defs pickle).
        yield from self._check_scope(module, module.tree, {})
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(module, node, _local_unpicklables(node))

    def _check_scope(
        self, module: "ParsedModule", scope: ast.AST, local_bad: dict
    ) -> Iterable[Finding]:
        for node in self._direct_calls(scope):
            if _call_name(node.func) not in _SPEC_NAMES:
                continue
            spec = _call_name(node.func)
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                yield from self._check_value(module, spec, value, local_bad)

    def _direct_calls(self, scope: ast.AST) -> Iterable[ast.Call]:
        """Calls in this scope, not descending into nested functions."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_value(
        self, module: "ParsedModule", spec: str, value: ast.expr, local_bad: dict
    ) -> Iterable[Finding]:
        if isinstance(value, ast.Lambda):
            yield self.finding(
                module,
                value,
                f"lambda passed into {spec}(): specs are pickled to spawned "
                "workers and lambdas cannot be pickled; use a module-level "
                "function",
                detail="lambda",
            )
        elif isinstance(value, ast.Name) and value.id in local_bad:
            yield self.finding(
                module,
                value,
                f"{value.id!r} ({local_bad[value.id]}) passed into {spec}(): "
                "specs are pickled to spawned workers; use a module-level "
                "function",
                detail=value.id,
            )

"""Rule interface and shared AST helpers."""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.classindex import ClassIndex
    from repro.analysis.source import ParsedModule


class Rule:
    """One checkable invariant.

    Subclasses set ``rule_id``/``title``/``protects`` and implement
    :meth:`check`, yielding findings for one module. Rules are pure
    functions of the parsed source — suppression and allowlisting happen
    in the engine, so a rule never needs to know about either.
    """

    rule_id: str = ""
    title: str = ""
    #: Which contract the rule protects (shown by ``--list-rules``).
    protects: str = ""
    #: Whole-program rules additionally receive a
    #: :class:`~repro.analysis.dataflow.ProgramModel` via :meth:`prepare`
    #: before any ``check`` call; the engine builds the model once per run.
    whole_program: bool = False
    #: True when ``check`` reads state from *other* modules (the class
    #: index, the program model) — such findings cannot be cached per
    #: file on that file's content hash alone.
    cross_module: bool = False

    def prepare(self, program: object) -> None:
        """Receive the whole-program model (no-op for local rules)."""

    def check(self, module: "ParsedModule", index: "ClassIndex") -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: "ParsedModule",
        node: ast.AST,
        message: str,
        detail: str = "",
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            detail=detail,
        )


class ImportMap:
    """Resolves names in one module back to the modules they came from.

    Tracks ``import x [as y]`` and ``from x import a [as b]`` so a rule
    can ask "what dotted origin does this call expression have?" —
    e.g. ``perf_counter()`` after ``from time import perf_counter``
    resolves to ``time.perf_counter``, and ``np.random.default_rng``
    after ``import numpy as np`` resolves to ``numpy.random.default_rng``.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.modules: dict[str, str] = {}  # local alias -> module dotted path
        self.names: dict[str, str] = {}  # local name -> origin dotted path
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve_call(self, func: ast.expr) -> str:
        """Dotted origin of a call target, or ``""`` when unresolvable."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return ""
        head = node.id
        if head in self.modules:
            parts.append(self.modules[head])
        elif head in self.names:
            parts.append(self.names[head])
        else:
            parts.append(head)
        return ".".join(reversed(parts))


def self_attr_base(node: ast.expr) -> str | None:
    """The ``self`` attribute a nested access chain is rooted at.

    ``self._panes[k].append`` → ``_panes``; ``self._gen.config`` →
    ``_gen``; returns ``None`` for chains not rooted at ``self``.
    """
    while True:
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None

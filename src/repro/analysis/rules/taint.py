"""Whole-program taint rules: D4, D5, P2.

Unlike the syntactic rules, these consume the
:class:`~repro.analysis.dataflow.ProgramModel` the engine builds after
parsing every module — a call graph plus interprocedural taint,
sink-context and worker-reachability facts. The engine calls
:meth:`Rule.prepare` once with the model; ``check(module)`` then only
reads the precomputed slice for that module, so per-module dispatch,
scoping, suppression and allowlisting behave exactly as for D1–D3.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.callgraph import FunctionNode, TypeRef
from repro.analysis.dataflow import ProgramModel
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.classindex import ClassIndex
    from repro.analysis.source import ParsedModule

#: Iteration wrappers that make order immaterial: ``sorted`` imposes an
#: order; ``min``/``max``/``any``/``all``/``len`` are order-free folds;
#: rebuilding a ``set``/``frozenset`` stays unordered data. ``sum`` is
#: deliberately *not* here: float addition is order-sensitive.
_ORDER_FREE_WRAPPERS = frozenset(
    {"sorted", "min", "max", "any", "all", "len", "set", "frozenset"}
)

#: Calls that realize an iterable into an ordered result.
_ORDERING_CALLS = frozenset({"list", "tuple", "sum"})

_DICT_VIEWS = frozenset({"keys", "values", "items"})

#: Source-kind → human phrasing for D4 messages.
_KIND_TEXT = {
    "clock": "a wall-clock read",
    "rng": "an unseeded RNG",
    "hash": "builtin hash()",
    "env": "a process-environment read",
}


class WholeProgramRule(Rule):
    """Base for rules that need the :class:`ProgramModel`."""

    whole_program = True
    cross_module = True

    def __init__(self) -> None:
        self._program: ProgramModel | None = None

    def prepare(self, program: ProgramModel) -> None:
        self._program = program

    @property
    def program(self) -> ProgramModel:
        if self._program is None:  # pragma: no cover - engine always prepares
            raise RuntimeError(f"{self.rule_id}: prepare() was not called")
        return self._program


class TransitiveNondeterminismRule(WholeProgramRule):
    """D4: a deterministic-path function reaches nondeterminism transitively.

    D1–D3 flag a source written *on the line*; D4 flags the call chain —
    a clock read two helpers deep, an unseeded RNG in a utility module
    the pipeline calls into. The finding prints the full chain down to
    the source so the fix site is obvious. Taint never crosses the
    ``repro.obs`` barrier: measurement through the sanctioned clock
    boundary is accounted, not leaked.
    """

    rule_id = "D4"
    title = "transitively-reachable nondeterminism in a deterministic path"
    protects = "PR 1/3/4: byte-identity holds through every helper, not just top frames"

    def check(self, module: "ParsedModule", index: "ClassIndex") -> Iterable[Finding]:
        program = self.program
        for fn in program.functions_in(module.path):
            # Direct env-kind sources: no syntactic rule covers them, so
            # D4 reports them at depth zero.
            for source in program.direct_sources(fn.qname):
                if source.kind == "env":
                    yield Finding(
                        rule=self.rule_id,
                        path=module.path,
                        line=source.line,
                        message=(
                            f"{fn.display} reads {source.origin} — "
                            "a process-environment value in a deterministic "
                            "path; two runs (or two workers) see different "
                            "values. Thread the value through config/spec "
                            "instead"
                        ),
                        detail=source.origin,
                    )
            yield from self._transitive_findings(program, module, fn)

    def _transitive_findings(
        self, program: ProgramModel, module: "ParsedModule", fn: FunctionNode
    ) -> Iterator[Finding]:
        for site in fn.calls:
            callee = program.graph.functions.get(site.callee)
            if callee is None:
                continue
            info = program.taint.get(site.callee)
            if info is None:
                continue
            # When the callee is itself a deterministic-path function
            # with no direct source, *it* carries the finding nearer the
            # source — reporting here too would duplicate every chain
            # once per caller.
            if (
                program.in_deterministic_scope(callee.module_path)
                and not program.direct_sources(site.callee)
            ):
                continue
            source = info.source
            chain = program.chain_text((fn.qname, *info.chain))
            yield Finding(
                rule=self.rule_id,
                path=module.path,
                line=site.line,
                col=site.col,
                message=(
                    f"{fn.display} reaches {_KIND_TEXT.get(source.kind, source.kind)} "
                    f"({source.origin}, {source.path}:{source.line}) through the "
                    f"call chain {chain}; deterministic paths must not reach "
                    "nondeterminism at any depth"
                ),
                detail=f"{callee.name}->{source.origin}",
            )


class UnorderedIterationRule(WholeProgramRule):
    """D5: unordered-iteration order flowing into persisted/emitted output.

    Inside a *sink context* — ``snapshot()`` checkpoint payloads,
    canonical result payloads/digests, aggregate summaries, RDF emission,
    and everything they call — iterating a ``set`` leaks the interpreter's
    hash salt into bytes two runs must agree on, and iterating a mutable
    ``dict`` leaks insertion history that a crash-resumed run can rebuild
    in a different order. Wrap the iterable in ``sorted(...)`` or fold
    order-insensitively (``min``/``max``/``any``/``all``).
    """

    rule_id = "D5"
    title = "unordered iteration flowing into persisted/emitted output"
    protects = "PR 1/3/6: snapshot/digest/RDF bytes independent of hash salt and history"

    def check(self, module: "ParsedModule", index: "ClassIndex") -> Iterable[Finding]:
        program = self.program
        for fn in program.functions_in(module.path):
            sink = program.sinks.get(fn.qname)
            if sink is None:
                continue
            root = program.graph.functions.get(sink.chain[0])
            root_text = root.display if root is not None else sink.chain[0]
            chain_text = program.chain_text(sink.chain)
            scope = program.graph.scopes[fn.module_path]
            local_types = program.graph._local_types(fn, scope)
            for expr, desc, kind in _unordered_iterations(
                program, fn, local_types
            ):
                if kind == "set":
                    message = (
                        f"iteration over {desc} (a set: order follows the "
                        "interpreter's hash salt) flows into "
                        f"{root_text}() output — wrap it in sorted(...) "
                        f"(sink chain: {chain_text})"
                    )
                else:
                    message = (
                        f"iteration order of {desc} (a dict: insertion order, "
                        "which a resumed run can rebuild differently) flows "
                        f"into {root_text}() output — iterate sorted keys "
                        f"(sink chain: {chain_text})"
                    )
                yield Finding(
                    rule=self.rule_id,
                    path=module.path,
                    line=expr.lineno,
                    col=expr.col_offset,
                    message=message,
                    detail=desc,
                )


def _unordered_iterations(
    program: ProgramModel,
    fn: FunctionNode,
    local_types: dict[str, TypeRef],
) -> Iterator[tuple[ast.expr, str, str]]:
    """Yield (iter-expr, description, "set"/"dict") for unordered iterations."""
    seen: set[tuple[int, int]] = set()

    def classify(expr: ast.expr) -> None:
        key = (expr.lineno, expr.col_offset)
        if key in seen:
            return
        # sorted(...) / min(...) / any(...)… impose or ignore order.
        if isinstance(expr, ast.Call):
            head = _head_name(expr.func)
            if head in _ORDER_FREE_WRAPPERS:
                return
        ref, desc = _iterable_type(program, fn, expr, local_types)
        if ref.kind == "set":
            seen.add(key)
            yield_buffer.append((expr, desc, "set"))
        elif ref.kind == "dict":
            seen.add(key)
            yield_buffer.append((expr, desc, "dict"))

    yield_buffer: list[tuple[ast.expr, str, str]] = []
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            classify(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                classify(gen.iter)
        elif isinstance(node, ast.Call):
            head = _head_name(node.func)
            if head in _ORDERING_CALLS and len(node.args) == 1:
                arg = node.args[0]
                # Generator args are handled by the comprehension walk.
                if not isinstance(arg, ast.GeneratorExp):
                    classify(arg)
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and len(node.args) == 1
                and not isinstance(node.args[0], ast.GeneratorExp)
            ):
                classify(node.args[0])
    yield from yield_buffer


def _head_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _iterable_type(
    program: ProgramModel,
    fn: FunctionNode,
    expr: ast.expr,
    local_types: dict[str, TypeRef],
) -> tuple[TypeRef, str]:
    """Inferred type of an iteration target plus a printable description."""
    graph = program.graph
    scope = graph.scopes[fn.module_path]
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        if expr.func.attr in _DICT_VIEWS and not expr.args:
            base_ref, base_desc = _iterable_type(
                program, fn, expr.func.value, local_types
            )
            if base_ref.kind == "dict":
                return base_ref, f"{base_desc}.{expr.func.attr}()"
            return TypeRef(), base_desc
    receiver = graph._receiver_type(expr, fn, scope, local_types)
    if receiver.kind != "unknown":
        return receiver, _describe(expr)
    inferred = graph._type_from_value(expr, scope, local_types)
    return inferred, _describe(expr)


def _describe(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        inner = _describe(expr.value)
        return f"{inner}.{expr.attr}" if inner else expr.attr
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set literal"
    if isinstance(expr, ast.Call):
        head = _head_name(expr.func)
        return f"{head}(...)" if head else "a call result"
    if isinstance(expr, ast.Subscript):
        return _describe(expr.value) + "[...]"
    return "the iterable"


class WorkerGlobalRule(WholeProgramRule):
    """P2: module-level mutable globals reachable from worker entrypoints.

    A module-level ``dict``/``list``/``set`` mutated by code that a
    spawned worker executes is fork/spawn divergence in waiting: each
    worker process mutates its *own copy* of the module, the parent sees
    none of it, and merged results silently disagree with a
    single-process run. State belongs on the pipeline (checkpointed) or
    in the spec (shipped explicitly).
    """

    rule_id = "P2"
    title = "mutable module global reachable from a worker entrypoint"
    protects = "PR 3: workers share nothing implicitly; all state is spec or checkpoint"

    def check(self, module: "ParsedModule", index: "ClassIndex") -> Iterable[Finding]:
        program = self.program
        for mutation in program.mutations:
            if mutation.module_path != module.path:
                continue
            mutator = program.graph.functions.get(mutation.mutator)
            mutator_text = (
                mutator.display if mutator is not None else mutation.mutator
            )
            chain = program.chain_text(mutation.entry_chain)
            yield Finding(
                rule=self.rule_id,
                path=module.path,
                line=mutation.def_line,
                message=(
                    f"module-level mutable global {mutation.name!r} is mutated "
                    f"by {mutator_text} ({mutation.module_path}:"
                    f"{mutation.mutation_line}), reachable from a worker "
                    f"entrypoint via {chain}; each spawned worker mutates its "
                    "own module copy and diverges — move the state onto the "
                    "pipeline/spec or make the global immutable"
                ),
                detail=mutation.name,
            )

"""Determinism rules: stable hashing, seeded RNG, clock discipline.

These protect the PR 3 contract (identical output under any
``PYTHONHASHSEED``, across worker processes) and the PR 1/4 contract
(crash-resume and batch runs byte-identical to an uninterrupted
per-record run). All three invariants die silently: the code works on
every developer machine and diverges only between *runs*.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.findings import Finding
from repro.analysis.rules.base import ImportMap, Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.classindex import ClassIndex
    from repro.analysis.source import ParsedModule


class BuiltinHashRule(Rule):
    """D1: builtin ``hash()`` is salted per interpreter — never in src/."""

    rule_id = "D1"
    title = "builtin hash() is PYTHONHASHSEED-salted; use repro.hashing"
    protects = "PR 3: identical routing/seeding across processes and runs"

    def check(self, module: "ParsedModule", index: "ClassIndex") -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    module,
                    node,
                    "builtin hash() is salted per interpreter "
                    "(PYTHONHASHSEED); use repro.hashing.stable_hash",
                )


#: ``random``-module functions that draw from the *global*, unseeded RNG.
_GLOBAL_RNG_SAFE = frozenset({"Random", "SystemRandom", "seed", "getstate", "setstate"})


class UnseededRngRule(Rule):
    """D2: every RNG in a deterministic path must be explicitly seeded."""

    rule_id = "D2"
    title = "unseeded RNG in a deterministic path"
    protects = "PR 1/3/4: byte-identical replay, chaos injection and shedding"

    def check(self, module: "ParsedModule", index: "ClassIndex") -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = imports.resolve_call(node.func)
            if origin in ("random.Random", "numpy.random.default_rng"):
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        f"{origin}() without a seed draws OS entropy; "
                        "pass an explicit seed (derive per-stream seeds "
                        "via repro.hashing.stable_hash)",
                        detail=origin,
                    )
            elif origin.startswith("random."):
                name = origin.split(".", 1)[1]
                if "." not in name and name not in _GLOBAL_RNG_SAFE:
                    yield self.finding(
                        module,
                        node,
                        f"module-level {origin}() uses the shared unseeded "
                        "global RNG; construct random.Random(seed) instead",
                        detail=origin,
                    )
            elif origin.startswith("numpy.random.") and origin.count(".") == 2:
                name = origin.rsplit(".", 1)[1]
                if name not in ("default_rng", "Generator", "SeedSequence"):
                    yield self.finding(
                        module,
                        node,
                        f"legacy global {origin}() is unseeded shared state; "
                        "use numpy.random.default_rng(seed)",
                        detail=origin,
                    )


#: Call origins that read wall or monotonic clocks.
_CLOCK_ORIGINS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "datetime.datetime.today",
    }
)


class WallClockRule(Rule):
    """D3: clock reads live in ``repro.obs``; everything else imports them.

    A raw ``time.time()`` in a pipeline stage ends up inside payloads or
    control flow and breaks run-to-run equivalence; latency measurement
    is legitimate but must flow through :func:`repro.obs.clock.monotonic`
    so the one allowlisted module is also the one place instrumentation
    cost is accounted.
    """

    rule_id = "D3"
    title = "wall-clock read outside repro.obs"
    protects = "PR 1/2/4: deterministic payloads; one accounted clock boundary"

    def check(self, module: "ParsedModule", index: "ClassIndex") -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        # References, not calls: `pc = time.perf_counter` smuggles the
        # clock past a call-only check, so any mention of a banned
        # origin — called, aliased, passed as a default factory — counts.
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            origin = imports.resolve_call(node)
            if origin in _CLOCK_ORIGINS:
                yield self.finding(
                    module,
                    node,
                    f"{origin} outside repro.obs: use "
                    "repro.obs.clock.monotonic() for measurement; "
                    "deterministic paths must not read clocks at all",
                    detail=origin,
                )

"""C1: snapshot/restore coverage for checkpointable state.

The PR 1 recovery contract — crash-resume byte-identical to an
uninterrupted run — holds only if every operator's ``snapshot()``
captures *all* of its mutable state and ``restore()`` reinstates all of
it. A field added to an operator but forgotten in either method is
invisible to every unit test that doesn't crash at exactly the right
record; this rule makes the omission a lint error instead.

What counts as **mutable state**: a field assigned in ``__init__`` and
then written again outside it — rebound, aug-assigned, item-assigned,
deleted, or mutated through a known container method
(:data:`repro.analysis.classindex.MUTATOR_METHODS`). Config captured at
construction and never touched again is not state and is not required
in snapshots.

Checked shapes:

- a class defining both methods must reference each mutable field in
  both (``self.field`` anywhere in the body, including tuple unpacking);
- a class using :class:`repro.streams.checkpoint.StatefulMixin` must
  list each mutable field in its literal ``_STATE_FIELDS`` tuple;
- a class defining one method without the other is always wrong;
- a class deriving from ``Operator`` with mutable state of its own must
  define the pair, use the mixin, or inherit a ``snapshot`` that
  demonstrably covers its fields — the stateless ``Operator`` default
  (``return None``) covers nothing.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.classindex import ClassInfo, referenced_self_attrs
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.classindex import ClassIndex
    from repro.analysis.source import ParsedModule

#: Root base class of the operator protocol (repro.streams.operators).
_OPERATOR_ROOT = "Operator"
#: The dict-shaped checkpoint helper (repro.streams.checkpoint).
_STATEFUL_MIXIN = "StatefulMixin"


def _uses_dynamic_state(func: ast.FunctionDef) -> bool:
    """Snapshot/restore driven by ``getattr(self, name)`` over a field list."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("getattr", "setattr")
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == "self"
        ):
            return True
    return False


class SnapshotCoverageRule(Rule):
    rule_id = "C1"
    title = "snapshot()/restore() must cover every mutable field"
    protects = "PR 1/3: crash-resume byte-identical to an uninterrupted run"
    # Inherited snapshot/restore resolve through the class index, so a
    # finding here can change when a *base class* in another file does.
    cross_module = True

    def check(self, module: "ParsedModule", index: "ClassIndex") -> Iterable[Finding]:
        for info in index.by_module.get(module.path, ()):
            yield from self._check_class(module, index, info)

    def _check_class(
        self, module: "ParsedModule", index: "ClassIndex", info: ClassInfo
    ) -> Iterable[Finding]:
        has_snapshot = "snapshot" in info.methods
        has_restore = "restore" in info.methods
        if has_snapshot != has_restore:
            present, missing = (
                ("snapshot", "restore") if has_snapshot else ("restore", "snapshot")
            )
            yield self.finding(
                module,
                info.methods[present],
                f"{info.name} defines {present}() without {missing}(): "
                "the checkpoint protocol requires the pair",
                detail=info.name,
            )
            return
        mixin_fields = self._mixin_fields(index, info)
        if has_snapshot:
            yield from self._check_pair_coverage(module, info)
        elif mixin_fields is not None:
            for field in sorted(info.stateful_fields):
                if field not in mixin_fields:
                    yield self.finding(
                        module,
                        info.node,
                        f"{info.name}._STATE_FIELDS omits mutable field "
                        f"{field!r}; its state would vanish on restore",
                        detail=field,
                    )
        else:
            yield from self._check_operator_without_pair(module, index, info)

    def _mixin_fields(
        self, index: "ClassIndex", info: ClassInfo
    ) -> "tuple[str, ...] | None":
        """Combined ``_STATE_FIELDS`` when the class uses the mixin."""
        chain = [info] + index.ancestors(info)
        if not any(c.name == _STATEFUL_MIXIN for c in chain):
            return None
        fields: list[str] = []
        for c in chain:
            fields.extend(c.state_fields_literal)
        return tuple(fields)

    def _check_pair_coverage(
        self, module: "ParsedModule", info: ClassInfo
    ) -> Iterable[Finding]:
        snapshot = info.methods["snapshot"]
        restore = info.methods["restore"]
        if not isinstance(snapshot, ast.FunctionDef) or not isinstance(
            restore, ast.FunctionDef
        ):
            return
        # A getattr/setattr loop covers exactly the fields its driving
        # literal (_STATE_FIELDS / _STATEFUL_COMPONENTS) names — the
        # union with directly-referenced attrs handles mixed shapes.
        covered_snapshot = referenced_self_attrs(snapshot) | set(
            info.state_fields_literal
        )
        covered_restore = referenced_self_attrs(restore) | set(
            info.state_fields_literal
        )
        for field in sorted(info.stateful_fields):
            if field not in covered_snapshot:
                yield self.finding(
                    module,
                    snapshot,
                    f"{info.name}.snapshot() never references mutable field "
                    f"{field!r}; a checkpoint would silently drop it",
                    detail=field,
                )
            if field not in covered_restore:
                yield self.finding(
                    module,
                    restore,
                    f"{info.name}.restore() never references mutable field "
                    f"{field!r}; resume would keep stale in-memory state",
                    detail=field,
                )

    def _check_operator_without_pair(
        self, module: "ParsedModule", index: "ClassIndex", info: ClassInfo
    ) -> Iterable[Finding]:
        if not info.stateful_fields:
            return
        if not index.derives_from(info, _OPERATOR_ROOT):
            return
        # Nearest ancestor that defines snapshot decides coverage.
        provider: ClassInfo | None = None
        for ancestor in index.ancestors(info):
            if "snapshot" in ancestor.methods:
                provider = ancestor
                break
        if provider is None or provider.name == _OPERATOR_ROOT:
            yield self.finding(
                module,
                info.node,
                f"operator {info.name} has mutable state "
                f"({', '.join(sorted(info.stateful_fields))}) but no "
                "snapshot()/restore(); checkpoints would lose its state",
                detail=info.name,
            )
            return
        snapshot = provider.methods["snapshot"]
        if not isinstance(snapshot, ast.FunctionDef) or _uses_dynamic_state(snapshot):
            return
        covered = referenced_self_attrs(snapshot) | set(
            provider.state_fields_literal
        )
        for field in sorted(info.stateful_fields):
            if field not in covered:
                yield self.finding(
                    module,
                    info.node,
                    f"operator {info.name} adds mutable field {field!r} but "
                    f"inherits snapshot() from {provider.name}, which does "
                    "not capture it",
                    detail=field,
                )

"""Rule registry."""

from __future__ import annotations

from repro.analysis.rules.base import Rule
from repro.analysis.rules.contracts import SnapshotCoverageRule
from repro.analysis.rules.deprecation import DeprecatedApiRule
from repro.analysis.rules.determinism import (
    BuiltinHashRule,
    UnseededRngRule,
    WallClockRule,
)
from repro.analysis.rules.naming import MetricNameRule
from repro.analysis.rules.pickle_safety import PickleSafetyRule
from repro.analysis.rules.taint import (
    TransitiveNondeterminismRule,
    UnorderedIterationRule,
    WorkerGlobalRule,
)

#: Every shipped rule, in reporting order.
ALL_RULES: tuple[Rule, ...] = (
    BuiltinHashRule(),
    UnseededRngRule(),
    WallClockRule(),
    TransitiveNondeterminismRule(),
    UnorderedIterationRule(),
    SnapshotCoverageRule(),
    PickleSafetyRule(),
    WorkerGlobalRule(),
    MetricNameRule(),
    DeprecatedApiRule(),
)


def rule_ids() -> list[str]:
    return [rule.rule_id for rule in ALL_RULES]


__all__ = ["Rule", "ALL_RULES", "rule_ids"]

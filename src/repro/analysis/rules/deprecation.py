"""O2: no new code on deprecated imports or run-family entry points.

Deprecations only work if the tree stops feeding them: a
``DeprecationWarning`` at runtime is easy to miss in a benchmark or a
worker process, and every fresh caller of a shim extends its life. This
rule flags, at lint time,

- imports of deprecated modules (``repro.streams.metrics`` — moved to
  :mod:`repro.obs`), and
- calls to the deprecated ``MobilityPipeline`` run-family methods
  (``run_batched``, ``run_with_checkpoints``,
  ``run_batches_with_checkpoints``, ``resume_from_checkpoint``) — all
  collapsed into the unified :meth:`~repro.core.pipeline.MobilityPipeline.run`.

Method calls are matched by attribute name (the linter is per-module and
untyped); the names are specific enough that a false positive is far
likelier to be a real migration target than an unrelated API. Where a
call is legitimate — e.g. a test pinning the shim's behaviour — suppress
it with a reasoned inline comment::

    # lint: allow[O2] pins the deprecated shim's warning contract

A reasonless ``allow`` suppresses nothing (rule S1), so every surviving
caller of a deprecated entry point carries its own justification.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable

from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.classindex import ClassIndex
    from repro.analysis.source import ParsedModule

#: Deprecated module → its replacement (flagged on any import form).
DEPRECATED_MODULES: dict[str, str] = {
    "repro.streams.metrics": "repro.obs",
}

#: Deprecated method name → the unified-run spelling that replaces it.
DEPRECATED_ENTRYPOINTS: dict[str, str] = {
    "run_batched": "run(reports, batch=BatchOptions(size=...))",
    "run_with_checkpoints": "run(reports, checkpoints=CheckpointOptions(...))",
    "run_batches_with_checkpoints": (
        "run(recordbatches(batches), checkpoints=CheckpointOptions(...))"
    ),
    "resume_from_checkpoint": (
        "run(reports, checkpoints=CheckpointOptions(..., resume=True))"
    ),
}


class DeprecatedApiRule(Rule):
    rule_id = "O2"
    title = "import or call of a deprecated module/entry point"
    protects = "PR 6: deprecated shims shrink instead of growing callers"

    def check(self, module: "ParsedModule", index: "ClassIndex") -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    replacement = DEPRECATED_MODULES.get(alias.name)
                    if replacement is not None:
                        yield self.finding(
                            module,
                            node,
                            f"import of deprecated module {alias.name!r}; "
                            f"use {replacement}",
                            detail=alias.name,
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                targets = [node.module] + [
                    f"{node.module}.{alias.name}" for alias in node.names
                ]
                for dotted in targets:
                    replacement = DEPRECATED_MODULES.get(dotted)
                    if replacement is not None:
                        yield self.finding(
                            module,
                            node,
                            f"import from deprecated module {dotted!r}; "
                            f"use {replacement}",
                            detail=dotted,
                        )
                        break
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in DEPRECATED_ENTRYPOINTS
            ):
                name = node.func.attr
                yield self.finding(
                    module,
                    node,
                    f"call to deprecated entry point {name!r}; use "
                    f"{DEPRECATED_ENTRYPOINTS[name]}",
                    detail=name,
                )

"""O1: metric and span names follow the repro.obs dotted convention.

One registry serves every tier (PR 2), and its exporters key series by
name — ``pipeline.clean``, ``store.triples``, ``runtime.shard3.fed``.
A stray ``Pipeline-Clean`` or ``events count`` still records fine but
silently forks the namespace: dashboards, SLO budgets and cross-worker
prefix-merges all match on exact strings. Names must be dotted
lowercase ``[a-z0-9_]`` segments; f-string name builders are checked on
their literal fragments.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterable

from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.classindex import ClassIndex
    from repro.analysis.source import ParsedModule

#: Registry methods whose first argument is a metric/span name.
_NAMED_INSTRUMENTS = frozenset(
    {"counter", "gauge", "histogram", "latency_histogram", "span"}
)

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")
#: Valid characters for the literal fragments of an f-string name.
_FRAGMENT_RE = re.compile(r"^[a-z0-9_.]*$")


class MetricNameRule(Rule):
    rule_id = "O1"
    title = "metric/span name literal breaks the dotted-lowercase convention"
    protects = "PR 2: one namespace across exporters, SLO budgets, merges"

    def check(self, module: "ParsedModule", index: "ClassIndex") -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _NAMED_INSTRUMENTS
                and node.args
            ):
                continue
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
                if not _NAME_RE.match(name_arg.value):
                    yield self.finding(
                        module,
                        name_arg,
                        f"metric/span name {name_arg.value!r} does not match "
                        "the dotted-lowercase convention "
                        "(^[a-z0-9_]+(\\.[a-z0-9_]+)*$)",
                        detail=name_arg.value,
                    )
            elif isinstance(name_arg, ast.JoinedStr):
                for piece in name_arg.values:
                    if (
                        isinstance(piece, ast.Constant)
                        and isinstance(piece.value, str)
                        and not _FRAGMENT_RE.match(piece.value)
                    ):
                        yield self.finding(
                            module,
                            name_arg,
                            f"metric/span name fragment {piece.value!r} "
                            "contains characters outside [a-z0-9_.]",
                            detail=piece.value,
                        )

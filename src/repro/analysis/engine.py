"""The linter engine: file discovery, rule dispatch, suppression triage.

Findings end up in one of three buckets:

- **open** — unsuppressed violations; any of these makes the run fail;
- **suppressed** — matched by a reasoned inline ``lint: allow`` comment;
- **allowlisted** — the module path is exempted for that rule in the
  :class:`~repro.analysis.config.AnalysisConfig` (reason recorded).

The engine also polices the suppressions themselves: an ``allow``
without a reason is an **S1** finding (and suppresses nothing); an
``allow`` that matched no finding is an **S2** finding, so a fixed
violation cannot leave its suppression behind.

Rules come in two tiers. Per-file rules see one module at a time;
**cross-module** rules (``cross_module``/``whole_program``) additionally
read the class index or the :class:`~repro.analysis.dataflow.ProgramModel`
the engine builds once per run. The split also drives the incremental
cache (:mod:`repro.analysis.cache`): per-file findings are reusable when
that file's bytes are unchanged, cross-module findings only when *no*
file changed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow import ProgramModel

from repro.analysis.classindex import ClassIndex
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES
from repro.analysis.rules.base import Rule
from repro.analysis.source import ParsedModule, Suppression, parse_module

JSON_SCHEMA_VERSION = "repro.analysis.v1"


@dataclass
class AnalysisResult:
    """Everything one linter run produced."""

    root: str
    files: list[str] = field(default_factory=list)
    open_findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    allowlisted: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    #: Taint-graph artifact (``--graph``); ``None`` unless requested.
    graph: dict | None = None
    #: Cache telemetry — never serialized, so warm and cold runs emit
    #: byte-identical JSON: "" (cache off), "cold", "partial", or "hit".
    cache_status: str = ""
    cache_file_hits: int = 0

    @property
    def ok(self) -> bool:
        return not self.open_findings and not self.errors

    def as_dict(self) -> dict:
        out = {
            "version": JSON_SCHEMA_VERSION,
            "root": self.root,
            "files_scanned": len(self.files),
            "counts": {
                "open": len(self.open_findings),
                "suppressed": len(self.suppressed),
                "allowlisted": len(self.allowlisted),
            },
            "findings": [f.as_dict() for f in self.open_findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "allowlisted": [f.as_dict() for f in self.allowlisted],
            "errors": list(self.errors),
        }
        if self.graph is not None:
            out["graph"] = self.graph
        return out


def _iter_py_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
        else:
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)


def _module_path(abspath: str, root: str) -> str:
    """Stable posix path for scoping: prefer the ``repro/…`` suffix."""
    posix = abspath.replace(os.sep, "/")
    marker = "/repro/"
    idx = posix.rfind(marker)
    if idx >= 0:
        return posix[idx + 1 :]
    rel = os.path.relpath(abspath, root)
    return rel.replace(os.sep, "/")


def _sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.rule, finding.detail)


def _triage_module(
    result: AnalysisResult,
    path: str,
    raw: Sequence[Finding],
    suppressions: Sequence[Suppression],
    config: AnalysisConfig,
    active_ids: set[str],
) -> None:
    """Sort raw findings into open/suppressed/allowlisted; police allows."""
    for f in raw:
        entry = config.allowlisted(f.rule, path)
        if entry is not None:
            result.allowlisted.append(
                Finding(
                    rule=f.rule,
                    path=f.path,
                    line=f.line,
                    col=f.col,
                    message=f.message,
                    detail=f.detail,
                    reason=entry.reason,
                )
            )
            continue
        suppression = next(
            (s for s in suppressions if s.matches(f.rule, f.line, f.detail)),
            None,
        )
        if suppression is None:
            result.open_findings.append(f)
        else:
            suppression.used = True
            result.suppressed.append(
                Finding(
                    rule=f.rule,
                    path=f.path,
                    line=f.line,
                    col=f.col,
                    message=f.message,
                    detail=f.detail,
                    reason=suppression.reason,
                )
            )

    for s in suppressions:
        if not s.reason:
            result.open_findings.append(
                Finding(
                    rule="S1",
                    path=path,
                    line=s.line,
                    message=(
                        f"suppression allow[{s.rule}] carries no reason; "
                        "reasonless suppressions are inert — state why "
                        "the hit is acceptable"
                    ),
                    detail=s.rule,
                )
            )
        elif not s.used and s.rule in active_ids:
            result.open_findings.append(
                Finding(
                    rule="S2",
                    path=path,
                    line=s.line,
                    message=(
                        f"suppression allow[{s.rule}"
                        + (f":{s.detail}" if s.detail else "")
                        + "] matches no finding; delete the stale comment"
                    ),
                    detail=s.rule,
                )
            )


def _run_rules(
    rules: Sequence[Rule],
    module: ParsedModule,
    index: ClassIndex,
    config: AnalysisConfig,
) -> list[Finding]:
    """All in-scope raw findings for one module (pre-triage)."""
    raw: list[Finding] = []
    for rule in rules:
        if not config.in_scope(rule.rule_id, module.path):
            continue
        raw.extend(rule.check(module, index))
    return raw


def _build_program(
    rules: Sequence[Rule],
    modules: Sequence[ParsedModule],
    index: ClassIndex,
    config: AnalysisConfig,
    want_graph: bool,
) -> "ProgramModel | None":
    """Build the call-graph/taint model once; hand it to D4/D5/P2."""
    targets = [rule for rule in rules if rule.whole_program]
    if not targets and not want_graph:
        return None
    from repro.analysis.dataflow import ProgramModel

    program = ProgramModel(modules, index, config)
    for rule in targets:
        rule.prepare(program)
    return program


def analyze_paths(
    paths: Sequence[str],
    config: AnalysisConfig | None = None,
    rules: Sequence[Rule] | None = None,
    *,
    cache_path: str | None = None,
    changed_only: bool = False,
    want_graph: bool = False,
) -> AnalysisResult:
    """Lint ``paths`` (files or directory trees) and triage the findings.

    ``cache_path`` enables the incremental cache; ``changed_only``
    restricts the run to files whose content hash differs from the cache
    (per-file rules only — cross-module rules need the whole program).
    ``want_graph`` attaches the taint-graph artifact to the result.
    """
    config = config if config is not None else DEFAULT_CONFIG
    rules = tuple(rules) if rules is not None else ALL_RULES
    root = os.path.abspath(paths[0] if paths else ".")
    result = AnalysisResult(root=root)

    local_rules = tuple(
        r for r in rules if not r.cross_module and not r.whole_program
    )
    global_rules = tuple(r for r in rules if r.cross_module or r.whole_program)

    # ---- discovery + content hashing -----------------------------------
    from repro.analysis.cache import file_sha  # cheap, stdlib-only

    sources: list[tuple[str, str, str, str]] = []  # abspath, rel, text, sha
    for abspath in _iter_py_files([os.path.abspath(p) for p in paths]):
        rel = _module_path(abspath, root)
        try:
            with open(abspath, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            result.errors.append(f"{rel}: {exc}")
            continue
        sources.append((abspath, rel, text, file_sha(text)))

    cache: dict | None = None
    if cache_path is not None:
        from repro.analysis import cache as cache_mod

        fingerprint = cache_mod.policy_fingerprint(config, rules)
        cache = cache_mod.load_cache(cache_path, fingerprint)

    if changed_only:
        cached_files = cache["files"] if cache is not None else {}
        sources = [
            s for s in sources if cached_files.get(s[1], {}).get("hash") != s[3]
        ]
        # Cross-module rules need every module; in changed mode they are
        # skipped, and dropping them from active_ids keeps their still-
        # valid suppressions from tripping S2.
        global_rules = ()

    active_ids = {r.rule_id for r in (*local_rules, *global_rules)}
    file_hashes = {rel: sha for _, rel, _, sha in sources}

    # ---- full cache hit: reconstruct without parsing a single file -----
    if cache is not None and not changed_only and not want_graph:
        hit = _reconstruct_from_cache(
            result, cache, sources, file_hashes, config, active_ids
        )
        if hit:
            result.cache_status = "hit"
            result.cache_file_hits = len(sources)
            result.open_findings.sort(key=_sort_key)
            result.suppressed.sort(key=_sort_key)
            result.allowlisted.sort(key=_sort_key)
            return result

    # ---- parse ---------------------------------------------------------
    from repro.analysis.cache import (
        finding_from_dict,
        finding_to_dict,
        project_sha,
        store_cache,
        suppression_to_dict,
    )

    modules: list[tuple[ParsedModule, str]] = []  # module, sha
    error_entries: dict[str, dict] = {}
    index = ClassIndex()
    for abspath, rel, text, sha in sources:
        try:
            module = parse_module(abspath, rel, text)
        except (SyntaxError, ValueError) as exc:
            message = f"{rel}: {exc}"
            result.errors.append(message)
            error_entries[rel] = {
                "hash": sha,
                "error": message,
                "findings": [],
                "suppressions": [],
            }
            continue
        modules.append((module, sha))
        index.add_module(rel, module.tree)
        result.files.append(rel)

    program = _build_program(
        global_rules, [m for m, _ in modules], index, config, want_graph
    )
    if want_graph and program is not None:
        result.graph = program.graph_json()

    # ---- per-module rule dispatch + triage -----------------------------
    cached_files = cache["files"] if cache is not None else {}
    new_entries: dict[str, dict] = dict(error_entries)
    global_by_path: dict[str, list[dict]] = {}
    for module, sha in modules:
        entry = cached_files.get(module.path)
        if (
            entry is not None
            and entry.get("hash") == sha
            and not entry.get("error")
        ):
            local_raw = [finding_from_dict(d) for d in entry["findings"]]
            result.cache_file_hits += 1
        else:
            local_raw = _run_rules(local_rules, module, index, config)
        global_raw = _run_rules(global_rules, module, index, config)
        _triage_module(
            result,
            module.path,
            [*local_raw, *global_raw],
            module.suppressions,
            config,
            active_ids,
        )
        if cache is not None:
            new_entries[module.path] = {
                "hash": sha,
                "error": "",
                "findings": [finding_to_dict(f) for f in local_raw],
                "suppressions": [
                    suppression_to_dict(s) for s in module.suppressions
                ],
            }
            if global_raw:
                global_by_path[module.path] = [
                    finding_to_dict(f) for f in global_raw
                ]

    # ---- cache write ---------------------------------------------------
    if cache is not None and cache_path is not None:
        if changed_only:
            cache["files"].update(new_entries)
        else:
            kept = {
                p: e for p, e in cache["files"].items() if p in file_hashes
            }
            kept.update(new_entries)
            cache["files"] = kept
            cache["project"] = {
                "hash": project_sha(file_hashes),
                "findings": global_by_path,
            }
        store_cache(cache_path, cache)
        if not result.cache_status:
            if changed_only:
                result.cache_status = "changed"
            else:
                result.cache_status = (
                    "partial" if result.cache_file_hits else "cold"
                )

    result.open_findings.sort(key=_sort_key)
    result.suppressed.sort(key=_sort_key)
    result.allowlisted.sort(key=_sort_key)
    return result


def _reconstruct_from_cache(
    result: AnalysisResult,
    cache: dict,
    sources: Sequence[tuple[str, str, str, str]],
    file_hashes: dict[str, str],
    config: AnalysisConfig,
    active_ids: set[str],
) -> bool:
    """Rebuild the whole result from cache when *nothing* changed.

    Returns False (leaving ``result`` untouched) unless the cached file
    set, every per-file hash, and the project hash all match.
    """
    from repro.analysis.cache import (
        finding_from_dict,
        project_sha,
        suppression_from_dict,
    )

    cached_files = cache.get("files", {})
    project = cache.get("project", {})
    if set(cached_files) != set(file_hashes):
        return False
    if any(
        cached_files[p].get("hash") != file_hashes[p] for p in file_hashes
    ):
        return False
    if project.get("hash") != project_sha(file_hashes):
        return False

    global_by_path = project.get("findings", {})
    for _abspath, rel, _text, _sha in sources:
        entry = cached_files[rel]
        if entry.get("error"):
            result.errors.append(entry["error"])
            continue
        result.files.append(rel)
        raw = [finding_from_dict(d) for d in entry["findings"]]
        raw.extend(
            finding_from_dict(d) for d in global_by_path.get(rel, ())
        )
        suppressions = [
            suppression_from_dict(d) for d in entry["suppressions"]
        ]
        _triage_module(result, rel, raw, suppressions, config, active_ids)
    return True

"""The linter engine: file discovery, rule dispatch, suppression triage.

Findings end up in one of three buckets:

- **open** — unsuppressed violations; any of these makes the run fail;
- **suppressed** — matched by a reasoned inline ``lint: allow`` comment;
- **allowlisted** — the module path is exempted for that rule in the
  :class:`~repro.analysis.config.AnalysisConfig` (reason recorded).

The engine also polices the suppressions themselves: an ``allow``
without a reason is an **S1** finding (and suppresses nothing); an
``allow`` that matched no finding is an **S2** finding, so a fixed
violation cannot leave its suppression behind.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.classindex import ClassIndex
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES
from repro.analysis.rules.base import Rule
from repro.analysis.source import ParsedModule, parse_module

JSON_SCHEMA_VERSION = "repro.analysis.v1"


@dataclass
class AnalysisResult:
    """Everything one linter run produced."""

    root: str
    files: list[str] = field(default_factory=list)
    open_findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    allowlisted: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.open_findings and not self.errors

    def as_dict(self) -> dict:
        return {
            "version": JSON_SCHEMA_VERSION,
            "root": self.root,
            "files_scanned": len(self.files),
            "counts": {
                "open": len(self.open_findings),
                "suppressed": len(self.suppressed),
                "allowlisted": len(self.allowlisted),
            },
            "findings": [f.as_dict() for f in self.open_findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "allowlisted": [f.as_dict() for f in self.allowlisted],
            "errors": list(self.errors),
        }


def _iter_py_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
        else:
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)


def _module_path(abspath: str, root: str) -> str:
    """Stable posix path for scoping: prefer the ``repro/…`` suffix."""
    posix = abspath.replace(os.sep, "/")
    marker = "/repro/"
    idx = posix.rfind(marker)
    if idx >= 0:
        return posix[idx + 1 :]
    rel = os.path.relpath(abspath, root)
    return rel.replace(os.sep, "/")


def _sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.rule, finding.detail)


def analyze_paths(
    paths: Sequence[str],
    config: AnalysisConfig | None = None,
    rules: Sequence[Rule] | None = None,
) -> AnalysisResult:
    """Lint ``paths`` (files or directory trees) and triage the findings."""
    config = config if config is not None else DEFAULT_CONFIG
    rules = tuple(rules) if rules is not None else ALL_RULES
    active_ids = {rule.rule_id for rule in rules}
    root = os.path.abspath(paths[0] if paths else ".")
    result = AnalysisResult(root=root)

    modules: list[ParsedModule] = []
    index = ClassIndex()
    for abspath in _iter_py_files([os.path.abspath(p) for p in paths]):
        rel = _module_path(abspath, root)
        try:
            with open(abspath, "r", encoding="utf-8") as fh:
                text = fh.read()
            module = parse_module(abspath, rel, text)
        except (OSError, SyntaxError, ValueError) as exc:
            result.errors.append(f"{rel}: {exc}")
            continue
        modules.append(module)
        index.add_module(rel, module.tree)
        result.files.append(rel)

    for module in modules:
        raw: list[Finding] = []
        for rule in rules:
            if not config.in_scope(rule.rule_id, module.path):
                continue
            entry = config.allowlisted(rule.rule_id, module.path)
            found = list(rule.check(module, index))
            if entry is not None:
                result.allowlisted.extend(
                    Finding(
                        rule=f.rule,
                        path=f.path,
                        line=f.line,
                        col=f.col,
                        message=f.message,
                        detail=f.detail,
                        reason=entry.reason,
                    )
                    for f in found
                )
                continue
            raw.extend(found)

        for f in raw:
            suppression = next(
                (
                    s
                    for s in module.suppressions
                    if s.matches(f.rule, f.line, f.detail)
                ),
                None,
            )
            if suppression is None:
                result.open_findings.append(f)
            else:
                suppression.used = True
                result.suppressed.append(
                    Finding(
                        rule=f.rule,
                        path=f.path,
                        line=f.line,
                        col=f.col,
                        message=f.message,
                        detail=f.detail,
                        reason=suppression.reason,
                    )
                )

        for s in module.suppressions:
            if not s.reason:
                result.open_findings.append(
                    Finding(
                        rule="S1",
                        path=module.path,
                        line=s.line,
                        message=(
                            f"suppression allow[{s.rule}] carries no reason; "
                            "reasonless suppressions are inert — state why "
                            "the hit is acceptable"
                        ),
                        detail=s.rule,
                    )
                )
            elif not s.used and s.rule in active_ids:
                result.open_findings.append(
                    Finding(
                        rule="S2",
                        path=module.path,
                        line=s.line,
                        message=(
                            f"suppression allow[{s.rule}"
                            + (f":{s.detail}" if s.detail else "")
                            + "] matches no finding; delete the stale comment"
                        ),
                        detail=s.rule,
                    )
                )

    result.open_findings.sort(key=_sort_key)
    result.suppressed.sort(key=_sort_key)
    result.allowlisted.sort(key=_sort_key)
    return result

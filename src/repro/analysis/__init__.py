"""Contract linter: AST-enforced determinism and checkpoint invariants.

The reproduction's headline guarantees — byte-identical crash-resume
(PR 1/3/4), hash-seed independence (PR 3) and millisecond latency
accounting (PR 2) — rest on code-level invariants that no test can see
locally: a single unseeded ``random.random()`` call, a builtin
``hash()`` in a routing path, or one field missing from an operator's
``snapshot()`` dict silently breaks a contract that only manifests as a
flaky differential test three layers away. This package checks those
invariants mechanically, the way production stream stacks (Flink /
Spark lineage) enforce their serialization and determinism contracts.

Rules (see ``docs/static-analysis.md`` for rationale and examples):

- **D1** — builtin ``hash()`` is banned in ``src/``; use
  :func:`repro.hashing.stable_hash` (PYTHONHASHSEED independence).
- **D2** — no unseeded RNG (``random.Random()``, module-level
  ``random.*`` / ``numpy.random.*`` calls) in the deterministic paths
  (``repro.core``, ``repro.runtime``, ``repro.streams``, ``repro.cep``,
  ``repro.insitu``).
- **D3** — no wall-clock reads (``time.time``, ``perf_counter``,
  ``datetime.now``…) outside ``repro.obs``; measurement code uses
  :func:`repro.obs.clock.monotonic`.
- **D4** — *whole-program*: no deterministic-scope function may reach a
  nondeterminism source (clock, unseeded RNG, ``hash``, ``os.environ``)
  **transitively**, at any call depth; findings print the full call
  chain down to the source (:mod:`repro.analysis.dataflow`).
- **D5** — *whole-program*: no unordered ``set``/``dict`` iteration may
  flow into persisted or emitted output (``snapshot()`` payloads,
  canonical digests, RDF emission) — wrap in ``sorted(...)``.
- **C1** — snapshot coverage: every class with a ``snapshot``/
  ``restore`` pair must reference each mutable field in both; stateful
  operators must define (or correctly inherit) the pair.
- **P1** — pickle safety: no lambdas / nested functions flowing into
  ``PipelineSpec`` / ``WorkerSpec`` construction (workers are spawned).
- **P2** — *whole-program*: no module-level mutable global may be
  mutated by code reachable from a worker entrypoint (fork/spawn
  divergence: each worker mutates its own module copy).
- **O1** — metric and span name literals follow the dotted-lowercase
  convention of :mod:`repro.obs`.
- **O2** — no imports of deprecated modules or calls to deprecated
  entry points (the pre-unified-``run`` pipeline methods,
  ``repro.streams.metrics``); each surviving caller needs a reasoned
  suppression.

Plus two engine-level hygiene rules: **S1** (a suppression comment must
carry a reason) and **S2** (a suppression must match a finding).

Findings are suppressed inline with a reasoned comment on the offending
line (or the line above)::

    value = hash(key)  # lint: allow[D1] interning cache, never persisted

or path-allowlisted in :data:`repro.analysis.config.DEFAULT_CONFIG`
(every entry carries a reason string). The CLI —
``python -m repro.analysis src/`` — exits non-zero on any unsuppressed
finding and emits human or ``--json`` output (``--graph`` attaches the
taint-graph artifact, ``--cache``/``--changed`` enable the incremental
cache); the ``static-analysis`` CI job runs it next to mypy over the
typed core.

The static rules have a dynamic twin:
:func:`repro.analysis.sanitizer.determinism_sanitizer` patches ambient
clock/RNG entry points to raise inside the differential suites, proving
at runtime what D4 claims statically.
"""

from repro.analysis.config import AllowEntry, AnalysisConfig, DEFAULT_CONFIG
from repro.analysis.engine import AnalysisResult, analyze_paths
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES, rule_ids
from repro.analysis.sanitizer import DeterminismViolation, determinism_sanitizer

__all__ = [
    "AllowEntry",
    "AnalysisConfig",
    "AnalysisResult",
    "DEFAULT_CONFIG",
    "DeterminismViolation",
    "Finding",
    "ALL_RULES",
    "determinism_sanitizer",
    "rule_ids",
    "analyze_paths",
]

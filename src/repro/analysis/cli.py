"""``python -m repro.analysis`` — the contract linter's command line.

Exit codes: ``0`` clean (suppressed/allowlisted hits are fine), ``1``
any open finding or unparseable file, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.cache import DEFAULT_CACHE_PATH
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.engine import AnalysisResult, analyze_paths
from repro.analysis.rules import ALL_RULES, rule_ids


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST contract linter: determinism (D1-D3), snapshot coverage "
            "(C1), pickle safety (P1), metric naming (O1), deprecated "
            "APIs (O2). See docs/static-analysis.md."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe the rules and exit"
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed and allowlisted hits with their reasons",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help=(
            "attach the taint-graph artifact (call edges, sources, taint "
            "chains, sink contexts) to the --json report"
        ),
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help=(
            "reuse per-file findings from the incremental cache "
            f"(default file: {DEFAULT_CACHE_PATH}); output is "
            "byte-identical to an uncached run"
        ),
    )
    parser.add_argument(
        "--cache-file",
        metavar="PATH",
        default=DEFAULT_CACHE_PATH,
        help="cache file location (implies nothing by itself; see --cache)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "lint only files whose content changed since the cached run "
            "(per-file rules only; implies --cache)"
        ),
    )
    return parser


def _render_human(result: AnalysisResult, show_suppressed: bool) -> str:
    lines: list[str] = []
    for finding in result.open_findings:
        lines.append(f"{finding.located()}: [{finding.rule}] {finding.message}")
    for error in result.errors:
        lines.append(f"error: {error}")
    if show_suppressed:
        for bucket, label in (
            (result.suppressed, "suppressed"),
            (result.allowlisted, "allowlisted"),
        ):
            for finding in bucket:
                lines.append(
                    f"{finding.located()}: [{finding.rule}] ({label}: "
                    f"{finding.reason}) {finding.message}"
                )
    lines.append(
        f"{len(result.files)} files scanned: "
        f"{len(result.open_findings)} open, "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.allowlisted)} allowlisted"
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"    protects: {rule.protects}")
        print("S1  suppression comment without a reason (engine)")
        print("S2  suppression comment matching no finding (engine)")
        return 0
    rules = None
    if args.rules:
        wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = sorted(set(wanted) - set(rule_ids()))
        if unknown:
            print(f"unknown rule ids: {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [rule for rule in ALL_RULES if rule.rule_id in wanted]
    cache_path = args.cache_file if (args.cache or args.changed) else None
    result = analyze_paths(
        args.paths,
        config=DEFAULT_CONFIG,
        rules=rules,
        cache_path=cache_path,
        changed_only=args.changed,
        want_graph=args.graph,
    )
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(_render_human(result, args.show_suppressed))
        if result.cache_status:
            print(
                f"cache: {result.cache_status} "
                f"({result.cache_file_hits} file hits)",
                file=sys.stderr,
            )
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

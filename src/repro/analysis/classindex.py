"""Project-wide class index for cross-module inheritance checks.

Rule C1 needs to know whether ``SynopsesOperator`` ultimately derives
from ``repro.streams.operators.Operator`` and which ancestor supplies
its ``snapshot``/``restore`` pair — information no single module's AST
contains. The engine therefore parses every file first, builds this
index, and hands it to the rules.

Resolution is by simple class name (the identifier a base is written
as), which is exact for this codebase and the right trade-off for a
stdlib-only linter: a wrong-module name collision would merely make C1
conservative, and any resulting false positive is suppressed inline
with a reason.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Method names on ``self.<field>`` that mutate the field's value.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "restore",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Methods excluded when deciding whether a field is mutable state:
#: ``__init__`` establishes the field; the checkpoint pair rightfully
#: touches everything.
_NON_MUTATING_CONTEXTS = frozenset({"__init__", "snapshot", "restore"})


def _self_attr_root(node: ast.expr) -> str | None:
    """Name of the ``self`` attribute an access chain is rooted at."""
    while True:
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        elif isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None


def referenced_self_attrs(func: ast.FunctionDef) -> set[str]:
    """Every ``self.<attr>`` mentioned anywhere in a method body."""
    out: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            out.add(node.attr)
    return out


def _mutation_targets(stmt: ast.AST) -> set[str]:
    """Fields a single statement mutates (assignment, del, mutator call)."""
    out: set[str] = set()
    if isinstance(stmt, ast.Assign):
        targets: list[ast.expr] = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.Call):
        func = stmt.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            root = _self_attr_root(func.value)
            if root is not None:
                out.add(root)
        return out
    else:
        return out
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            elements = list(target.elts)
        else:
            elements = [target]
        for element in elements:
            root = _self_attr_root(element)
            if root is not None:
                out.add(root)
    return out


@dataclass
class ClassInfo:
    """Everything C1 needs to know about one class definition."""

    name: str
    module_path: str
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)
    methods: dict = field(default_factory=dict)  # name -> ast.FunctionDef
    init_fields: dict = field(default_factory=dict)  # field -> lineno
    mutated_fields: set = field(default_factory=set)
    #: Entries of a literal ``_STATE_FIELDS`` / ``_STATEFUL_COMPONENTS``
    #: class attribute, if any (both drive dict-shaped checkpoint loops).
    state_fields_literal: tuple = ()

    @property
    def has_snapshot_pair(self) -> bool:
        return "snapshot" in self.methods and "restore" in self.methods

    @property
    def stateful_fields(self) -> set:
        """Fields assigned in ``__init__`` and mutated after it."""
        return set(self.init_fields) & self.mutated_fields


def _extract_class(node: ast.ClassDef, module_path: str) -> ClassInfo:
    info = ClassInfo(name=node.name, module_path=module_path, node=node)
    for base in node.bases:
        if isinstance(base, ast.Name):
            info.base_names.append(base.id)
        elif isinstance(base, ast.Attribute):
            info.base_names.append(base.attr)
        elif isinstance(base, ast.Subscript):  # Generic[T] and friends
            value = base.value
            if isinstance(value, ast.Name):
                info.base_names.append(value.id)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = stmt
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in ("_STATE_FIELDS", "_STATEFUL_COMPONENTS")
                    and isinstance(value, (ast.Tuple, ast.List))
                ):
                    info.state_fields_literal = tuple(
                        element.value
                        for element in value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    )
    init = info.methods.get("__init__")
    if isinstance(init, ast.FunctionDef):
        for stmt in ast.walk(init):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        info.init_fields.setdefault(target.attr, stmt.lineno)
    for name, method in info.methods.items():
        if name in _NON_MUTATING_CONTEXTS or not isinstance(method, ast.FunctionDef):
            continue
        for stmt in ast.walk(method):
            info.mutated_fields |= _mutation_targets(stmt)
    return info


class ClassIndex:
    """All class definitions across the scanned files, by simple name."""

    def __init__(self) -> None:
        self._by_name: dict[str, list[ClassInfo]] = {}
        self.by_module: dict[str, list[ClassInfo]] = {}

    def add_module(self, module_path: str, tree: ast.Module) -> None:
        classes = [
            _extract_class(node, module_path)
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        ]
        self.by_module[module_path] = classes
        for info in classes:
            self._by_name.setdefault(info.name, []).append(info)

    def lookup(self, name: str) -> "ClassInfo | None":
        """The unique class of that simple name, or ``None`` on miss/tie."""
        candidates = self._by_name.get(name, ())
        return candidates[0] if len(candidates) == 1 else None

    def ancestors(self, info: ClassInfo) -> list[ClassInfo]:
        """Transitive in-project ancestors, nearest-first, cycles cut."""
        out: list[ClassInfo] = []
        seen = {info.name}
        frontier = list(info.base_names)
        while frontier:
            base_name = frontier.pop(0)
            if base_name in seen:
                continue
            seen.add(base_name)
            base = self.lookup(base_name)
            if base is None:
                continue
            out.append(base)
            frontier.extend(base.base_names)
        return out

    def derives_from(self, info: ClassInfo, root_name: str) -> bool:
        if root_name in info.base_names:
            return True
        return any(anc.name == root_name for anc in self.ancestors(info))

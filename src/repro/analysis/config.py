"""Linter configuration: rule path scopes and reasoned allowlists.

Two knobs, both path-based (posix module paths relative to the scan
root, e.g. ``repro/core/pipeline.py``):

- **scopes** restrict where a rule *applies at all* — e.g. D2 (unseeded
  RNG) only polices the deterministic pipeline paths, because a seeded
  demo script elsewhere is nobody's contract.
- **allowlists** exempt matching paths from a rule *with a recorded
  reason* — e.g. D3 permits :mod:`repro.obs` itself to read the clock.
  Every entry must carry a non-empty reason; construction fails
  otherwise, so the "every suppression has a reason" guarantee holds
  for config entries exactly as it does for inline comments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase


@dataclass(frozen=True)
class AllowEntry:
    """One allowlisted path pattern for one rule, with its rationale."""

    pattern: str  # fnmatch pattern over the module path
    reason: str

    def __post_init__(self) -> None:
        if not self.reason.strip():
            raise ValueError(
                f"allowlist entry {self.pattern!r} must carry a reason string"
            )

    def matches(self, path: str) -> bool:
        return fnmatchcase(path, self.pattern)


@dataclass(frozen=True)
class AnalysisConfig:
    """Scopes and allowlists consumed by the engine.

    Attributes:
        scopes: rule id → path patterns the rule is confined to. A rule
            absent from the mapping applies everywhere scanned.
        allowlists: rule id → reasoned path exemptions.
    """

    scopes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    allowlists: dict[str, tuple[AllowEntry, ...]] = field(default_factory=dict)

    def in_scope(self, rule_id: str, path: str) -> bool:
        patterns = self.scopes.get(rule_id)
        if not patterns:
            return True
        return any(fnmatchcase(path, pat) for pat in patterns)

    def allowlisted(self, rule_id: str, path: str) -> "AllowEntry | None":
        for entry in self.allowlists.get(rule_id, ()):
            if entry.matches(path):
                return entry
        return None


#: The in-tree policy `python -m repro.analysis` runs with.
DEFAULT_CONFIG = AnalysisConfig(
    scopes={
        # Unseeded RNG only matters where byte-identical replay is the
        # contract: the pipeline, the multi-process runtime, the stream
        # operators, event recognition, the in-situ layer — and the
        # serving tier, whose admission decisions and load-harness
        # request streams are seeded by design.
        "D2": (
            "repro/core/*",
            "repro/runtime/*",
            "repro/streams/*",
            "repro/cep/*",
            "repro/insitu/*",
            "repro/serving/*",
            # The RDF layer sits on the deterministic ingest path: the
            # compiled emitter's id assignment must replay bit-identically.
            "repro/rdf/*",
            # These three feed the deterministic digests (trajectory
            # forecasts, link resolutions, parsed reports) even though
            # they are not pipeline tiers themselves.
            "repro/forecasting/*",
            "repro/linkage/*",
            "repro/sources/*",
        ),
        # The deterministic scopes the taint engine defends: D4 reports
        # call chains *from* these paths, and ProgramModel treats them as
        # the frontier where transitive nondeterminism becomes a defect.
        "D4": (
            "repro/core/*",
            "repro/runtime/*",
            "repro/streams/*",
            "repro/cep/*",
            "repro/insitu/*",
            "repro/serving/*",
            "repro/rdf/*",
            # The triple store persists what the RDF layer emits; its
            # partition routing and posting lists are replayed state.
            "repro/store/*",
        ),
        # Unordered iteration only matters where the order reaches bytes
        # two runs must agree on — the same deterministic tiers, whose
        # snapshots, digests, and emitted triples are the sinks.
        "D5": (
            "repro/core/*",
            "repro/runtime/*",
            "repro/streams/*",
            "repro/cep/*",
            "repro/insitu/*",
            "repro/serving/*",
            "repro/rdf/*",
            "repro/store/*",
        ),
    },
    allowlists={
        "D3": (
            AllowEntry(
                pattern="repro/obs/clock.py",
                reason=(
                    "the sanctioned clock boundary: the one module allowed "
                    "to read time.perf_counter; all measurement code imports "
                    "repro.obs.clock.monotonic from here"
                ),
            ),
        ),
    },
)

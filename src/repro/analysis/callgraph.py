"""Project-wide call graph with module-qualified resolution.

The per-line rules (D1–D3) see one module at a time; the taint rules
(D4/D5/P2, :mod:`repro.analysis.dataflow`) need to know *who calls
whom* across the whole tree: a clock read two frames deep in a helper
is invisible to a syntactic check but one reverse-BFS away on this
graph.

Functions are identified by a **qualified name**::

    repro/core/pipeline.py::MobilityPipeline.process
    repro/hashing.py::stable_hash

Resolution is deliberately conservative — an attribute call whose
receiver type cannot be inferred simply produces no edge (taint then
under-approximates, never false-fires). What *is* resolved:

- module-local functions and methods (``helper()``, ``self.m()``),
- imports, including relative ones and one-hop package re-exports
  (``from repro.analysis import analyze_paths`` reaches
  ``engine.analyze_paths`` through the package ``__init__``),
- constructor calls (``ClassName(...)`` → ``ClassName.__init__``),
- attribute calls on receivers whose class is inferable from a
  constructor assignment, a parameter annotation, or an ``__init__``
  field (``self._dedup.process()``), including container element types
  (``self._controllers[cid].admit()`` through ``dict[str, C]``),
- inherited methods, via the shared :class:`~repro.analysis.classindex.ClassIndex`.

Everything the builder produces is sorted, so the graph — and every
finding derived from it — is independent of the order modules were
scanned in (pinned by a hypothesis test).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.classindex import ClassIndex, ClassInfo
    from repro.analysis.source import ParsedModule

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionNode",
    "TypeRef",
    "build_call_graph",
    "dotted_name",
]

#: Container constructors whose results are dict-shaped.
_DICT_CALLS = frozenset({"dict", "defaultdict", "OrderedDict", "Counter", "ChainMap"})
#: Container constructors whose results are set-shaped (iteration order
#: depends on the interpreter's hash salt).
_SET_CALLS = frozenset({"set", "frozenset"})
_LIST_CALLS = frozenset({"list", "deque"})


def dotted_name(module_path: str) -> str:
    """Dotted import name of a posix module path (``a/b/__init__.py`` → ``a.b``)."""
    path = module_path[:-3] if module_path.endswith(".py") else module_path
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    return path.replace("/", ".")


@dataclass(frozen=True)
class TypeRef:
    """A coarse inferred type: enough to resolve methods and spot sets.

    ``kind`` is one of ``object`` (a project class, named in ``cls``),
    ``dict``/``set``/``list`` (containers, element/value type in
    ``elem``), or ``unknown``.
    """

    kind: str = "unknown"
    cls: str = ""
    elem: "TypeRef | None" = None

    @property
    def is_unordered(self) -> bool:
        return self.kind == "set"


UNKNOWN = TypeRef()


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, anchored to its source line."""

    callee: str  # qualified name of the resolved project function
    line: int
    col: int = 0


@dataclass
class FunctionNode:
    """One project function (or method) in the call graph."""

    qname: str
    module_path: str
    name: str  # bare function name
    cls: str  # enclosing class name, "" for module-level functions
    lineno: int
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    calls: tuple[CallSite, ...] = ()

    @property
    def display(self) -> str:
        """``Class.method`` / ``function`` — how chains print the node."""
        return f"{self.cls}.{self.name}" if self.cls else self.name


class _ModuleScope:
    """Per-module name resolution: imports (incl. relative) and globals."""

    def __init__(self, module: "ParsedModule") -> None:
        self.path = module.path
        self.dotted = dotted_name(module.path)
        self.is_package = module.path.endswith("/__init__.py")
        self.modules: dict[str, str] = {}  # alias -> dotted module
        self.names: dict[str, str] = {}  # local name -> dotted origin
        self.global_types: dict[str, TypeRef] = {}
        self.functions: set[str] = set()  # top-level function names
        self.classes: set[str] = set()  # top-level class names
        for stmt in module.tree.body:
            self._bind_top(stmt)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.modules[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.names[alias.asname or alias.name] = f"{base}.{alias.name}"

    def _bind_top(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.functions.add(stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            self.classes.add(stmt.name)

    def _import_base(self, node: ast.ImportFrom) -> str | None:
        """Absolute dotted base of an import-from, resolving relativity."""
        if node.level == 0:
            return node.module
        package = self.dotted if self.is_package else self.dotted.rpartition(".")[0]
        parts = package.split(".") if package else []
        up = node.level - 1
        if up > len(parts):
            return None
        if up:
            parts = parts[:-up]
        if node.module:
            parts.append(node.module)
        return ".".join(parts) if parts else None

    def resolve_reference(self, node: ast.expr) -> str:
        """Dotted origin of a name/attribute chain, or ``""``.

        Mirrors :meth:`repro.analysis.rules.base.ImportMap.resolve_call`
        but additionally understands relative imports.
        """
        parts: list[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return ""
        head = cursor.id
        if head in self.modules:
            parts.append(self.modules[head])
        elif head in self.names:
            parts.append(self.names[head])
        else:
            parts.append(head)
        return ".".join(reversed(parts))


class CallGraph:
    """All project functions and the resolved call edges between them."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionNode] = {}
        self.scopes: dict[str, _ModuleScope] = {}  # module path -> scope
        self.by_dotted: dict[str, str] = {}  # dotted module name -> path
        self._index: "ClassIndex | None" = None
        self._field_types: dict[tuple[str, str], dict[str, TypeRef]] = {}

    # ---------------------------------------------------------------- build

    def add_module(self, module: "ParsedModule", index: "ClassIndex") -> None:
        self._index = index
        scope = _ModuleScope(module)
        self.scopes[module.path] = scope
        self.by_dotted[scope.dotted] = module.path
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module.path, stmt, cls="")
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(module.path, item, cls=stmt.name)
        scope.global_types.update(self._module_global_types(module, scope))

    def _add_function(
        self, module_path: str, node: ast.AST, cls: str
    ) -> None:
        name = node.name  # type: ignore[attr-defined]
        qname = qualified_name(module_path, cls, name)
        self.functions[qname] = FunctionNode(
            qname=qname,
            module_path=module_path,
            name=name,
            cls=cls,
            lineno=getattr(node, "lineno", 1),
            node=node,
        )

    def _module_global_types(
        self, module: "ParsedModule", scope: _ModuleScope
    ) -> dict[str, TypeRef]:
        out: dict[str, TypeRef] = {}
        for stmt in module.tree.body:
            targets: list[ast.expr]
            value: ast.expr | None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
                ann = self._type_from_annotation(stmt.annotation)
                if isinstance(stmt.target, ast.Name) and ann.kind != "unknown":
                    out[stmt.target.id] = ann
                    continue
            else:
                continue
            if value is None:
                continue
            inferred = self._type_from_value(value, scope, {})
            if inferred.kind == "unknown":
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    out[target.id] = inferred
        return out

    def resolve_edges(self) -> None:
        """Second pass: resolve every call in every function body."""
        for qname in sorted(self.functions):
            fn = self.functions[qname]
            scope = self.scopes[fn.module_path]
            local_types = self._local_types(fn, scope)
            calls: list[CallSite] = []
            seen: set[tuple[str, int]] = set()
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self._resolve_call(node.func, fn, scope, local_types)
                if callee is None:
                    continue
                key = (callee, node.lineno)
                if key in seen:
                    continue
                seen.add(key)
                calls.append(CallSite(callee, node.lineno, node.col_offset))
            fn.calls = tuple(sorted(calls, key=lambda c: (c.callee, c.line, c.col)))

    # ---------------------------------------------------------- type model

    def _type_from_annotation(self, ann: ast.expr | None) -> TypeRef:
        if ann is None:
            return UNKNOWN
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return UNKNOWN
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            left = self._type_from_annotation(ann.left)
            return left if left.kind != "unknown" else self._type_from_annotation(ann.right)
        if isinstance(ann, ast.Subscript):
            base = self._annotation_head(ann.value)
            if base in ("Optional", "Final", "ClassVar", "Annotated"):
                inner = ann.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return self._type_from_annotation(inner)
            if base == "Union":
                if isinstance(ann.slice, ast.Tuple) and ann.slice.elts:
                    return self._type_from_annotation(ann.slice.elts[0])
                return UNKNOWN
            elems: list[ast.expr]
            if isinstance(ann.slice, ast.Tuple):
                elems = list(ann.slice.elts)
            else:
                elems = [ann.slice]
            if base in ("dict", "Dict", "defaultdict", "DefaultDict", "Mapping", "MutableMapping"):
                value_t = self._type_from_annotation(elems[1]) if len(elems) > 1 else UNKNOWN
                return TypeRef("dict", elem=value_t)
            if base in ("set", "Set", "frozenset", "FrozenSet", "AbstractSet", "MutableSet"):
                return TypeRef("set", elem=self._type_from_annotation(elems[0]))
            if base in ("list", "List", "tuple", "Tuple", "Sequence", "Iterable", "Iterator", "deque"):
                return TypeRef("list", elem=self._type_from_annotation(elems[0]))
            return UNKNOWN
        head = self._annotation_head(ann)
        if head in ("dict", "Dict"):
            return TypeRef("dict")
        if head in ("set", "Set", "frozenset", "FrozenSet"):
            return TypeRef("set")
        if head in ("list", "List", "tuple", "Tuple"):
            return TypeRef("list")
        if head in ("None", "Any", ""):
            return UNKNOWN
        return TypeRef("object", cls=head)

    def _annotation_head(self, node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return ""

    def _type_from_value(
        self,
        value: ast.expr,
        scope: _ModuleScope,
        local_types: dict[str, TypeRef],
    ) -> TypeRef:
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return TypeRef("dict")
        if isinstance(value, (ast.Set, ast.SetComp)):
            return TypeRef("set")
        if isinstance(value, (ast.List, ast.ListComp, ast.GeneratorExp)):
            return TypeRef("list")
        if isinstance(value, ast.Call):
            head = self._annotation_head(value.func)
            if head in _DICT_CALLS:
                return TypeRef("dict")
            if head in _SET_CALLS:
                return TypeRef("set")
            if head in _LIST_CALLS:
                return TypeRef("list")
            if head == "sorted":
                return TypeRef("list")
            cls = self._class_of_constructor(value.func, scope)
            if cls is not None:
                return TypeRef("object", cls=cls)
            return UNKNOWN
        if isinstance(value, ast.Name):
            if value.id in local_types:
                return local_types[value.id]
            return scope.global_types.get(value.id, UNKNOWN)
        if isinstance(value, ast.IfExp):
            then = self._type_from_value(value.body, scope, local_types)
            return then if then.kind != "unknown" else self._type_from_value(
                value.orelse, scope, local_types
            )
        return UNKNOWN

    def _class_of_constructor(
        self, func: ast.expr, scope: _ModuleScope
    ) -> str | None:
        """Class name when ``func`` refers to an indexed project class."""
        index = self._index
        if index is None:
            return None
        head = self._annotation_head(func)
        if not head:
            return None
        if index.lookup(head) is not None:
            return head
        return None

    def field_types(self, module_path: str, cls: str) -> dict[str, TypeRef]:
        """Inferred ``self.<field>`` types for one class (cached)."""
        key = (module_path, cls)
        cached = self._field_types.get(key)
        if cached is not None:
            return cached
        out: dict[str, TypeRef] = {}
        index = self._index
        info = index.lookup(cls) if index is not None else None
        if info is not None and index is not None:
            for owner in [info, *index.ancestors(info)]:
                scope = self.scopes.get(owner.module_path)
                if scope is None:
                    continue
                self._collect_field_types(owner, scope, out)
        self._field_types[key] = out
        return out

    def _collect_field_types(
        self, info: "ClassInfo", scope: _ModuleScope, out: dict[str, TypeRef]
    ) -> None:
        init = info.methods.get("__init__")
        if not isinstance(init, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        param_types: dict[str, TypeRef] = {}
        for arg in [*init.args.posonlyargs, *init.args.args, *init.args.kwonlyargs]:
            param_types[arg.arg] = self._type_from_annotation(arg.annotation)
        for stmt in ast.walk(init):
            target: ast.expr | None = None
            value: ast.expr | None = None
            ann: TypeRef = UNKNOWN
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
                ann = self._type_from_annotation(stmt.annotation)
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            name = target.attr
            if name in out:
                continue
            if ann.kind != "unknown":
                out[name] = ann
                continue
            if isinstance(value, ast.Name) and value.id in param_types:
                inferred = param_types[value.id]
            elif value is not None:
                inferred = self._type_from_value(value, scope, {})
            else:
                inferred = UNKNOWN
            if inferred.kind != "unknown":
                out[name] = inferred

    def _local_types(
        self, fn: FunctionNode, scope: _ModuleScope
    ) -> dict[str, TypeRef]:
        """Types of parameters and single-shape local assignments."""
        out: dict[str, TypeRef] = {}
        node = fn.node
        args = node.args  # type: ignore[attr-defined]
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            ref = self._type_from_annotation(arg.annotation)
            if ref.kind != "unknown":
                out[arg.arg] = ref
        for stmt in ast.walk(node):
            target = None
            value = None
            ann = UNKNOWN
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
                ann = self._type_from_annotation(stmt.annotation)
            if target is None or not isinstance(target, ast.Name):
                continue
            if ann.kind == "unknown" and value is not None:
                ann = self._type_from_value(value, scope, out)
            existing = out.get(target.id)
            if existing is not None and existing != ann:
                out[target.id] = UNKNOWN
            elif ann.kind != "unknown":
                out[target.id] = ann
        return out

    # ---------------------------------------------------------- resolution

    def _resolve_call(
        self,
        func: ast.expr,
        fn: FunctionNode,
        scope: _ModuleScope,
        local_types: dict[str, TypeRef],
    ) -> str | None:
        if isinstance(func, ast.Name):
            name = func.id
            if name in scope.functions:
                return qualified_name(fn.module_path, "", name)
            if name in scope.classes:
                return self._constructor(name)
            origin = scope.names.get(name)
            if origin is not None:
                return self._resolve_origin(origin, set())
            return None
        if not isinstance(func, ast.Attribute):
            return None
        receiver = self._receiver_type(func.value, fn, scope, local_types)
        if receiver.kind == "object" and receiver.cls:
            return self._method(receiver.cls, func.attr)
        origin = scope.resolve_reference(func)
        if origin:
            return self._resolve_origin(origin, set())
        return None

    def _receiver_type(
        self,
        node: ast.expr,
        fn: FunctionNode,
        scope: _ModuleScope,
        local_types: dict[str, TypeRef],
    ) -> TypeRef:
        """Type of the expression a method is called on."""
        if isinstance(node, ast.Name):
            if node.id == "self" and fn.cls:
                return TypeRef("object", cls=fn.cls)
            local = local_types.get(node.id)
            if local is not None:
                return local
            ref = scope.global_types.get(node.id, UNKNOWN)
            if ref.kind != "unknown":
                return ref
            if node.id in scope.classes:
                # ClassName.method(...) — treat as the class itself.
                return TypeRef("object", cls=node.id)
            origin = scope.names.get(node.id)
            if origin is not None:
                tail = origin.rsplit(".", 1)[-1]
                if self._index is not None and self._index.lookup(tail) is not None:
                    return TypeRef("object", cls=tail)
            return UNKNOWN
        if isinstance(node, ast.Attribute):
            base = self._receiver_type(node.value, fn, scope, local_types)
            if base.kind == "object" and base.cls:
                fields = self.field_types_for(base.cls)
                return fields.get(node.attr, UNKNOWN)
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            base = self._receiver_type(node.value, fn, scope, local_types)
            if base.kind in ("dict", "list", "set") and base.elem is not None:
                return base.elem
            return UNKNOWN
        if isinstance(node, ast.Call):
            head = self._annotation_head(node.func)
            cls = self._class_of_constructor(node.func, scope)
            if cls is not None and head == cls:
                return TypeRef("object", cls=cls)
            return UNKNOWN
        return UNKNOWN

    def field_types_for(self, cls: str) -> dict[str, TypeRef]:
        index = self._index
        info = index.lookup(cls) if index is not None else None
        if info is None:
            return {}
        return self.field_types(info.module_path, cls)

    def _method(self, cls: str, method: str) -> str | None:
        """Resolve ``cls.method`` through the class index, honoring MRO."""
        index = self._index
        if index is None:
            return None
        info = index.lookup(cls)
        if info is None:
            return None
        for owner in [info, *index.ancestors(info)]:
            if method in owner.methods:
                return qualified_name(owner.module_path, owner.name, method)
        return None

    def _constructor(self, cls: str) -> str | None:
        return self._method(cls, "__init__")

    def _resolve_origin(self, origin: str, visited: set[str]) -> str | None:
        """Map a dotted origin onto a project function, if it is one."""
        if origin in visited:
            return None
        visited.add(origin)
        parts = origin.split(".")
        for split in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:split])
            module_path = self.by_dotted.get(prefix)
            if module_path is None:
                continue
            rest = parts[split:]
            return self._resolve_in_module(module_path, rest, visited)
        return None

    def _resolve_in_module(
        self, module_path: str, rest: Sequence[str], visited: set[str]
    ) -> str | None:
        scope = self.scopes.get(module_path)
        if scope is None:
            return None
        if len(rest) == 1:
            symbol = rest[0]
            if symbol in scope.functions:
                return qualified_name(module_path, "", symbol)
            if symbol in scope.classes:
                return self._constructor(symbol)
            # Package re-export: the __init__ imported it from elsewhere.
            reexport = scope.names.get(symbol)
            if reexport is not None:
                return self._resolve_origin(reexport, visited)
            return None
        if len(rest) == 2 and rest[0] in scope.classes:
            return self._method(rest[0], rest[1])
        return None

    # ------------------------------------------------------------- queries

    def reverse_edges(self) -> dict[str, list[tuple[str, CallSite]]]:
        """callee qname → sorted list of (caller qname, call site)."""
        out: dict[str, list[tuple[str, CallSite]]] = {}
        for qname in sorted(self.functions):
            for site in self.functions[qname].calls:
                out.setdefault(site.callee, []).append((qname, site))
        return out

    def iter_functions(self) -> Iterator[FunctionNode]:
        for qname in sorted(self.functions):
            yield self.functions[qname]


def qualified_name(module_path: str, cls: str, name: str) -> str:
    inner = f"{cls}.{name}" if cls else name
    return f"{module_path}::{inner}"


def build_call_graph(
    modules: Iterable["ParsedModule"], index: "ClassIndex"
) -> CallGraph:
    """Build and edge-resolve the call graph for ``modules``."""
    graph = CallGraph()
    for module in sorted(modules, key=lambda m: m.path):
        graph.add_module(module, index)
    graph.resolve_edges()
    return graph

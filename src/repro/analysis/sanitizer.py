"""Runtime determinism sanitizer: the dynamic half of the taint engine.

The static rules (D1–D5) prove no *source-level* path from the
deterministic tiers to a clock or RNG; this context manager proves the
same claim at runtime. Inside it, every module-level wall-clock read
(``time.time``, ``time.monotonic``, …), every module-level draw from
the global ``random`` generator, and ``datetime.datetime.now`` /
``datetime.date.today`` raise :class:`DeterminismViolation` — except
when the *caller* is the sanctioned measurement boundary
(``repro.obs``), identified by frame inspection exactly as the D3
allowlist identifies it by path.

Used by the differential/chaos suites: running a byte-identity arm
under the sanitizer shows the replayed bytes were produced without
touching ambient nondeterminism, not merely that two runs happened to
agree.

What is deliberately **not** patched:

- ``time.sleep`` — it affects wall duration, never produced bytes; the
  runtime's backoff paths may sleep without breaking determinism.
- seeded generator *instances* (``random.Random(seed)``) — drawing from
  an explicitly seeded stream is the sanctioned way to randomize.
- ``from datetime import datetime`` bindings taken **before** the
  sanitizer entered — C-level types cannot be patched in place, so only
  the module attributes are swapped. Rule D3 catches those statically.
"""

from __future__ import annotations

import datetime as _datetime_module
import random as _random_module
import sys
import time as _time_module
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

__all__ = ["DeterminismViolation", "determinism_sanitizer"]


class DeterminismViolation(RuntimeError):
    """A deterministic-path arm touched ambient nondeterminism."""


#: Callers allowed to reach the real clock: the observability layer is
#: the accounted measurement boundary (mirrors the D3/D4 barrier).
DEFAULT_ALLOWED_CALLERS: tuple[str, ...] = ("repro.obs",)

#: Module-level clock reads patched on :mod:`time`.
_TIME_FUNCS: tuple[str, ...] = (
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
)

#: Module-level draws from the *global* (unseeded) random generator.
_RANDOM_FUNCS: tuple[str, ...] = (
    "random",
    "randint",
    "randrange",
    "randbytes",
    "getrandbits",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "triangular",
    "betavariate",
    "expovariate",
    "gammavariate",
    "gauss",
    "lognormvariate",
    "normalvariate",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
)


def _caller_allowed(allowed: Sequence[str]) -> bool:
    """Whether the frame that called the patched function is sanctioned.

    Frame 0 is this helper, frame 1 the guard wrapper, frame 2 the
    caller of the patched function.
    """
    frame = sys._getframe(2)
    name = frame.f_globals.get("__name__", "")
    return any(name == p or name.startswith(p + ".") for p in allowed)


def _guard(
    qualname: str,
    original: Callable,
    allowed: Sequence[str],
    hint: str,
) -> Callable:
    def guarded(*args, **kwargs):
        if allowed and _caller_allowed(allowed):
            return original(*args, **kwargs)
        caller = sys._getframe(1).f_globals.get("__name__", "<unknown>")
        raise DeterminismViolation(
            f"{qualname}() called from {caller!r} under the determinism "
            f"sanitizer; {hint}"
        )

    guarded.__name__ = getattr(original, "__name__", qualname)
    return guarded


def _raising_datetime(allowed: Sequence[str]) -> type:
    real = _datetime_module.datetime

    class SanitizedDatetime(real):  # type: ignore[misc, valid-type]
        @classmethod
        def now(cls, tz=None):
            if allowed and _caller_allowed(allowed):
                return real.now(tz)
            raise DeterminismViolation(
                "datetime.datetime.now() under the determinism sanitizer; "
                "timestamps on deterministic paths must come from the "
                "replayed stream, not the wall clock"
            )

        @classmethod
        def utcnow(cls):
            raise DeterminismViolation(
                "datetime.datetime.utcnow() under the determinism sanitizer"
            )

        @classmethod
        def today(cls):
            raise DeterminismViolation(
                "datetime.datetime.today() under the determinism sanitizer"
            )

    return SanitizedDatetime


def _raising_date(allowed: Sequence[str]) -> type:
    real = _datetime_module.date

    class SanitizedDate(real):  # type: ignore[misc, valid-type]
        @classmethod
        def today(cls):
            raise DeterminismViolation(
                "datetime.date.today() under the determinism sanitizer"
            )

    return SanitizedDate


@contextmanager
def determinism_sanitizer(
    allowed_callers: Sequence[str] = DEFAULT_ALLOWED_CALLERS,
) -> Iterator[None]:
    """Raise on ambient clock/RNG use for the duration of the block.

    ``allowed_callers`` are dotted module prefixes whose calls pass
    through to the real functions (default: ``repro.obs``, the
    measurement boundary). Pass ``()`` to allow nothing.
    """
    saved: list[tuple[object, str, object]] = []

    def patch(owner: object, name: str, replacement: object) -> None:
        saved.append((owner, name, getattr(owner, name)))
        setattr(owner, name, replacement)

    clock_hint = (
        "deterministic paths must not read clocks — route measurement "
        "through repro.obs.clock"
    )
    rng_hint = (
        "draws must come from an explicitly seeded random.Random(seed) "
        "instance, never the global generator"
    )
    try:
        for name in _TIME_FUNCS:
            original = getattr(_time_module, name, None)
            if original is None:  # pragma: no cover - platform-dependent
                continue
            patch(
                _time_module,
                name,
                _guard(f"time.{name}", original, allowed_callers, clock_hint),
            )
        for name in _RANDOM_FUNCS:
            original = getattr(_random_module, name, None)
            if original is None:  # pragma: no cover - version-dependent
                continue
            # No caller is sanctioned to draw from the global stream.
            patch(
                _random_module,
                name,
                _guard(f"random.{name}", original, (), rng_hint),
            )
        patch(_datetime_module, "datetime", _raising_datetime(allowed_callers))
        patch(_datetime_module, "date", _raising_date(allowed_callers))
        yield
    finally:
        for owner, name, original in reversed(saved):
            setattr(owner, name, original)

"""Visual analytics backend (headless).

The paper's fourth analytics pillar is "interactive Visual Analytics for
supporting human exploration and interpretation". This package is the
data/rendering backend a VA frontend would sit on: aggregation layers
(density surfaces, temporal profiles) plus renderers producing standalone
SVG files and terminal (ASCII) maps — no GUI toolkit required.
"""

from repro.viz.density import density_from_reports, temporal_profile
from repro.viz.svg import SvgMap
from repro.viz.ascii_map import ascii_density, ascii_trajectories
from repro.viz.report import HtmlReport

__all__ = [
    "density_from_reports",
    "temporal_profile",
    "SvgMap",
    "ascii_density",
    "ascii_trajectories",
    "HtmlReport",
]

"""Terminal (ASCII) maps for quick interactive exploration."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.model.trajectory import Trajectory

_SHADES = " .:-=+*#%@"


def ascii_density(density: np.ndarray, max_width: int = 72) -> str:
    """Render a density array (ny, nx) as shaded text, north at the top."""
    ny, nx = density.shape
    if nx > max_width:
        # Downsample columns to fit the terminal.
        factor = int(np.ceil(nx / max_width))
        trimmed = density[:, : (nx // factor) * factor]
        density = trimmed.reshape(ny, -1, factor).sum(axis=2)
        ny, nx = density.shape
    peak = float(density.max())
    if peak <= 0:
        return "\n".join(" " * nx for __ in range(ny))
    log_peak = np.log1p(peak)
    lines = []
    for iy in range(ny - 1, -1, -1):  # top row = north
        chars = []
        for ix in range(nx):
            value = float(density[iy, ix])
            level = int(np.log1p(value) / log_peak * (len(_SHADES) - 1)) if value > 0 else 0
            chars.append(_SHADES[level])
        lines.append("".join(chars))
    return "\n".join(lines)


def ascii_trajectories(
    trajectories: Iterable[Trajectory],
    bbox: BBox,
    width: int = 72,
    height: int = 24,
) -> str:
    """Plot trajectories as characters on a text canvas.

    Each trajectory uses a distinct letter (A, B, C, ...); overlaps show
    the most recent writer. The final position of each is uppercase '#'.
    """
    canvas = [[" "] * width for __ in range(height)]
    letters = "abcdefghijklmnopqrstuvwxyz"

    def place(lon: float, lat: float) -> tuple[int, int] | None:
        if not bbox.contains(lon, lat):
            return None
        x = int((lon - bbox.min_lon) / bbox.width * (width - 1))
        y = int((bbox.max_lat - lat) / bbox.height * (height - 1))
        return (x, y)

    for index, trajectory in enumerate(trajectories):
        letter = letters[index % len(letters)]
        for i in range(len(trajectory)):
            spot = place(float(trajectory.lon[i]), float(trajectory.lat[i]))
            if spot is not None:
                canvas[spot[1]][spot[0]] = letter
        if len(trajectory):
            spot = place(float(trajectory.lon[-1]), float(trajectory.lat[-1]))
            if spot is not None:
                canvas[spot[1]][spot[0]] = "#"
    return "\n".join("".join(row) for row in canvas)

"""Standalone SVG map rendering (no external dependencies).

:class:`SvgMap` accumulates layers — density heatmap, zone polygons,
trajectories, event markers — over a geographic bounding box and renders
one self-contained SVG document.
"""

from __future__ import annotations

import html
from typing import Iterable, Sequence

import numpy as np

from repro.hashing import stable_hash
from repro.geo.bbox import BBox
from repro.geo.grid import GeoGrid
from repro.geo.polygon import Polygon
from repro.model.events import ComplexEvent, SimpleEvent
from repro.model.trajectory import Trajectory

_TRAJECTORY_COLORS = (
    "#1b6ca8", "#c0392b", "#27ae60", "#8e44ad", "#d35400",
    "#16a085", "#7f8c8d", "#2c3e50", "#e67e22", "#2980b9",
)


class SvgMap:
    """Builds an SVG map of a geographic area layer by layer."""

    def __init__(self, bbox: BBox, width_px: int = 900) -> None:
        if width_px <= 0:
            raise ValueError("width_px must be positive")
        if bbox.width <= 0 or bbox.height <= 0:
            raise ValueError("bbox must have positive extent")
        self.bbox = bbox
        self.width = width_px
        self.height = max(1, int(width_px * bbox.height / bbox.width))
        self._elements: list[str] = []

    # -- projection -----------------------------------------------------------

    def _xy(self, lon: float, lat: float) -> tuple[float, float]:
        x = (lon - self.bbox.min_lon) / self.bbox.width * self.width
        y = (self.bbox.max_lat - lat) / self.bbox.height * self.height
        return (round(x, 2), round(y, 2))

    # -- layers -----------------------------------------------------------------

    def add_density(self, density: np.ndarray, grid: GeoGrid, opacity: float = 0.7) -> None:
        """A heatmap layer: one rect per non-empty cell, log-scaled blue."""
        if density.shape != (grid.ny, grid.nx):
            raise ValueError("density shape must be (ny, nx) of the grid")
        peak = float(density.max())
        if peak <= 0:
            return
        log_peak = np.log1p(peak)
        for iy in range(grid.ny):
            for ix in range(grid.nx):
                value = float(density[iy, ix])
                if value <= 0:
                    continue
                cell = grid.cell_bbox(ix, iy)
                x, y = self._xy(cell.min_lon, cell.max_lat)
                x2, y2 = self._xy(cell.max_lon, cell.min_lat)
                intensity = np.log1p(value) / log_peak
                self._elements.append(
                    f'<rect x="{x}" y="{y}" width="{round(x2 - x, 2)}" '
                    f'height="{round(y2 - y, 2)}" fill="#08519c" '
                    f'fill-opacity="{round(opacity * intensity, 3)}"/>'
                )

    def add_zone(self, zone: Polygon, color: str = "#c0392b") -> None:
        """A zone polygon layer with its name as a tooltip."""
        points = " ".join(f"{x},{y}" for x, y in (self._xy(*p) for p in zone.ring))
        name = html.escape(zone.name)
        self._elements.append(
            f'<polygon points="{points}" fill="{color}" fill-opacity="0.15" '
            f'stroke="{color}" stroke-width="1.5"><title>{name}</title></polygon>'
        )

    def add_trajectory(self, trajectory: Trajectory, color: str | None = None) -> None:
        """A trajectory polyline with a dot at its final position."""
        if len(trajectory) == 0:
            return
        if color is None:
            # Stable hash: the same entity draws the same color in every
            # run and process (builtin hash() is salted per interpreter).
            color = _TRAJECTORY_COLORS[
                stable_hash(trajectory.entity_id) % len(_TRAJECTORY_COLORS)
            ]
        points = " ".join(
            f"{x},{y}"
            for x, y in (
                self._xy(float(trajectory.lon[i]), float(trajectory.lat[i]))
                for i in range(len(trajectory))
            )
        )
        name = html.escape(trajectory.entity_id)
        self._elements.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.2" stroke-opacity="0.85"><title>{name}</title></polyline>'
        )
        x, y = self._xy(float(trajectory.lon[-1]), float(trajectory.lat[-1]))
        self._elements.append(f'<circle cx="{x}" cy="{y}" r="2.5" fill="{color}"/>')

    def add_trajectories(self, trajectories: Iterable[Trajectory]) -> None:
        """Several trajectories with automatic colours."""
        for trajectory in trajectories:
            self.add_trajectory(trajectory)

    def add_event(self, event: SimpleEvent | ComplexEvent, color: str = "#e74c3c") -> None:
        """An event marker (circle with type tooltip)."""
        if isinstance(event, SimpleEvent):
            lon, lat = event.lon, event.lat
            label = f"{event.event_type} @ {event.t:.0f}s"
        else:
            first = event.contributing[0] if event.contributing else None
            if first is None:
                return
            lon, lat = first.lon, first.lat
            label = f"{event.event_type} [{', '.join(event.entity_ids)}] @ {event.t_end:.0f}s"
        x, y = self._xy(lon, lat)
        self._elements.append(
            f'<circle cx="{x}" cy="{y}" r="5" fill="none" stroke="{color}" '
            f'stroke-width="2"><title>{html.escape(label)}</title></circle>'
        )

    def add_prediction(
        self,
        lon: float,
        lat: float,
        radius_m: float,
        label: str = "",
        color: str = "#8e44ad",
    ) -> None:
        """A predicted position with its uncertainty ring.

        The ring radius is converted from metres to pixels through the
        map's longitudinal scale at the prediction's latitude.
        """
        import math

        from repro.geo.geodesy import EARTH_RADIUS_M

        x, y = self._xy(lon, lat)
        metres_per_deg = (
            math.pi / 180.0 * EARTH_RADIUS_M * max(0.1, math.cos(math.radians(lat)))
        )
        px_per_deg = self.width / self.bbox.width
        radius_px = max(2.0, radius_m / metres_per_deg * px_per_deg)
        title = html.escape(label or f"prediction ±{radius_m:.0f} m")
        self._elements.append(
            f'<circle cx="{x}" cy="{y}" r="{radius_px:.1f}" fill="{color}" '
            f'fill-opacity="0.12" stroke="{color}" stroke-dasharray="4 3" '
            f'stroke-width="1.2"><title>{title}</title></circle>'
        )
        self._elements.append(
            f'<circle cx="{x}" cy="{y}" r="3" fill="{color}"/>'
        )

    def add_label(self, lon: float, lat: float, text: str, size_px: int = 11) -> None:
        """A text label anchored at a position."""
        x, y = self._xy(lon, lat)
        self._elements.append(
            f'<text x="{x}" y="{y}" font-size="{size_px}" '
            f'font-family="sans-serif" fill="#333">{html.escape(text)}</text>'
        )

    # -- output -----------------------------------------------------------------

    def render(self) -> str:
        """The complete SVG document."""
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="{self.width}" height="{self.height}" fill="#f7fbff"/>\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path: str) -> None:
        """Write the SVG document to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())

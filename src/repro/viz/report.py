"""HTML situation reports: one self-contained page per analysis run.

Combines the SVG map, the event log and summary statistics into a single
HTML document — the closest headless stand-in for the paper's
"interactive Visual Analytics for supporting human exploration and
interpretation".
"""

from __future__ import annotations

import html
from typing import Iterable, Sequence

from repro.model.events import ComplexEvent, SimpleEvent

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
  body {{ font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 960px;
         color: #222; }}
  h1 {{ font-size: 1.4rem; }}
  h2 {{ font-size: 1.1rem; margin-top: 2rem; }}
  table {{ border-collapse: collapse; width: 100%; font-size: 0.9rem; }}
  th, td {{ border: 1px solid #ccc; padding: 0.3rem 0.6rem; text-align: left; }}
  th {{ background: #f0f4f8; }}
  .sev-3 {{ background: #fde8e8; }}
  .sev-2 {{ background: #fff4e5; }}
  .map svg {{ border: 1px solid #ccc; max-width: 100%; height: auto; }}
  .stats span {{ display: inline-block; margin-right: 2rem; }}
  .stats b {{ font-size: 1.2rem; }}
</style>
</head>
<body>
<h1>{title}</h1>
{stats_block}
{map_block}
{events_block}
{extra_blocks}
</body>
</html>
"""


class HtmlReport:
    """Accumulates report sections and renders one HTML page."""

    def __init__(self, title: str) -> None:
        self.title = title
        self._stats: list[tuple[str, str]] = []
        self._map_svg: str | None = None
        self._events: list[ComplexEvent | SimpleEvent] = []
        self._extra: list[str] = []

    def add_stat(self, label: str, value) -> None:
        """One headline statistic (shown in the stats strip)."""
        if isinstance(value, float):
            rendered = f"{value:,.3f}" if abs(value) < 100 else f"{value:,.0f}"
        else:
            rendered = str(value)
        self._stats.append((label, rendered))

    def set_map(self, svg_document: str) -> None:
        """Embed the SVG map (as produced by :class:`SvgMap`)."""
        self._map_svg = svg_document

    def add_events(self, events: Iterable[ComplexEvent | SimpleEvent]) -> None:
        """Append events to the event-log table."""
        self._events.extend(events)

    def add_timeline(
        self,
        profile: Sequence[tuple[float, int]],
        heading: str = "Activity timeline",
        width_px: int = 860,
        height_px: int = 80,
    ) -> None:
        """An SVG bar sparkline from a temporal profile.

        Args:
            profile: ``(bucket_start, count)`` pairs as produced by
                :func:`repro.viz.density.temporal_profile`.
        """
        if not profile:
            return
        peak = max(count for __, count in profile)
        if peak <= 0:
            return
        n = len(profile)
        bar_w = max(1.0, width_px / n - 1.0)
        bars = []
        for i, (bucket, count) in enumerate(profile):
            bar_h = max(1.0, count / peak * (height_px - 4))
            x = i * (width_px / n)
            y = height_px - bar_h
            bars.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{bar_h:.1f}" fill="#08519c" fill-opacity="0.8">'
                f"<title>t={bucket:.0f}s: {count}</title></rect>"
            )
        svg = (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" '
            f'height="{height_px}">' + "".join(bars) + "</svg>"
        )
        self._extra.append(f"<h2>{html.escape(heading)}</h2>\n{svg}")

    def add_table(self, heading: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
        """An arbitrary extra table section."""
        cells_header = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
        body_rows = []
        for row in rows:
            cells = "".join(
                f"<td>{html.escape(self._fmt(cell))}</td>" for cell in row
            )
            body_rows.append(f"<tr>{cells}</tr>")
        self._extra.append(
            f"<h2>{html.escape(heading)}</h2>\n<table><tr>{cells_header}</tr>\n"
            + "\n".join(body_rows)
            + "\n</table>"
        )

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    # -- rendering -------------------------------------------------------------

    def render(self) -> str:
        """The complete HTML document."""
        stats_block = ""
        if self._stats:
            spans = "".join(
                f"<span>{html.escape(label)}<br><b>{html.escape(value)}</b></span>"
                for label, value in self._stats
            )
            stats_block = f'<div class="stats">{spans}</div>'

        map_block = f'<h2>Map</h2><div class="map">{self._map_svg}</div>' if self._map_svg else ""

        events_block = ""
        if self._events:
            rows = []
            for event in sorted(self._events, key=self._event_time):
                if isinstance(event, SimpleEvent):
                    t, etype, entities, sev = event.t, event.event_type, event.entity_id, event.severity
                else:
                    t, etype, entities, sev = (
                        event.t_end, event.event_type, ", ".join(event.entity_ids), event.severity
                    )
                rows.append(
                    f'<tr class="sev-{int(sev)}"><td>{t:.0f}</td>'
                    f"<td>{html.escape(etype)}</td>"
                    f"<td>{html.escape(str(entities))}</td>"
                    f"<td>{html.escape(sev.name)}</td></tr>"
                )
            events_block = (
                "<h2>Event log</h2>\n<table>"
                "<tr><th>t (s)</th><th>type</th><th>entities</th><th>severity</th></tr>\n"
                + "\n".join(rows)
                + "\n</table>"
            )

        return _PAGE.format(
            title=html.escape(self.title),
            stats_block=stats_block,
            map_block=map_block,
            events_block=events_block,
            extra_blocks="\n".join(self._extra),
        )

    def save(self, path: str) -> None:
        """Write the document to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())

    @staticmethod
    def _event_time(event) -> float:
        return event.t if isinstance(event, SimpleEvent) else event.t_end

"""Aggregation layers for visual analytics."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.geo.grid import GeoGrid
from repro.model.reports import PositionReport


def density_from_reports(
    reports: Iterable[PositionReport],
    grid: GeoGrid,
) -> np.ndarray:
    """Report counts per grid cell, shaped (ny, nx)."""
    counts = np.zeros((grid.ny, grid.nx))
    for report in reports:
        ix, iy = grid.cell_of(report.lon, report.lat)
        counts[iy, ix] += 1.0
    return counts


def temporal_profile(
    reports: Iterable[PositionReport],
    bucket_s: float = 600.0,
) -> list[tuple[float, int]]:
    """Report counts per time bucket: ``(bucket_start, count)`` sorted.

    The VA frontend renders this as the activity timeline under the map.
    """
    if bucket_s <= 0:
        raise ValueError("bucket_s must be positive")
    counts: dict[float, int] = {}
    for report in reports:
        bucket = (report.t // bucket_s) * bucket_s
        counts[bucket] = counts.get(bucket, 0) + 1
    return sorted(counts.items())

"""The one sanctioned clock in the codebase.

Everything deterministic in this system — crash-resume, batch/record
equivalence, cross-worker merges — forbids reading clocks in data
paths; everything observable — latency histograms, spans, SLO gates —
requires reading them constantly. This module is the boundary between
the two: measurement code imports :func:`monotonic` from here, and the
contract linter (rule D3, ``docs/static-analysis.md``) flags any direct
``time.time()`` / ``time.perf_counter()`` / ``datetime.now()`` call
anywhere else in ``src/``. One allowlisted module instead of dozens of
per-call exemptions, and grep-for-importers enumerates every piece of
code capable of observing wall time.

The reading is :func:`time.perf_counter` — the highest-resolution
monotonic clock Python offers. It has no defined epoch: values are only
meaningful as differences within one process, which is exactly the
shape a latency measurement needs and a record payload must never
contain.
"""

from __future__ import annotations

import time

__all__ = ["monotonic"]


def monotonic() -> float:
    """Seconds on a monotonic, high-resolution, process-local clock.

    Use for interval measurement (``t1 - t0``) feeding latency
    histograms, span durations, deadlines and backpressure waits. Never
    persist raw values or let them reach record payloads: the clock's
    zero point is arbitrary and differs across processes.
    """
    return time.perf_counter()

"""Latency-SLO gating: millisecond budgets checked against the registry.

The paper's operational requirement is stated in milliseconds; the
:class:`SLOChecker` turns it into an executable contract. Each
:class:`SLOBudget` names one latency histogram and caps chosen
percentiles; :meth:`SLOChecker.check` evaluates every budget against a
:class:`~repro.obs.metrics.MetricsRegistry` and reports the violations,
and :meth:`SLOChecker.assert_ok` raises so tests and CI gate on it
(experiment E2's measurement harness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "DEFAULT_E2_BUDGETS",
    "DEFAULT_SERVING_BUDGETS",
    "SLOBudget",
    "SLOChecker",
    "SLOViolation",
    "SLOViolationError",
]


@dataclass(frozen=True, slots=True)
class SLOBudget:
    """Millisecond percentile caps for one latency histogram.

    Attributes:
        metric: Histogram name in the registry (``pipeline.end_to_end``).
        p50_ms / p95_ms / p99_ms: Caps per percentile; ``None`` skips one.
        required: When true, a missing or empty histogram is itself a
            violation (the instrument was never exercised).
    """

    metric: str
    p50_ms: float | None = None
    p95_ms: float | None = None
    p99_ms: float | None = None

    required: bool = False

    def caps(self) -> list[tuple[str, float]]:
        """The configured ``(summary key, cap)`` pairs."""
        out: list[tuple[str, float]] = []
        for key, cap in (("p50_ms", self.p50_ms), ("p95_ms", self.p95_ms), ("p99_ms", self.p99_ms)):
            if cap is not None:
                out.append((key, cap))
        return out


@dataclass(frozen=True, slots=True)
class SLOViolation:
    """One budget breach (or a required metric that never recorded)."""

    metric: str
    percentile: str
    observed_ms: float
    budget_ms: float

    def __str__(self) -> str:
        if self.percentile == "missing":
            return f"{self.metric}: required metric missing or empty"
        return (
            f"{self.metric} {self.percentile} = {self.observed_ms:.3f} ms "
            f"exceeds budget {self.budget_ms:.3f} ms"
        )


class SLOViolationError(AssertionError):
    """Raised by :meth:`SLOChecker.assert_ok`; carries the violations."""

    def __init__(self, violations: list[SLOViolation]) -> None:
        self.violations = violations
        lines = "\n".join(f"  - {v}" for v in violations)
        super().__init__(f"{len(violations)} latency SLO violation(s):\n{lines}")


class SLOChecker:
    """Evaluates a set of :class:`SLOBudget` against a registry."""

    def __init__(self, budgets: Iterable[SLOBudget]) -> None:
        self.budgets = tuple(budgets)

    def check(self, registry: MetricsRegistry) -> list[SLOViolation]:
        """All violations of the configured budgets (empty = compliant)."""
        summaries = registry.histogram_summaries()
        violations: list[SLOViolation] = []
        for budget in self.budgets:
            summary = summaries.get(budget.metric)
            if summary is None or summary["count"] == 0:
                if budget.required:
                    violations.append(
                        SLOViolation(budget.metric, "missing", 0.0, 0.0)
                    )
                continue
            for key, cap in budget.caps():
                observed = summary[key]
                if observed > cap:
                    violations.append(
                        SLOViolation(budget.metric, key, observed, cap)
                    )
        return violations

    def assert_ok(self, registry: MetricsRegistry) -> None:
        """Raise :class:`SLOViolationError` unless every budget holds."""
        violations = self.check(registry)
        if violations:
            raise SLOViolationError(violations)

    def report(self, registry: MetricsRegistry) -> dict:
        """Plain-data check result (for benchmark JSON artifacts)."""
        violations = self.check(registry)
        return {
            "budgets": len(self.budgets),
            "violations": [
                {
                    "metric": v.metric,
                    "percentile": v.percentile,
                    "observed_ms": v.observed_ms,
                    "budget_ms": v.budget_ms,
                }
                for v in violations
            ],
            "ok": not violations,
        }


#: The default E2 budgets: per-stage and end-to-end caps with generous
#: headroom over the measured single-process numbers (EXPERIMENTS.md E2),
#: so regressions of an order of magnitude gate CI without flaking on
#: machine noise.
DEFAULT_E2_BUDGETS: tuple[SLOBudget, ...] = (
    SLOBudget("pipeline.clean", p50_ms=1.0, p99_ms=5.0, required=True),
    SLOBudget("pipeline.synopses", p50_ms=1.0, p99_ms=5.0, required=True),
    SLOBudget("pipeline.rdf", p50_ms=5.0, p99_ms=20.0),
    SLOBudget("pipeline.events", p50_ms=2.0, p99_ms=10.0, required=True),
    SLOBudget("pipeline.detectors", p50_ms=5.0, p99_ms=25.0, required=True),
    SLOBudget("pipeline.end_to_end", p50_ms=10.0, p99_ms=50.0, required=True),
)


#: Per-endpoint serving-tier budgets (experiment E11): server-side
#: handling time of each ``repro.serving`` read endpoint, measured on the
#: warm runtime under the closed-loop load harness. Entity-scoped
#: lookups (state/forecast) are routed to one shard and must stay
#: interactive; fan-out reads (range/query) scan every shard's store in
#: pure Python and get proportionally wider caps. As with E2, caps carry
#: generous headroom over the measured numbers so the CI gate catches
#: order-of-magnitude regressions without flaking on machine noise.
DEFAULT_SERVING_BUDGETS: tuple[SLOBudget, ...] = (
    SLOBudget("serving.request.state", p50_ms=5.0, p99_ms=25.0, required=True),
    SLOBudget("serving.request.forecast", p50_ms=10.0, p99_ms=50.0, required=True),
    SLOBudget("serving.request.trajectory", p50_ms=50.0, p99_ms=250.0),
    SLOBudget("serving.request.range", p50_ms=100.0, p99_ms=500.0, required=True),
    SLOBudget("serving.request.query", p50_ms=200.0, p99_ms=1000.0),
    SLOBudget("serving.request.events", p50_ms=5.0, p99_ms=25.0),
)

"""Hierarchical tracing spans.

A span measures one named unit of work; spans opened while another span
is active become its children, so a run's spans form the parent/child
tree a flamegraph renders: ingest → synopsis → RDF → store → query, with
per-span wall time and record counts.

Spans are deliberately single-threaded (the engine is a single-process
simulation); the active-span stack lives on the :class:`Tracer`, and the
buffer of completed spans is bounded — overflow is *counted*, never
silently lost.
"""

from __future__ import annotations

from repro.obs.clock import monotonic
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span.

    Attributes:
        span_id: Unique id within the tracer (creation order).
        parent_id: Enclosing span's id, or ``None`` for a root span.
        name: Dotted operation name (``pipeline.record``, ``query.scan``).
        start_s: Start time relative to the tracer's epoch, in seconds.
        duration_s: Wall time between enter and exit, in seconds.
        records: Records attributed to the span via :meth:`Span.add_records`.
        depth: Nesting depth (0 for roots).
    """

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    duration_s: float
    records: int
    depth: int

    @property
    def duration_ms(self) -> float:
        """Span wall time in milliseconds."""
        return self.duration_s * 1000.0


class Span:
    """An open span handle; use as a context manager."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "depth", "records", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        depth: int,
        records: int,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.records = records
        self._start = 0.0

    def add_records(self, n: int = 1) -> None:
        """Attribute ``n`` processed records to this span."""
        self.records += n

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        self._start = monotonic()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        ended = monotonic()
        self._tracer._exit(self, ended - self._start)
        return False


class _NullSpan:
    """A reusable no-op span for disabled tracers."""

    __slots__ = ()

    name = ""
    span_id = -1
    parent_id = None
    depth = 0
    records = 0

    def add_records(self, n: int = 1) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: The shared null span handed out by disabled tracers/registries.
NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans and buffers the completed records.

    Args:
        max_spans: Completed-span buffer capacity; completions past it
            increment :attr:`dropped` instead of growing memory.
        enabled: ``False`` makes :meth:`span` return :data:`NULL_SPAN`.
    """

    def __init__(self, max_spans: int = 10_000, enabled: bool = True) -> None:
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self.max_spans = max_spans
        self.enabled = enabled
        self._spans: list[SpanRecord] = []
        self._stack: list[Span] = []
        self._next_id = 0
        self._epoch = monotonic()
        self.dropped = 0

    def span(self, name: str, records: int = 0) -> "Span | _NullSpan":
        """Open a span named ``name``; children of the active span nest."""
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(
            tracer=self,
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=parent.depth + 1 if parent is not None else 0,
            records=records,
        )
        self._next_id += 1
        return span

    def _enter(self, span: Span) -> None:
        self._stack.append(span)

    def _exit(self, span: Span, duration_s: float) -> None:
        # Exits happen in LIFO order under context-manager discipline;
        # tolerate (and trim past) stray handles so a leaked span cannot
        # poison parentage for the rest of the run.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if len(self._spans) >= self.max_spans:
            self.dropped += 1
            return
        self._spans.append(
            SpanRecord(
                span_id=span.span_id,
                parent_id=span.parent_id,
                name=span.name,
                start_s=span._start - self._epoch,
                duration_s=duration_s,
                records=span.records,
                depth=span.depth,
            )
        )

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        """Completed spans in completion order (children before parents)."""
        return tuple(self._spans)

    def roots(self) -> list[SpanRecord]:
        """Root spans (no parent), in completion order."""
        return [s for s in self._spans if s.parent_id is None]

    def children_of(self, span_id: int) -> list[SpanRecord]:
        """Direct children of one span, in completion order."""
        return [s for s in self._spans if s.parent_id == span_id]

    def reset(self) -> None:
        """Drop all completed spans and any active stack."""
        self._spans.clear()
        self._stack.clear()
        self._next_id = 0
        self.dropped = 0
        self._epoch = monotonic()

"""Unified observability: one metrics registry, tracing spans, SLO gates.

Every tier of the reproduction — streams, pipeline, query, store,
in-situ, CEP — reports through this package, so one trace and one
registry cover ingest → synopsis → RDF → store → query end-to-end:

- :class:`MetricsRegistry` — get-or-create counters, gauges and seeded
  latency histograms; hierarchical :meth:`MetricsRegistry.span` tracing;
  a zero-cost disabled mode (:data:`NULL_REGISTRY`).
- Exporters — :class:`JsonLinesExporter` (durable, reload-identical),
  :class:`PrometheusTextExporter`, :class:`InMemoryExporter`.
- :class:`SLOChecker` — millisecond p50/p95/p99 budgets per operator and
  end-to-end, the executable form of the paper's "latency in ms"
  requirement (experiment E2).

The legacy ``repro.streams.metrics`` module re-exports ``Counter`` /
``LatencyHistogram`` / ``OperatorMetrics`` from here with a
``DeprecationWarning``; new code imports from ``repro.obs``.
"""

from repro.obs.export import InMemoryExporter, JsonLinesExporter, PrometheusTextExporter
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    OperatorMetrics,
)
from repro.obs.slo import (
    DEFAULT_E2_BUDGETS,
    DEFAULT_SERVING_BUDGETS,
    SLOBudget,
    SLOChecker,
    SLOViolation,
    SLOViolationError,
)
from repro.obs.tracing import NULL_SPAN, Span, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "OperatorMetrics",
    "Span",
    "SpanRecord",
    "Tracer",
    "NULL_SPAN",
    "InMemoryExporter",
    "JsonLinesExporter",
    "PrometheusTextExporter",
    "SLOBudget",
    "SLOChecker",
    "SLOViolation",
    "SLOViolationError",
    "DEFAULT_E2_BUDGETS",
    "DEFAULT_SERVING_BUDGETS",
]

"""One metrics surface for every tier of the pipeline.

The paper's single quantitative requirement — online processing "must
comply with operational latency requirements (i.e. in ms)" — is only
checkable if every tier reports latency through the *same* instruments.
This module provides them:

- :class:`Counter` / :class:`Gauge` — monotone and settable scalars;
- :class:`LatencyHistogram` — bounded, *seeded* reservoir of latency
  samples with millisecond percentiles (reproducible run-to-run);
- :class:`MetricsRegistry` — the get-or-create home of all instruments,
  plus hierarchical :meth:`MetricsRegistry.span` tracing and a zero-cost
  disabled mode for overhead-sensitive paths.

Disabled registries hand out shared null instruments: recording is a
no-op method call, no samples are ever allocated, and ``span()`` returns
a reusable null context — so instrumented code needs no ``if`` guards.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.obs.clock import monotonic
from repro.obs.tracing import NULL_SPAN, Span, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "OperatorMetrics",
]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Increase the counter by ``n`` (must be non-negative)."""
        if n < 0:
            raise ValueError("counters only increase")
        self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def merge(self, other: "Counter") -> None:
        """Add another counter's total into this one."""
        self._value += other.value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._value = float(value)

    def inc(self, delta: float = 1.0) -> None:
        """Move the gauge by ``delta`` (either sign)."""
        self._value += delta

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class LatencyHistogram:
    """Records individual latency samples and reports percentiles.

    Samples are kept in a bounded reservoir (uniformly thinned) so long
    benchmark runs do not grow memory without bound. Thinning uses an
    instance-owned seeded generator — never the global ``random`` module —
    so runs are reproducible regardless of what else draws randomness.
    """

    def __init__(self, max_samples: int = 100_000, seed: int = 2017) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self._max = max_samples
        self._samples: list[float] = []
        self._seen = 0
        self._seed = seed
        self._rng = random.Random(seed)

    def record(self, latency_s: float) -> None:
        """Record one latency sample, in seconds."""
        self._seen += 1
        if len(self._samples) < self._max:
            self._samples.append(latency_s)
        else:
            # Reservoir sampling keeps the sample uniform over all records.
            j = self._rng.randrange(self._seen)
            if j < self._max:
                self._samples[j] = latency_s
        return None

    def record_many(self, samples: "list[float]") -> None:
        """Record a batch of samples (equivalent to repeated :meth:`record`).

        The batch path exists for hot loops that buffer latencies in a
        plain list and flush periodically — one method call per flush
        instead of one per sample.
        """
        if self._seen == len(self._samples) and self._seen + len(samples) <= self._max:
            self._samples.extend(samples)
            self._seen += len(samples)
            return
        for sample in samples:
            self.record(sample)

    @property
    def samples(self) -> tuple[float, ...]:
        """The retained reservoir samples (for tests and export)."""
        return tuple(self._samples)

    @property
    def count(self) -> int:
        """Total number of samples recorded (including thinned-out ones)."""
        return self._seen

    @property
    def max_samples(self) -> int:
        """Reservoir capacity."""
        return self._max

    @property
    def seed(self) -> int:
        """The seed the reservoir's thinning generator started from."""
        return self._seed

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's retained samples into this reservoir.

        Used to combine per-worker histograms after a parallel run. The
        merged percentiles are computed over the union of the two
        reservoirs (exact when neither reservoir overflowed); the total
        :attr:`count` reflects *all* samples either side ever recorded.
        Deterministic for fixed inputs — merging draws only from this
        histogram's own seeded generator.
        """
        retained = other.samples
        for sample in retained:
            self.record(sample)
        self._seen += other.count - len(retained)

    @classmethod
    def from_samples(
        cls,
        samples: list[float],
        count: int | None = None,
        max_samples: int = 100_000,
        seed: int = 2017,
    ) -> "LatencyHistogram":
        """Rebuild a histogram from exported reservoir samples.

        The reservoir is restored verbatim (no re-thinning), so the
        reloaded percentiles are identical to the exported ones.
        """
        hist = cls(max_samples=max(max_samples, len(samples), 1), seed=seed)
        hist._samples = [float(s) for s in samples]
        hist._seen = count if count is not None else len(samples)
        return hist

    def percentile_ms(self, q: float) -> float:
        """The ``q``-th percentile latency in milliseconds (q in [0, 100])."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples), q)) * 1000.0

    def mean_ms(self) -> float:
        """Mean latency in milliseconds."""
        if not self._samples:
            return 0.0
        return float(np.mean(np.asarray(self._samples))) * 1000.0

    def summary(self) -> dict[str, float]:
        """p50/p95/p99/mean in milliseconds plus the count."""
        return {
            "count": float(self.count),
            "mean_ms": self.mean_ms(),
            "p50_ms": self.percentile_ms(50),
            "p95_ms": self.percentile_ms(95),
            "p99_ms": self.percentile_ms(99),
        }


class _NullCounter(Counter):
    """Counter that ignores every increment (disabled-registry mode)."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        return None

    def merge(self, other: Counter) -> None:
        return None


class _NullGauge(Gauge):
    """Gauge that ignores every set (disabled-registry mode)."""

    __slots__ = ()

    def set(self, value: float) -> None:
        return None

    def inc(self, delta: float = 1.0) -> None:
        return None


class _NullHistogram(LatencyHistogram):
    """Histogram that drops every sample (disabled-registry mode).

    Never allocates sample storage beyond the (empty) list created at
    construction; a single shared instance serves a whole registry.
    """

    def record(self, latency_s: float) -> None:
        return None

    def record_many(self, samples: "list[float]") -> None:
        return None

    def merge(self, other: LatencyHistogram) -> None:
        return None


@dataclass
class OperatorMetrics:
    """Per-operator metric bundle collected by the stream runner."""

    name: str
    records_in: Counter = field(default_factory=Counter)
    records_out: Counter = field(default_factory=Counter)
    processing_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    _started_at: float | None = None
    _ended_at: float | None = None

    def mark_start(self) -> None:
        """Record wall-clock start of processing."""
        if self._started_at is None:
            self._started_at = monotonic()

    def mark_end(self) -> None:
        """Record wall-clock end of processing."""
        self._ended_at = monotonic()

    def throughput_rps(self) -> float:
        """Records-in per wall-clock second over the run."""
        if self._started_at is None or self._ended_at is None:
            return 0.0
        elapsed = self._ended_at - self._started_at
        if elapsed <= 0:
            return 0.0
        return self.records_in.value / elapsed

    def summary(self) -> dict[str, float]:
        """Flat metric summary for reporting."""
        out = {
            "records_in": float(self.records_in.value),
            "records_out": float(self.records_out.value),
            "throughput_rps": self.throughput_rps(),
        }
        out.update(self.processing_latency.summary())
        return out


class _Timer:
    """Context manager recording its body's wall time into a histogram."""

    __slots__ = ("_hist", "_started")

    def __init__(self, hist: LatencyHistogram) -> None:
        self._hist = hist
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = monotonic()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._hist.record(monotonic() - self._started)
        return False


class MetricsRegistry:
    """The single home of every instrument and trace in a process tier.

    Instruments are created on first use and cached by name (dotted
    names by convention: ``pipeline.clean``, ``store.add_document``).
    Histograms derive their reservoir seed from the registry seed and
    the metric name, so two registries built with the same seed produce
    identical reservoirs for the same sample streams — percentiles are
    comparable run-to-run.

    Args:
        seed: Base seed for all histogram reservoirs.
        max_samples: Reservoir capacity per histogram.
        max_spans: Trace-buffer capacity (completed spans beyond it are
            dropped and counted, never silently lost).
        enabled: ``False`` turns the registry into a zero-cost no-op:
            all instruments are shared null objects and spans are a
            reusable null context.
    """

    def __init__(
        self,
        seed: int = 2017,
        max_samples: int = 100_000,
        max_spans: int = 10_000,
        enabled: bool = True,
    ) -> None:
        self.seed = seed
        self.max_samples = max_samples
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self.tracer = Tracer(max_spans=max_spans, enabled=enabled)
        self._null_counter = _NullCounter()
        self._null_gauge = _NullGauge()
        self._null_histogram = _NullHistogram(max_samples=1, seed=0)

    # -- instruments --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        if not self.enabled:
            return self._null_counter
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        if not self.enabled:
            return self._null_gauge
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> LatencyHistogram:
        """The latency histogram under ``name`` (created on first use)."""
        if not self.enabled:
            return self._null_histogram
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = LatencyHistogram(
                max_samples=self.max_samples, seed=self._derive_seed(name)
            )
        return hist

    def _derive_seed(self, name: str) -> int:
        return self.seed ^ zlib.crc32(name.encode("utf-8"))

    def timer(self, name: str) -> _Timer:
        """Context manager timing its body into ``histogram(name)``."""
        return _Timer(self.histogram(name))

    # -- tracing ------------------------------------------------------------

    def span(self, name: str, records: int = 0) -> Span:
        """Open a hierarchical tracing span (see :class:`~repro.obs.tracing.Tracer`).

        Use as a context manager; nesting within the same registry builds
        the parent/child tree one flamegraph renders. Disabled registries
        return a shared null span.
        """
        return self.tracer.span(name, records=records)

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        """All completed spans, in completion order."""
        return self.tracer.spans

    # -- aggregation --------------------------------------------------------

    def absorb_operator(self, metrics: OperatorMetrics, prefix: str = "streams") -> None:
        """Fold one stream operator's metric bundle into the registry.

        Populates ``{prefix}.{op}.records_in`` / ``records_out`` counters
        and the ``{prefix}.{op}.latency`` histogram — called by the stream
        runner after a run so operator metrics land on the shared surface
        without per-record overhead.
        """
        if not self.enabled:
            return
        base = f"{prefix}.{metrics.name}"
        self.counter(f"{base}.records_in").inc(metrics.records_in.value)
        self.counter(f"{base}.records_out").inc(metrics.records_out.value)
        self.histogram(f"{base}.latency").merge(metrics.processing_latency)

    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold another registry (e.g. a parallel worker's) into this one.

        Counters add, gauges take the other side's latest value, and
        histograms merge reservoirs (see :meth:`LatencyHistogram.merge`).
        ``prefix`` namespaces the incoming metrics (``prefix + name``).
        """
        if not self.enabled or not other.enabled:
            return
        for name, counter in other._counters.items():
            self.counter(prefix + name).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(prefix + name).set(gauge.value)
        for name, hist in other._histograms.items():
            self.histogram(prefix + name).merge(hist)

    # -- introspection ------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """All counter values by name."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> dict[str, float]:
        """All gauge values by name."""
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histogram_names(self) -> Iterator[str]:
        """Registered histogram names, sorted."""
        yield from sorted(self._histograms)

    def histogram_summaries(self) -> dict[str, dict[str, float]]:
        """Percentile summaries of every histogram, by name."""
        return {name: self._histograms[name].summary() for name in sorted(self._histograms)}

    def as_dict(self) -> dict:
        """A plain-data snapshot of the whole registry.

        The common observability schema carried by
        :class:`repro.core.pipeline.PipelineResult` and
        :class:`repro.query.executor.ExecutionReport`.
        """
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histogram_summaries(),
            "trace": {
                "spans": len(self.tracer.spans),
                "spans_dropped": self.tracer.dropped,
            },
        }

    def summary(self) -> dict[str, dict[str, float]]:
        """Alias of :meth:`histogram_summaries` (the latency view)."""
        return self.histogram_summaries()

    def reset(self) -> None:
        """Drop every instrument and trace."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.tracer.reset()


#: A shared disabled registry for callers that opt out of observability.
NULL_REGISTRY = MetricsRegistry(enabled=False)

"""Pluggable exporters for the observability layer.

Three targets, matching how the numbers are consumed:

- :class:`JsonLinesExporter` — the durable format: one JSON object per
  line for every counter, gauge, histogram (with its retained reservoir)
  and completed span. A trace file reloads into a registry whose
  percentiles are *identical* to the exported ones, so benchmark
  artifacts are comparable across runs and machines.
- :class:`PrometheusTextExporter` — a prometheus-style text dump for
  eyeballing and scraping-shaped tooling.
- :class:`InMemoryExporter` — collects snapshots for tests.
"""

from __future__ import annotations

import json
import re
from typing import IO

from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.tracing import SpanRecord

__all__ = ["InMemoryExporter", "JsonLinesExporter", "PrometheusTextExporter"]


class InMemoryExporter:
    """Keeps registry snapshots in memory (for tests)."""

    def __init__(self) -> None:
        self.snapshots: list[dict] = []

    def export(self, registry: MetricsRegistry) -> dict:
        """Snapshot the registry; returns (and retains) the snapshot."""
        snapshot = registry.as_dict()
        self.snapshots.append(snapshot)
        return snapshot


class JsonLinesExporter:
    """Writes/reads a registry as JSON-lines.

    Line schema (one object per line, ``type`` discriminated)::

        {"type": "meta", "seed": 2017, "max_samples": 100000}
        {"type": "counter", "name": "...", "value": 12}
        {"type": "gauge", "name": "...", "value": 0.97}
        {"type": "histogram", "name": "...", "count": 8500,
         "samples": [...], "max_samples": 100000, "seed": 123}
        {"type": "span", "span_id": 0, "parent_id": null, "name": "...",
         "start_ms": 0.01, "duration_ms": 1.2, "records": 10, "depth": 0}
    """

    def export(self, registry: MetricsRegistry, path: str) -> int:
        """Write the registry to ``path``; returns the line count."""
        lines = 0
        with open(path, "w", encoding="utf-8") as fh:
            lines += self._write(fh, registry)
        return lines

    def _write(self, fh: IO[str], registry: MetricsRegistry) -> int:
        def emit(obj: dict) -> None:
            fh.write(json.dumps(obj, sort_keys=True) + "\n")

        emit({"type": "meta", "seed": registry.seed, "max_samples": registry.max_samples})
        n = 1
        for name, value in registry.counters().items():
            emit({"type": "counter", "name": name, "value": value})
            n += 1
        for name, value in registry.gauges().items():
            emit({"type": "gauge", "name": name, "value": value})
            n += 1
        for name in registry.histogram_names():
            hist = registry.histogram(name)
            emit(
                {
                    "type": "histogram",
                    "name": name,
                    "count": hist.count,
                    "samples": list(hist.samples),
                    "max_samples": hist.max_samples,
                    "seed": hist.seed,
                }
            )
            n += 1
        for span in registry.spans:
            emit(
                {
                    "type": "span",
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "name": span.name,
                    "start_ms": span.start_s * 1000.0,
                    "duration_ms": span.duration_ms,
                    "records": span.records,
                    "depth": span.depth,
                }
            )
            n += 1
        return n

    def load(self, path: str) -> MetricsRegistry:
        """Reload a registry from a JSON-lines export.

        Histogram reservoirs are restored verbatim, so every percentile
        matches the exported registry exactly. Spans are reinstated into
        the tracer buffer in file order.
        """
        registry = MetricsRegistry()
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                kind = obj.get("type")
                if kind == "meta":
                    registry = MetricsRegistry(
                        seed=obj["seed"], max_samples=obj["max_samples"]
                    )
                elif kind == "counter":
                    registry.counter(obj["name"]).inc(obj["value"])
                elif kind == "gauge":
                    registry.gauge(obj["name"]).set(obj["value"])
                elif kind == "histogram":
                    registry._histograms[obj["name"]] = LatencyHistogram.from_samples(
                        obj["samples"],
                        count=obj["count"],
                        max_samples=obj["max_samples"],
                        seed=obj["seed"],
                    )
                elif kind == "span":
                    registry.tracer._spans.append(
                        SpanRecord(
                            span_id=obj["span_id"],
                            parent_id=obj["parent_id"],
                            name=obj["name"],
                            start_s=obj["start_ms"] / 1000.0,
                            duration_s=obj["duration_ms"] / 1000.0,
                            records=obj["records"],
                            depth=obj["depth"],
                        )
                    )
                else:
                    raise ValueError(f"unknown line type {kind!r} in {path}")
        return registry


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a prometheus identifier."""
    return re.sub(r"[^a-zA-Z0-9_]", "_", name)


class PrometheusTextExporter:
    """Renders a registry in the prometheus text exposition format.

    Histograms are exposed as summaries: ``<name>_ms{quantile="0.5"}``
    lines plus ``_count``, all in milliseconds.
    """

    def render(self, registry: MetricsRegistry) -> str:
        """The registry as prometheus-style text."""
        out: list[str] = []
        for name, value in registry.counters().items():
            prom = _prom_name(name)
            out.append(f"# TYPE {prom} counter")
            out.append(f"{prom}_total {value}")
        for name, value in registry.gauges().items():
            prom = _prom_name(name)
            out.append(f"# TYPE {prom} gauge")
            out.append(f"{prom} {value}")
        for name, summary in registry.histogram_summaries().items():
            prom = _prom_name(name)
            out.append(f"# TYPE {prom}_ms summary")
            for q, key in ((0.5, "p50_ms"), (0.95, "p95_ms"), (0.99, "p99_ms")):
                out.append(f'{prom}_ms{{quantile="{q}"}} {summary[key]:.6f}')
            out.append(f"{prom}_ms_count {int(summary['count'])}")
        return "\n".join(out) + "\n"

    def export(self, registry: MetricsRegistry, path: str) -> None:
        """Write :meth:`render` output to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render(registry))

"""The datAcron-style ontology vocabulary.

Namespaces and the classes/properties used by the transformers. The names
follow the published datAcron ontology's spirit (moving objects, semantic
trajectory nodes, events, weather conditions) without importing it
verbatim — the reproduction needs a stable, self-contained vocabulary.
"""

from __future__ import annotations

from repro.rdf.terms import Namespace

DATACRON = Namespace("http://www.datacron-project.eu/datAcron#")
"""Core ontology: moving objects, trajectories, events."""

UNIPI = Namespace("http://www.datacron-project.eu/resource/")
"""Resource namespace for minted individuals (entities, nodes, events)."""

GEO = Namespace("http://www.w3.org/2003/01/geo/wgs84_pos#")
"""WGS84 vocabulary: lon / lat / alt."""

TIME = Namespace("http://www.w3.org/2006/time#")
"""OWL-Time-ish vocabulary: instants and seconds."""

RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
"""RDF core (rdf:type)."""

XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
"""XML Schema datatypes for literals."""


# Classes ------------------------------------------------------------------

CLASS_MOVING_OBJECT = DATACRON.MovingObject
CLASS_VESSEL = DATACRON.Vessel
CLASS_AIRCRAFT = DATACRON.Aircraft
CLASS_SEMANTIC_NODE = DATACRON.SemanticNode
CLASS_TRAJECTORY = DATACRON.Trajectory
CLASS_EVENT = DATACRON.Event
CLASS_WEATHER_CONDITION = DATACRON.WeatherCondition
CLASS_ZONE = DATACRON.Zone

# Properties ---------------------------------------------------------------

PROP_TYPE = RDF.type
PROP_OF_MOVING_OBJECT = DATACRON.ofMovingObject
PROP_HAS_NODE = DATACRON.hasSemanticNode
PROP_SPEED = DATACRON.speed
PROP_HEADING = DATACRON.heading
PROP_VERTICAL_RATE = DATACRON.verticalRate
PROP_NODE_TYPE = DATACRON.nodeType
PROP_SOURCE = DATACRON.reportedBy
PROP_ST_KEY = DATACRON.spatioTemporalKey
PROP_NAME = DATACRON.name
PROP_ENTITY_TYPE = DATACRON.entityType
PROP_MAX_SPEED = DATACRON.maxSpeed
PROP_EVENT_TYPE = DATACRON.eventType
PROP_SEVERITY = DATACRON.severity
PROP_INVOLVES = DATACRON.involves
PROP_OCCURRED_IN = DATACRON.occurredIn
PROP_WIND_SPEED = DATACRON.windSpeed
PROP_WIND_DIR = DATACRON.windDirection
PROP_WAVE_HEIGHT = DATACRON.waveHeight
PROP_WITHIN_ZONE = DATACRON.withinZone
PROP_NEAR = DATACRON.nearTo
PROP_HAS_WEATHER = DATACRON.hasWeatherCondition

PROP_LON = GEO.long
PROP_LAT = GEO.lat
PROP_ALT = GEO.alt

PROP_TIMESTAMP = TIME.inSeconds
PROP_T_START = TIME.hasBeginning
PROP_T_END = TIME.hasEnd

# Datatypes ----------------------------------------------------------------

XSD_DOUBLE = XSD.double.value
XSD_LONG = XSD.long.value
XSD_STRING = XSD.string.value
XSD_BOOLEAN = XSD.boolean.value

"""Transformers: every record type → the common RDF representation.

One :class:`RdfTransformer` instance is configured once (optionally with a
spatio-temporal encoding grid) and then converts surveillance reports,
entity metadata, analytics outputs (events), weather observations, zones
and discovered links into triples.

The *spatio-temporal key* is the store-level design choice the paper hints
at with "sophisticated RDF partitioning algorithms": every position node
carries an encoded ``(grid cell, time bucket)`` integer literal, letting
the parallel store route and prune by space/time without decoding
geometry. Experiment E8 ablates it.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.geo.grid import GeoGrid
from repro.geo.polygon import Polygon
from repro.insitu.critical import AnnotatedReport
from repro.model.entities import Aircraft, MovingEntity, Vessel
from repro.model.events import ComplexEvent, SimpleEvent
from repro.model.points import Domain
from repro.model.reports import PositionReport
from repro.rdf import vocabulary as V
from repro.rdf.terms import IRI, Literal, Triple
from repro.sources.weather import WeatherCell

_TIME_BUCKET_BITS = 20
_TIME_BUCKET_MASK = (1 << _TIME_BUCKET_BITS) - 1


def entity_iri(entity_id: str) -> IRI:
    """IRI of a moving object individual."""
    return V.UNIPI[f"obj/{entity_id}"]


def position_node_iri(entity_id: str, t: float) -> IRI:
    """IRI of a semantic (position) node of an entity at a time."""
    return V.UNIPI[f"node/{entity_id}/{t:.3f}"]


def event_iri(event_type: str, t: float, entity_ids: Iterable[str]) -> IRI:
    """IRI of an event individual."""
    tag = "+".join(entity_ids)
    return V.UNIPI[f"event/{event_type}/{tag}/{t:.3f}"]


def zone_iri(name: str) -> IRI:
    """IRI of a zone individual."""
    return V.UNIPI[f"zone/{name}"]


def weather_iri(cell_id: int, t_start: float) -> IRI:
    """IRI of a weather observation individual."""
    return V.UNIPI[f"weather/{cell_id}/{t_start:.0f}"]


class RdfTransformer:
    """Converts system records to triples of the common representation.

    Args:
        st_grid: Grid used for the spatio-temporal key encoding. When
            ``None`` (ablation), no key triples are produced.
        time_bucket_s: Temporal bucket width of the key encoding.
    """

    def __init__(self, st_grid: GeoGrid | None = None, time_bucket_s: float = 3600.0) -> None:
        if time_bucket_s <= 0:
            raise ValueError("time_bucket_s must be positive")
        self.st_grid = st_grid
        self.time_bucket_s = time_bucket_s

    # -- spatio-temporal key ------------------------------------------------

    def st_key(self, lon: float, lat: float, t: float) -> int:
        """Encode (cell, time bucket) into one integer.

        Layout: ``cell_id << 20 | (bucket & 0xFFFFF)`` — the high bits give
        spatial locality (used by spatial partitioners), the low bits allow
        temporal pruning.
        """
        if self.st_grid is None:
            raise ValueError("transformer has no st_grid configured")
        cell = self.st_grid.cell_id(lon, lat)
        bucket = int(t // self.time_bucket_s) & _TIME_BUCKET_MASK
        return (cell << _TIME_BUCKET_BITS) | bucket

    @staticmethod
    def decode_st_key(key: int) -> tuple[int, int]:
        """Decode a key back to ``(cell_id, time_bucket)``."""
        return (key >> _TIME_BUCKET_BITS, key & _TIME_BUCKET_MASK)

    # -- transformers ---------------------------------------------------------

    def report_to_triples(self, item: PositionReport | AnnotatedReport) -> list[Triple]:
        """Triples for one (possibly annotated) position report."""
        if isinstance(item, AnnotatedReport):
            report = item.report
            node_types = [c.value for c in item.critical]
        else:
            report = item
            node_types = []
        node = position_node_iri(report.entity_id, report.t)
        obj = entity_iri(report.entity_id)
        triples = [
            Triple(node, V.PROP_TYPE, V.CLASS_SEMANTIC_NODE),
            Triple(node, V.PROP_OF_MOVING_OBJECT, obj),
            Triple(node, V.PROP_LON, Literal(report.lon, V.XSD_DOUBLE)),
            Triple(node, V.PROP_LAT, Literal(report.lat, V.XSD_DOUBLE)),
            Triple(node, V.PROP_TIMESTAMP, Literal(report.t, V.XSD_DOUBLE)),
            Triple(node, V.PROP_SOURCE, Literal(report.source.value, V.XSD_STRING)),
        ]
        if report.alt is not None:
            triples.append(Triple(node, V.PROP_ALT, Literal(report.alt, V.XSD_DOUBLE)))
        if report.speed is not None:
            triples.append(Triple(node, V.PROP_SPEED, Literal(report.speed, V.XSD_DOUBLE)))
        if report.heading is not None:
            triples.append(Triple(node, V.PROP_HEADING, Literal(report.heading, V.XSD_DOUBLE)))
        if report.vertical_rate is not None:
            triples.append(
                Triple(node, V.PROP_VERTICAL_RATE, Literal(report.vertical_rate, V.XSD_DOUBLE))
            )
        for node_type in node_types:
            triples.append(Triple(node, V.PROP_NODE_TYPE, Literal(node_type, V.XSD_STRING)))
        if self.st_grid is not None:
            key = self.st_key(report.lon, report.lat, report.t)
            triples.append(Triple(node, V.PROP_ST_KEY, Literal(key, V.XSD_LONG)))
        return triples

    def entity_to_triples(self, entity: MovingEntity) -> list[Triple]:
        """Triples for one entity's static description."""
        obj = entity_iri(entity.entity_id)
        if isinstance(entity, Vessel):
            klass = V.CLASS_VESSEL
            kind = entity.vessel_type
        elif isinstance(entity, Aircraft):
            klass = V.CLASS_AIRCRAFT
            kind = entity.aircraft_type
        else:
            klass = V.CLASS_MOVING_OBJECT
            kind = entity.domain.value
        return [
            Triple(obj, V.PROP_TYPE, klass),
            Triple(obj, V.PROP_NAME, Literal(entity.name, V.XSD_STRING)),
            Triple(obj, V.PROP_ENTITY_TYPE, Literal(kind, V.XSD_STRING)),
            Triple(obj, V.PROP_MAX_SPEED, Literal(entity.max_speed_mps, V.XSD_DOUBLE)),
        ]

    def event_to_triples(self, event: SimpleEvent | ComplexEvent) -> list[Triple]:
        """Triples for one analytics result (simple or complex event)."""
        if isinstance(event, SimpleEvent):
            iri = event_iri(event.event_type, event.t, (event.entity_id,))
            triples = [
                Triple(iri, V.PROP_TYPE, V.CLASS_EVENT),
                Triple(iri, V.PROP_EVENT_TYPE, Literal(event.event_type, V.XSD_STRING)),
                Triple(iri, V.PROP_TIMESTAMP, Literal(event.t, V.XSD_DOUBLE)),
                Triple(iri, V.PROP_SEVERITY, Literal(int(event.severity), V.XSD_LONG)),
                Triple(iri, V.PROP_INVOLVES, entity_iri(event.entity_id)),
                Triple(iri, V.PROP_LON, Literal(event.lon, V.XSD_DOUBLE)),
                Triple(iri, V.PROP_LAT, Literal(event.lat, V.XSD_DOUBLE)),
            ]
            if self.st_grid is not None:
                key = self.st_key(event.lon, event.lat, event.t)
                triples.append(Triple(iri, V.PROP_ST_KEY, Literal(key, V.XSD_LONG)))
            return triples

        iri = event_iri(event.event_type, event.t_end, event.entity_ids)
        triples = [
            Triple(iri, V.PROP_TYPE, V.CLASS_EVENT),
            Triple(iri, V.PROP_EVENT_TYPE, Literal(event.event_type, V.XSD_STRING)),
            Triple(iri, V.PROP_T_START, Literal(event.t_start, V.XSD_DOUBLE)),
            Triple(iri, V.PROP_T_END, Literal(event.t_end, V.XSD_DOUBLE)),
            Triple(iri, V.PROP_SEVERITY, Literal(int(event.severity), V.XSD_LONG)),
        ]
        for eid in event.entity_ids:
            triples.append(Triple(iri, V.PROP_INVOLVES, entity_iri(eid)))
        return triples

    def weather_to_triples(self, cell: WeatherCell) -> list[Triple]:
        """Triples for one weather observation."""
        iri = weather_iri(cell.cell_id, cell.t_start)
        lon, lat = cell.bbox.center
        return [
            Triple(iri, V.PROP_TYPE, V.CLASS_WEATHER_CONDITION),
            Triple(iri, V.PROP_T_START, Literal(cell.t_start, V.XSD_DOUBLE)),
            Triple(iri, V.PROP_T_END, Literal(cell.t_end, V.XSD_DOUBLE)),
            Triple(iri, V.PROP_LON, Literal(lon, V.XSD_DOUBLE)),
            Triple(iri, V.PROP_LAT, Literal(lat, V.XSD_DOUBLE)),
            Triple(iri, V.PROP_WIND_SPEED, Literal(cell.wind_speed_mps, V.XSD_DOUBLE)),
            Triple(iri, V.PROP_WIND_DIR, Literal(cell.wind_dir_deg, V.XSD_DOUBLE)),
            Triple(iri, V.PROP_WAVE_HEIGHT, Literal(cell.wave_height_m, V.XSD_DOUBLE)),
        ]

    def zone_to_triples(self, zone: Polygon) -> list[Triple]:
        """Triples for one zone of interest (centroid + name)."""
        iri = zone_iri(zone.name)
        lon, lat = zone.centroid()
        return [
            Triple(iri, V.PROP_TYPE, V.CLASS_ZONE),
            Triple(iri, V.PROP_NAME, Literal(zone.name, V.XSD_STRING)),
            Triple(iri, V.PROP_LON, Literal(lon, V.XSD_DOUBLE)),
            Triple(iri, V.PROP_LAT, Literal(lat, V.XSD_DOUBLE)),
        ]

    def link_to_triples(self, subject: IRI, predicate: IRI, obj: IRI) -> list[Triple]:
        """A discovered association as one triple (interlinking output)."""
        return [Triple(subject, predicate, obj)]


def parse_position_node(triples: Iterable[Triple]) -> PositionReport:
    """Inverse transform for tests: rebuild a report from its node triples.

    Requires the minimum set produced by
    :meth:`RdfTransformer.report_to_triples`; extra triples are ignored.
    """
    from repro.model.reports import ReportSource

    by_pred: dict[str, list[Triple]] = {}
    subject = None
    for triple in triples:
        by_pred.setdefault(triple.p.value, []).append(triple)
        subject = triple.s

    def value(prop: IRI, default: Any = None) -> Any:
        items = by_pred.get(prop.value)
        if not items:
            return default
        obj = items[0].o
        return obj.value if isinstance(obj, Literal) else obj

    entity_ref = value(V.PROP_OF_MOVING_OBJECT)
    if entity_ref is None or subject is None:
        raise ValueError("not a position node: missing ofMovingObject")
    entity_id = V.UNIPI.local(entity_ref).removeprefix("obj/")

    alt = value(V.PROP_ALT)
    source = value(V.PROP_SOURCE, "synthetic")
    return PositionReport(
        entity_id=entity_id,
        t=float(value(V.PROP_TIMESTAMP)),
        lon=float(value(V.PROP_LON)),
        lat=float(value(V.PROP_LAT)),
        alt=None if alt is None else float(alt),
        speed=_opt_float(value(V.PROP_SPEED)),
        heading=_opt_float(value(V.PROP_HEADING)),
        vertical_rate=_opt_float(value(V.PROP_VERTICAL_RATE)),
        source=ReportSource(source),
        domain=Domain.AVIATION if alt is not None else Domain.MARITIME,
    )


def _opt_float(value: Any) -> float | None:
    return None if value is None else float(value)

"""RDF terms and triples.

A deliberately small but standards-shaped model: IRIs, typed literals and
blank nodes, combined into subject-predicate-object triples. Everything is
immutable and hashable so triples can live in set-based indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class IRI:
    """An IRI reference, e.g. ``IRI("http://datacron.eu/ont#Vessel")``."""

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("IRI must be non-empty")

    def __str__(self) -> str:
        return f"<{self.value}>"


@dataclass(frozen=True, slots=True)
class Literal:
    """A literal value with an optional datatype IRI.

    Values are stored in their native Python type (str, int, float, bool);
    the datatype string records the xsd type for serialization.
    """

    value: Union[str, int, float, bool]
    datatype: str | None = None

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            lexical = "true" if self.value else "false"
        else:
            lexical = str(self.value)
        escaped = lexical.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        if self.datatype:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'


@dataclass(frozen=True, slots=True)
class BlankNode:
    """A blank node with a local label."""

    label: str

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("blank node label must be non-empty")

    def __str__(self) -> str:
        return f"_:{self.label}"


Term = Union[IRI, Literal, BlankNode]


@dataclass(frozen=True, slots=True)
class Triple:
    """A subject-predicate-object statement.

    Subjects may be IRIs or blank nodes, predicates must be IRIs, and
    objects may be any term.
    """

    s: Union[IRI, BlankNode]
    p: IRI
    o: Term

    def __post_init__(self) -> None:
        if isinstance(self.s, Literal):
            raise TypeError("a literal cannot be a triple subject")
        if not isinstance(self.p, IRI):
            raise TypeError("a predicate must be an IRI")

    def __str__(self) -> str:
        return f"{self.s} {self.p} {self.o} ."


class Namespace:
    """A namespace helper: ``NS = Namespace("http://x#"); NS.term``."""

    def __init__(self, base: str) -> None:
        if not base:
            raise ValueError("namespace base must be non-empty")
        self._base = base

    @property
    def base(self) -> str:
        """The namespace base IRI string."""
        return self._base

    def __getattr__(self, local: str) -> IRI:
        if local.startswith("_"):
            raise AttributeError(local)
        return IRI(self._base + local)

    def __getitem__(self, local: str) -> IRI:
        return IRI(self._base + local)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def local(self, iri: IRI) -> str:
        """The local name of an IRI under this namespace."""
        if iri not in self:
            raise ValueError(f"{iri} is not in namespace {self._base}")
        return iri.value[len(self._base):]

"""The common RDF representation and data-transformation components.

The paper's "data transformation components convert data from disparate
data sources as well as analytical results from the datAcron higher-level
components to a common representation". This package provides:

- :mod:`repro.rdf.terms` — the RDF term and triple model.
- :mod:`repro.rdf.vocabulary` — the datAcron-style ontology vocabulary
  (namespaces, classes, properties).
- :mod:`repro.rdf.transform` — transformers from every source record type
  and analytics result to triples (and back, for positions).
- :mod:`repro.rdf.ntriples` — N-Triples serialization and parsing.
- :mod:`repro.rdf.emitter` — the compiled id-level emitter the columnar
  ingest path uses to assemble dictionary-encoded triples directly.
"""

from repro.rdf.terms import IRI, Literal, BlankNode, Triple, Term
from repro.rdf.vocabulary import DATACRON, GEO, TIME, RDF, XSD, UNIPI
from repro.rdf.transform import (
    RdfTransformer,
    position_node_iri,
    entity_iri,
)
from repro.rdf.ntriples import to_ntriples, parse_ntriples

__all__ = [
    "IRI",
    "Literal",
    "BlankNode",
    "Triple",
    "Term",
    "DATACRON",
    "GEO",
    "TIME",
    "RDF",
    "XSD",
    "UNIPI",
    "RdfTransformer",
    "position_node_iri",
    "entity_iri",
    "to_ntriples",
    "parse_ntriples",
]

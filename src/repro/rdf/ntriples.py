"""N-Triples serialization and a small parser.

The common representation needs an interchange format for archival dumps;
N-Triples is line-oriented which suits streaming exports. The parser covers
exactly the subset the serializer emits (IRIs, typed/plain literals, blank
nodes) — it is a round-trip format, not a general RDF reader.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from repro.rdf.terms import IRI, BlankNode, Literal, Term, Triple
from repro.rdf import vocabulary as V

_IRI_RE = r"<([^>]*)>"
_BNODE_RE = r"_:([A-Za-z0-9]+)"
_LITERAL_RE = r'"((?:[^"\\]|\\.)*)"(?:\^\^<([^>]*)>)?'

_LINE_RE = re.compile(
    rf"^\s*(?:{_IRI_RE}|{_BNODE_RE})\s+{_IRI_RE}\s+"
    rf"(?:{_IRI_RE}|{_BNODE_RE}|{_LITERAL_RE})\s*\.\s*$"
)

_ESCAPE_RE = re.compile(r"\\(.)")
_ESCAPES = {"n": "\n", '"': '"', "\\": "\\"}


def to_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples to N-Triples text (one statement per line)."""
    return "\n".join(str(t) for t in triples) + "\n"


def parse_ntriples(text: str) -> Iterator[Triple]:
    """Parse N-Triples text produced by :func:`to_ntriples`.

    Raises:
        ValueError: On any non-empty line that does not parse.
    """
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: cannot parse N-Triples: {line!r}")
        (s_iri, s_bnode, p_iri, o_iri, o_bnode, o_lit, o_dt) = match.groups()
        subject = IRI(s_iri) if s_iri is not None else BlankNode(s_bnode)
        predicate = IRI(p_iri)
        obj: Term
        if o_iri is not None:
            obj = IRI(o_iri)
        elif o_bnode is not None:
            obj = BlankNode(o_bnode)
        else:
            obj = _parse_literal(o_lit, o_dt)
        yield Triple(subject, predicate, obj)


def _parse_literal(lexical: str, datatype: str | None) -> Literal:
    """Revive a literal's native Python value from its lexical form."""
    # Single pass: chained str.replace would misread the escaped backslash
    # in ``\\n`` (backslash then "n") as a newline escape.
    unescaped = _ESCAPE_RE.sub(lambda m: _ESCAPES.get(m.group(1), m.group(1)), lexical)
    if datatype == V.XSD_LONG:
        return Literal(int(unescaped), datatype)
    if datatype == V.XSD_DOUBLE:
        return Literal(float(unescaped), datatype)
    if datatype == V.XSD_BOOLEAN:
        return Literal(unescaped == "true", datatype)
    return Literal(unescaped, datatype)

"""Compiled id-level RDF emission for the columnar hot path.

:class:`CompiledReportEmitter` is built *from* an
:class:`~repro.rdf.transform.RdfTransformer` and assembles ``(s, p, o)``
integer id triples directly against a
:class:`~repro.store.dictionary.TermDictionary` — no intermediate
:class:`~repro.rdf.terms.Triple` or repeated :class:`~repro.rdf.terms.Literal`
objects on the per-record path:

- every constant term (predicates, the semantic-node class) is encoded
  into a dictionary id once, at bind time;
- ``(value, datatype)`` literals take an interning fast path that
  constructs the canonical :class:`Literal` only on first sight, so the
  terms the dictionary stores — and therefore everything ``decode()``
  returns — are exactly what the object path would have stored;
- the spatio-temporal key is computed vectorised over whole lon/lat/t
  columns (:meth:`CompiledReportEmitter.st_keys`), bit-identical to the
  scalar :meth:`RdfTransformer.st_key`;
- node/entity/zone IRIs are interned by their string parts, minting the
  IRI object once per distinct subject.

The transformer stays the single source of truth for the triple shape:
at construction the emitter replays a canonical probe set (optional-field
combinations, critical-point annotations, bucket/grid edge coordinates)
through both itself and :meth:`RdfTransformer.report_to_triples` on
scratch dictionaries and refuses to engage (``engaged = False``) on any
decoded mismatch — callers then fall back to the object path. A shape
change in the transformer can therefore never silently diverge the
compiled path; it degrades it to the slow-but-authoritative one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.insitu.critical import AnnotatedReport, CriticalPointType
from repro.model.points import Domain
from repro.model.reports import PositionReport, ReportSource
from repro.rdf import vocabulary as V
from repro.rdf.terms import IRI, Literal, Triple
from repro.rdf.transform import (
    _TIME_BUCKET_BITS,
    _TIME_BUCKET_MASK,
    RdfTransformer,
    entity_iri,
    zone_iri,
)
from repro.store.dictionary import TermDictionary

if TYPE_CHECKING:
    from repro.geo.grid import GeoGrid

__all__ = ["CompiledReportEmitter", "IdTriple", "IdDocument"]

#: One dictionary-encoded statement.
IdTriple = tuple[int, int, int]
#: One pre-encoded subject document for
#: :meth:`~repro.store.parallel.ParallelRDFStore.add_id_documents`:
#: ``(subject_id, id_triples, st_key or None, is_position_doc)``.
IdDocument = tuple[int, list[IdTriple], "int | None", bool]

_NODE_NS = V.UNIPI.base + "node/"

# ``t // bucket`` quotients at or beyond 2**62 cannot round-trip through
# int64; the vector kernel refuses them (scalar fallback) instead of
# silently wrapping where Python's unbounded ints would not.
_MAX_BUCKET_QUOTIENT = float(2**62)


class _IdAssembler:
    """The compiled emission core, bound to one term dictionary.

    All interning state lives here so that probe verification can run
    the *identical* code path against a scratch dictionary before the
    emitter is allowed anywhere near the store's real one.
    """

    __slots__ = (
        "_dict",
        "p_type",
        "c_node",
        "p_ofmo",
        "p_lon",
        "p_lat",
        "p_ts",
        "p_source",
        "p_alt",
        "p_speed",
        "p_heading",
        "p_vrate",
        "p_node_type",
        "p_st_key",
        "p_within_zone",
        "_doubles",
        "_longs",
        "_sources",
        "_node_types",
        "_entities",
        "_zones",
    )

    def __init__(self, dictionary: TermDictionary) -> None:
        self._dict = dictionary
        encode = dictionary.encode
        self.p_type = encode(V.PROP_TYPE)
        self.c_node = encode(V.CLASS_SEMANTIC_NODE)
        self.p_ofmo = encode(V.PROP_OF_MOVING_OBJECT)
        self.p_lon = encode(V.PROP_LON)
        self.p_lat = encode(V.PROP_LAT)
        self.p_ts = encode(V.PROP_TIMESTAMP)
        self.p_source = encode(V.PROP_SOURCE)
        self.p_alt = encode(V.PROP_ALT)
        self.p_speed = encode(V.PROP_SPEED)
        self.p_heading = encode(V.PROP_HEADING)
        self.p_vrate = encode(V.PROP_VERTICAL_RATE)
        self.p_node_type = encode(V.PROP_NODE_TYPE)
        self.p_st_key = encode(V.PROP_ST_KEY)
        self.p_within_zone = encode(V.PROP_WITHIN_ZONE)
        self._doubles: dict[float, int] = {}
        self._longs: dict[int, int] = {}
        self._sources: dict[ReportSource, int] = {}
        self._node_types: dict[CriticalPointType, int] = {}
        self._entities: dict[str, tuple[int, str]] = {}
        self._zones: dict[str, int] = {}

    # -- interned term ids --------------------------------------------------

    def double_id(self, value: float) -> int:
        """Id of ``Literal(value, xsd:double)``, minted on first sight."""
        tid = self._doubles.get(value)
        if tid is None:
            tid = self._dict.encode(Literal(value, V.XSD_DOUBLE))
            self._doubles[value] = tid
        return tid

    def long_id(self, value: int) -> int:
        """Id of ``Literal(value, xsd:long)``, minted on first sight."""
        tid = self._longs.get(value)
        if tid is None:
            tid = self._dict.encode(Literal(value, V.XSD_LONG))
            self._longs[value] = tid
        return tid

    def source_id(self, source: ReportSource) -> int:
        tid = self._sources.get(source)
        if tid is None:
            tid = self._dict.encode(Literal(source.value, V.XSD_STRING))
            self._sources[source] = tid
        return tid

    def node_type_id(self, critical: CriticalPointType) -> int:
        tid = self._node_types.get(critical)
        if tid is None:
            tid = self._dict.encode(Literal(critical.value, V.XSD_STRING))
            self._node_types[critical] = tid
        return tid

    def zone_id(self, name: str) -> int:
        """Id of a zone's IRI (already in the dictionary for stored zones)."""
        tid = self._zones.get(name)
        if tid is None:
            tid = self._dict.encode(zone_iri(name))
            self._zones[name] = tid
        return tid

    # -- emission -----------------------------------------------------------

    def emit(
        self, item: PositionReport | AnnotatedReport, st_key: int | None
    ) -> tuple[int, list[IdTriple]]:
        """Id triples of one (possibly annotated) report.

        Triple order is exactly :meth:`RdfTransformer.report_to_triples`'s;
        ``st_key`` must be the precomputed key (``None`` without a grid).
        Returns ``(subject_id, id_triples)``.
        """
        if isinstance(item, AnnotatedReport):
            report = item.report
            critical: Sequence[CriticalPointType] = item.critical
        else:
            report = item
            critical = ()
        entry = self._entities.get(report.entity_id)
        if entry is None:
            eid = report.entity_id
            entry = (self._dict.encode(entity_iri(eid)), f"{_NODE_NS}{eid}/")
            self._entities[eid] = entry
        obj_id, node_prefix = entry
        t = report.t
        s = self._dict.encode(IRI(f"{node_prefix}{t:.3f}"))
        double_id = self.double_id
        ids = [
            (s, self.p_type, self.c_node),
            (s, self.p_ofmo, obj_id),
            (s, self.p_lon, double_id(report.lon)),
            (s, self.p_lat, double_id(report.lat)),
            (s, self.p_ts, double_id(t)),
            (s, self.p_source, self.source_id(report.source)),
        ]
        if report.alt is not None:
            ids.append((s, self.p_alt, double_id(report.alt)))
        if report.speed is not None:
            ids.append((s, self.p_speed, double_id(report.speed)))
        if report.heading is not None:
            ids.append((s, self.p_heading, double_id(report.heading)))
        if report.vertical_rate is not None:
            ids.append((s, self.p_vrate, double_id(report.vertical_rate)))
        for c in critical:
            ids.append((s, self.p_node_type, self.node_type_id(c)))
        if st_key is not None:
            ids.append((s, self.p_st_key, self.long_id(st_key)))
        return s, ids


class CompiledReportEmitter:
    """Assembles report documents as id triples, verified against the
    transformer on construction.

    Args:
        transformer: The authoritative triple shape. Its ``st_grid`` /
            ``time_bucket_s`` configure the vectorised key kernel.
        dictionary: The store dictionary ids are assigned against.
            Constants bind into it only once verification has passed.
        verify: Run the probe-set self-verification (default). Only
            tests should disable it.

    Attributes:
        engaged: ``True`` when probe verification passed and the compiled
            path may be used; ``False`` demands the object-path fallback.
    """

    def __init__(
        self,
        transformer: RdfTransformer,
        dictionary: TermDictionary,
        verify: bool = True,
    ) -> None:
        self.transformer = transformer
        self._grid: GeoGrid | None = transformer.st_grid
        self._bucket_s = transformer.time_bucket_s
        self.engaged = self._verify() if verify else True
        self._live = _IdAssembler(dictionary) if self.engaged else None

    # -- vectorised spatio-temporal key -------------------------------------

    def st_keys(
        self, lon: np.ndarray, lat: np.ndarray, t: np.ndarray
    ) -> np.ndarray | None:
        """Vectorised :meth:`RdfTransformer.st_key` over aligned columns.

        Returns int64 keys, or ``None`` when the transformer has no grid
        (the E8 ablation — no key triples are emitted then). Exactness
        contract, pinned by the probe set and the hypothesis suite:
        every element equals the scalar ``st_key`` call bit for bit.
        """
        grid = self._grid
        if grid is None:
            return None
        bbox = grid.bbox
        # GeoGrid._clamped_index semantics: truncate the float quotient,
        # clamping in float space (q <= 0 -> 0, q >= n -> n-1). trunc()
        # of a quotient in (0, n) equals int() truncation; clip() covers
        # both border clamps including the +/-inf overflow of degenerate
        # grids.
        qx = np.clip(np.trunc((lon - bbox.min_lon) / grid.cell_width), 0, grid.nx - 1)
        qy = np.clip(np.trunc((lat - bbox.min_lat) / grid.cell_height), 0, grid.ny - 1)
        cell = qy.astype(np.int64) * grid.nx + qx.astype(np.int64)
        quotient = np.floor_divide(t, self._bucket_s)
        if quotient.size and np.max(np.abs(quotient)) >= _MAX_BUCKET_QUOTIENT:
            # Out of int64 range: replay through the scalar kernel, whose
            # Python ints do not overflow.
            st_key = self.transformer.st_key
            return np.array(
                [st_key(float(x), float(y), float(tt)) for x, y, tt in zip(lon, lat, t)],
                dtype=np.int64,
            )
        bucket = quotient.astype(np.int64) & _TIME_BUCKET_MASK
        return (cell << _TIME_BUCKET_BITS) | bucket

    # -- compiled emission --------------------------------------------------

    def emit_ids(
        self, item: PositionReport | AnnotatedReport, st_key: int | None
    ) -> tuple[int, list[IdTriple]]:
        """Id triples of one report document (see :meth:`_IdAssembler.emit`)."""
        live = self._live
        if live is None:
            raise RuntimeError("emitter is not engaged (probe verification failed)")
        return live.emit(item, st_key)

    @property
    def prop_within_zone_id(self) -> int:
        """Dictionary id of ``dac:withinZone`` (interlink zone links)."""
        live = self._live
        if live is None:
            raise RuntimeError("emitter is not engaged (probe verification failed)")
        return live.p_within_zone

    def zone_id(self, name: str) -> int:
        """Dictionary id of a zone IRI (interlink zone links)."""
        live = self._live
        if live is None:
            raise RuntimeError("emitter is not engaged (probe verification failed)")
        return live.zone_id(name)

    # -- probe-set self-verification ----------------------------------------

    def _probe_reports(self) -> list[PositionReport | AnnotatedReport]:
        """Canonical probe set covering every emission branch.

        Coordinates probe the grid's interior, exact cell boundaries and
        out-of-bbox clamping; timestamps probe bucket boundaries and the
        negative-bucket mask; the optional-field sweep covers all 16
        alt/speed/heading/vertical_rate combinations; annotated probes
        cover none/one/many critical-point node types and both report
        sources seen in practice.
        """
        grid = self._grid
        if grid is not None:
            bbox = grid.bbox
            lons = [
                (bbox.min_lon + bbox.max_lon) / 2.0,
                bbox.min_lon,
                bbox.min_lon + grid.cell_width,  # exact cell boundary
                bbox.max_lon + 1.0,  # clamped to the border cell
            ]
            lats = [
                (bbox.min_lat + bbox.max_lat) / 2.0,
                bbox.min_lat,
                bbox.min_lat + grid.cell_height,
                bbox.max_lat + 1.0,
            ]
        else:
            lons = [0.0, -10.0, 10.0, 45.5]
            lats = [0.0, -5.0, 5.0, 22.25]
        bucket = self._bucket_s
        times = [0.0, bucket, bucket * 1.5, bucket - 1e-9, -1.5, 123456789.125]
        sources = list(ReportSource)[:2] or [ReportSource.SYNTHETIC]
        probes: list[PositionReport | AnnotatedReport] = []
        optional = [None, 12.5]
        for combo in range(16):
            probes.append(
                PositionReport(
                    entity_id=f"probe-{combo}",
                    t=times[combo % len(times)],
                    lon=min(180.0, max(-180.0, lons[combo % len(lons)])),
                    lat=min(90.0, max(-90.0, lats[combo % len(lats)])),
                    alt=optional[combo & 1],
                    speed=optional[(combo >> 1) & 1],
                    heading=None if (combo >> 2) & 1 == 0 else 187.5,
                    vertical_rate=optional[(combo >> 3) & 1],
                    source=sources[combo % len(sources)],
                    domain=Domain.MARITIME if combo % 2 else Domain.AVIATION,
                )
            )
        base = probes[0]
        kinds = list(CriticalPointType)
        probes.append(AnnotatedReport(report=base, critical=()))
        probes.append(AnnotatedReport(report=base, critical=(kinds[0],)))
        probes.append(AnnotatedReport(report=base, critical=tuple(kinds[:3])))
        # A duplicate re-exercises every interning hit path.
        probes.append(probes[1])
        return probes

    def _verify(self) -> bool:
        """Replay the probe set through both paths on scratch dictionaries.

        Compares *decoded* triples, so any divergence — shape, order,
        term identity, key value — disqualifies the compiled path. Any
        exception disqualifies it too: the emitter must never trade
        correctness for speed.
        """
        try:
            transformer = self.transformer
            probes = self._probe_reports()
            scratch = TermDictionary()
            assembler = _IdAssembler(scratch)
            grid = self._grid
            for item in probes:
                report = item.report if isinstance(item, AnnotatedReport) else item
                expected = transformer.report_to_triples(item)
                if grid is not None:
                    keys = self.st_keys(
                        np.array([report.lon]),
                        np.array([report.lat]),
                        np.array([report.t]),
                    )
                    assert keys is not None
                    key: int | None = int(keys[0])
                    if key != transformer.st_key(report.lon, report.lat, report.t):
                        return False
                else:
                    key = None
                __, ids = assembler.emit(item, key)
                decode = scratch.decode
                got = [Triple(decode(s), decode(p), decode(o)) for s, p, o in ids]  # type: ignore[arg-type]
                if got != expected:
                    return False
            # The interlink zone-link shape, against the object path's.
            name = "probe/zone"
            link = Triple(expected[0].s, V.PROP_WITHIN_ZONE, zone_iri(name))
            sid = scratch.encode(expected[0].s)
            lid = (sid, assembler.p_within_zone, assembler.zone_id(name))
            got_link = Triple(
                scratch.decode(lid[0]),  # type: ignore[arg-type]
                scratch.decode(lid[1]),  # type: ignore[arg-type]
                scratch.decode(lid[2]),
            )
            if got_link != link:
                return False
            # The vector key kernel over a dense coordinate/time sweep.
            if grid is not None:
                return self._verify_key_kernel()
            return True
        except Exception:
            return False

    def _verify_key_kernel(self) -> bool:
        """Dense sweep: vectorised keys equal scalar keys element-wise."""
        grid = self._grid
        assert grid is not None
        bbox = grid.bbox
        margin_x = grid.cell_width / 3.0
        margin_y = grid.cell_height / 3.0
        lons = np.linspace(bbox.min_lon - margin_x, bbox.max_lon + margin_x, 9)
        lats = np.linspace(bbox.min_lat - margin_y, bbox.max_lat + margin_y, 9)
        bucket = self._bucket_s
        times = np.array(
            [0.0, bucket * 0.999, bucket, bucket * 7.25, -bucket * 3.5, 1e9]
        )
        lon_g, lat_g = np.meshgrid(lons, lats)
        lon_f = np.repeat(lon_g.ravel(), times.size)
        lat_f = np.repeat(lat_g.ravel(), times.size)
        t_f = np.tile(times, lon_g.size)
        keys = self.st_keys(lon_f, lat_f, t_f)
        assert keys is not None
        st_key = self.transformer.st_key
        expected = [
            st_key(float(x), float(y), float(tt))
            for x, y, tt in zip(lon_f, lat_f, t_f)
        ]
        return keys.tolist() == expected


def decode_id_documents(
    dictionary: TermDictionary, documents: Iterable[IdDocument]
) -> list[list[Triple]]:
    """Decode emitted id documents back to triples (test/debug helper)."""
    decode = dictionary.decode
    out: list[list[Triple]] = []
    for __sid, ids, __key, __pos in documents:
        out.append(
            [Triple(decode(s), decode(p), decode(o)) for s, p, o in ids]  # type: ignore[arg-type]
        )
    return out

"""datAcron reproduction: big data management and analytics for mobility
forecasting.

A self-contained implementation of the architecture described in
"Big Data Management and Analytics for Mobility Forecasting in datAcron"
(Doulkeridis, Pelekis, Theodoridis, Vouros — EDBT/ICDT 2017 workshops):
in-situ stream compression, a common RDF representation, link discovery,
a partitioned parallel RDF store with spatio-temporal query answering,
trajectory reconstruction & forecasting (maritime 2D / aviation 3D),
complex event recognition & forecasting, and a headless visual-analytics
backend — plus the synthetic surveillance sources that stand in for the
project's proprietary feeds.

Quickstart::

    from repro import MaritimeTrafficGenerator, MobilityPipeline

    sample = MaritimeTrafficGenerator(seed=7).generate(n_vessels=10)
    pipeline = MobilityPipeline(bbox=sample.world.bbox,
                                registry=sample.registry,
                                zones=sample.world.zones)
    result = pipeline.run(sample.reports)
    print(result.compression_ratio, result.end_to_end["p95_ms"])

    # Columnar micro-batches (same results, batch-at-a-time hot path;
    # a pipeline instance consumes one stream — build a fresh one per run):
    result = fresh_pipeline.run(sample.record_batches(256))

The stable import surface is this module's ``__all__``; see
``docs/api.md`` for the API reference and the deprecation policy.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced experiment results.
"""

from repro.model import (
    STPoint,
    Domain,
    PositionReport,
    ReportSource,
    Trajectory,
    MovingEntity,
    Vessel,
    Aircraft,
    EntityRegistry,
    SimpleEvent,
    ComplexEvent,
    EventSeverity,
)
from repro.geo import BBox, GeoGrid, Polygon
from repro.sources import (
    MaritimeTrafficGenerator,
    AviationTrafficGenerator,
    ArchivalStore,
    WeatherGridSource,
)
from repro.insitu import SynopsesConfig, SynopsesGenerator, compress_trajectory
from repro.rdf import RdfTransformer
from repro.store import (
    ParallelRDFStore,
    HashPartitioner,
    GridPartitioner,
    HilbertPartitioner,
)
from repro.query import QueryExecutor, parse_query
from repro.forecasting import (
    DeadReckoningPredictor,
    KalmanPredictor,
    GridMarkovPredictor,
    RouteBasedPredictor,
)
from repro.cep import (
    SimpleEventExtractor,
    CollisionRiskDetector,
    PatternEngine,
    PatternForecaster,
)
from repro.core import (
    BatchOptions,
    CheckpointOptions,
    MobilityPipeline,
    PipelineConfig,
    PipelineResult,
    RecordBatch,
    ResultSchema,
    load_result_document,
    recordbatches,
    result_document,
)
from repro.serving import (
    ServingApp,
    ServingConfig,
    ServingResponse,
    ServingRuntime,
)

__version__ = "1.0.0"

__all__ = [
    "STPoint",
    "Domain",
    "PositionReport",
    "ReportSource",
    "Trajectory",
    "MovingEntity",
    "Vessel",
    "Aircraft",
    "EntityRegistry",
    "SimpleEvent",
    "ComplexEvent",
    "EventSeverity",
    "BBox",
    "GeoGrid",
    "Polygon",
    "MaritimeTrafficGenerator",
    "AviationTrafficGenerator",
    "ArchivalStore",
    "WeatherGridSource",
    "SynopsesConfig",
    "SynopsesGenerator",
    "compress_trajectory",
    "RdfTransformer",
    "ParallelRDFStore",
    "HashPartitioner",
    "GridPartitioner",
    "HilbertPartitioner",
    "QueryExecutor",
    "parse_query",
    "DeadReckoningPredictor",
    "KalmanPredictor",
    "GridMarkovPredictor",
    "RouteBasedPredictor",
    "SimpleEventExtractor",
    "CollisionRiskDetector",
    "PatternEngine",
    "PatternForecaster",
    "MobilityPipeline",
    "PipelineConfig",
    "PipelineResult",
    "BatchOptions",
    "CheckpointOptions",
    "RecordBatch",
    "recordbatches",
    "ResultSchema",
    "result_document",
    "load_result_document",
    "ServingRuntime",
    "ServingConfig",
    "ServingResponse",
    "ServingApp",
    "__version__",
]

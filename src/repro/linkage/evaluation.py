"""Scoring discovered links against a reference set (experiment E3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.linkage.relations import Link


@dataclass(frozen=True, slots=True)
class LinkScore:
    """Precision/recall of a link set against a reference.

    Attributes:
        true_positives / false_positives / false_negatives: Set counts
            after canonicalisation (symmetric relations deduplicated).
        candidates_compared: Pair comparisons the method performed.
        candidates_baseline: Pair comparisons the naive method performs.
    """

    true_positives: int
    false_positives: int
    false_negatives: int
    candidates_compared: int = 0
    candidates_baseline: int = 0

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 for empty output."""
        found = self.true_positives + self.false_positives
        return self.true_positives / found if found else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 for empty reference."""
        expected = self.true_positives + self.false_negatives
        return self.true_positives / expected if expected else 1.0

    @property
    def pruning_ratio(self) -> float:
        """Fraction of baseline comparisons avoided (0 when unknown)."""
        if self.candidates_baseline <= 0:
            return 0.0
        return 1.0 - self.candidates_compared / self.candidates_baseline


def score_links(
    found: Iterable[Link],
    reference: Iterable[Link],
    candidates_compared: int = 0,
    candidates_baseline: int = 0,
) -> LinkScore:
    """Set-compare two link collections (canonicalised)."""
    found_set = {link.canonical() for link in found}
    reference_set = {link.canonical() for link in reference}
    tp = len(found_set & reference_set)
    return LinkScore(
        true_positives=tp,
        false_positives=len(found_set) - tp,
        false_negatives=len(reference_set) - tp,
        candidates_compared=candidates_compared,
        candidates_baseline=candidates_baseline,
    )

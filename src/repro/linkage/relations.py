"""Link model: discovered associations between resources."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.rdf import vocabulary as V
from repro.rdf.terms import IRI


class LinkRelation(enum.Enum):
    """The association types the discoverer computes."""

    NEAR = "near"
    WITHIN_ZONE = "within_zone"
    HAS_WEATHER = "has_weather"

    @property
    def predicate(self) -> IRI:
        """The RDF predicate this relation materialises as."""
        if self is LinkRelation.NEAR:
            return V.PROP_NEAR
        if self is LinkRelation.WITHIN_ZONE:
            return V.PROP_WITHIN_ZONE
        return V.PROP_HAS_WEATHER


@dataclass(frozen=True, slots=True)
class Link:
    """One discovered association.

    Attributes:
        source_id: Application-level id of the source resource.
        target_id: Application-level id of the target resource.
        relation: The association type.
        value: Relation-specific measure (distance in metres for NEAR,
            0.0 for containment relations).
    """

    source_id: str
    target_id: str
    relation: LinkRelation
    value: float = 0.0

    def canonical(self) -> Link:
        """Symmetric relations ordered so (a,b) == (b,a) for scoring."""
        if self.relation is LinkRelation.NEAR and self.target_id < self.source_id:
            return Link(
                source_id=self.target_id,
                target_id=self.source_id,
                relation=self.relation,
                value=self.value,
            )
        return self

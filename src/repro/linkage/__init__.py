"""Data integration / interlinking: link discovery.

The paper's integration component "interlinks semantically annotated data
using link discovery techniques for automatically computing associations
between data from heterogeneous sources". This package discovers three
families of associations over the synthetic sources:

- proximity links between position nodes of different entities
  (``dac:nearTo``),
- containment links between positions and zones (``dac:withinZone``),
- enrichment links between positions and weather cells
  (``dac:hasWeatherCondition``).

Each relation ships with a naive O(n·m) evaluator (the correctness
baseline) and a grid-blocked evaluator (the scalable path); experiment E3
measures the candidate-pruning ratio, verifies recall 1.0 and times both.
"""

from repro.linkage.relations import Link, LinkRelation
from repro.linkage.discovery import (
    SpatialItem,
    proximity_links_naive,
    proximity_links_blocked,
    zone_links_naive,
    zone_links_blocked,
    weather_links,
    items_from_reports,
)
from repro.linkage.evaluation import LinkScore, score_links
from repro.linkage.trajectory_links import (
    TrajectoryLink,
    same_route_links,
    co_movement_links,
)
from repro.linkage.enrichment import (
    EnrichedSample,
    WeatherExposure,
    enrich_trajectory,
    weather_exposure,
)

__all__ = [
    "Link",
    "LinkRelation",
    "SpatialItem",
    "proximity_links_naive",
    "proximity_links_blocked",
    "zone_links_naive",
    "zone_links_blocked",
    "weather_links",
    "items_from_reports",
    "LinkScore",
    "score_links",
    "TrajectoryLink",
    "same_route_links",
    "co_movement_links",
    "EnrichedSample",
    "WeatherExposure",
    "enrich_trajectory",
    "weather_exposure",
]

"""Trajectory-level link discovery: same-route and co-movement links.

Beyond position-level associations, the integration layer can link whole
trajectories: two voyages following the same route (``sameRouteAs``), or
two entities moving together in time (``coMovesWith``). Both feed the
knowledge graph the same way position links do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geo.geodesy import haversine_m_arrays
from repro.linkage.relations import Link, LinkRelation
from repro.model.trajectory import Trajectory
from repro.trajectory.similarity import euclidean_resampled_m


@dataclass(frozen=True, slots=True)
class TrajectoryLink:
    """A discovered trajectory-level association.

    Attributes:
        source_id / target_id: Entity ids (canonical: source <= target).
        relation: ``"same_route"`` or ``"co_movement"``.
        score: Relation-specific strength (metres for same_route — lower
            is stronger; overlap fraction for co_movement — higher is
            stronger).
    """

    source_id: str
    target_id: str
    relation: str
    score: float


def same_route_links(
    trajectories: Sequence[Trajectory],
    max_shape_distance_m: float = 5_000.0,
) -> list[TrajectoryLink]:
    """Pairs of trajectories whose *shapes* match within a threshold.

    Shape comparison is time-normalised (resampled Euclidean), so two
    voyages along the same lane hours apart still link — exactly what
    route mining wants. Direction matters: reciprocal lanes do not link
    (their resampled sequences run opposite ways).
    """
    out: list[TrajectoryLink] = []
    n = len(trajectories)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = trajectories[i], trajectories[j]
            if a.entity_id == b.entity_id:
                continue
            distance = euclidean_resampled_m(a, b, n_samples=24)
            if distance <= max_shape_distance_m:
                source, target = sorted((a.entity_id, b.entity_id))
                out.append(
                    TrajectoryLink(source, target, "same_route", distance)
                )
    return out


def co_movement_links(
    trajectories: Sequence[Trajectory],
    radius_m: float = 2_000.0,
    min_overlap_fraction: float = 0.6,
    sample_period_s: float = 60.0,
) -> list[TrajectoryLink]:
    """Pairs of entities that travelled *together in time*.

    For each pair with overlapping time spans, positions are compared on
    a shared time lattice; the pair links when at least
    ``min_overlap_fraction`` of the shared lattice points lie within
    ``radius_m`` of each other.
    """
    out: list[TrajectoryLink] = []
    n = len(trajectories)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = trajectories[i], trajectories[j]
            if a.entity_id == b.entity_id:
                continue
            t_from = max(a.start_time, b.start_time)
            t_to = min(a.end_time, b.end_time)
            if t_to - t_from < sample_period_s:
                continue
            times = np.arange(t_from, t_to, sample_period_s)
            lon_a = np.interp(times, a.t, a.lon)
            lat_a = np.interp(times, a.t, a.lat)
            lon_b = np.interp(times, b.t, b.lon)
            lat_b = np.interp(times, b.t, b.lat)
            distances = haversine_m_arrays(lon_a, lat_a, lon_b, lat_b)
            fraction = float((distances <= radius_m).mean())
            if fraction >= min_overlap_fraction:
                source, target = sorted((a.entity_id, b.entity_id))
                out.append(
                    TrajectoryLink(source, target, "co_movement", fraction)
                )
    return out


def to_rdf_links(links: Sequence[TrajectoryLink]) -> list[Link]:
    """Lower trajectory links onto the generic link model for RDF export."""
    return [
        Link(
            source_id=link.source_id,
            target_id=link.target_id,
            relation=LinkRelation.NEAR,
            value=link.score,
        )
        for link in links
    ]
